//===--- Server.cpp - The wdm daemon --------------------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "api/Analyzer.h"
#include "api/JobScheduler.h"
#include "api/Report.h"
#include "obs/Prometheus.h"
#include "obs/Telemetry.h"
#include "obs/Trace.h"
#include "support/BuildInfo.h"
#include "support/Hash.h"

#include <algorithm>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace wdm;
using namespace wdm::serve;
using json::Value;

namespace {

std::string errorBody(const std::string &Message) {
  return Value::object().set("error", Value::string(Message)).dump();
}

bool setNonBlocking(int Fd, bool On) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0)
    return false;
  Flags = On ? (Flags | O_NONBLOCK) : (Flags & ~O_NONBLOCK);
  return ::fcntl(Fd, F_SETFL, Flags) == 0;
}

} // namespace

Server::Server(ServerOptions O)
    : Opt(std::move(O)),
      Cache(ResultCache::Options{Opt.CacheDir, Opt.CacheCapacity}),
      WarmC(Opt.WarmCapacity) {}

Server::~Server() {
  requestStop();
  wait();
}

std::string Server::jobsDir() const {
  std::string Base = !Opt.StateDir.empty()
                         ? Opt.StateDir
                         : (!Opt.CacheDir.empty() ? Opt.CacheDir
                                                  : std::string(".wdm-serve"));
  return Base + "/jobs";
}

Status Server::start() {
  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Status::error("socket: " + std::string(std::strerror(errno)));
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Opt.Port);
  if (::inet_pton(AF_INET, Opt.Host.c_str(), &Addr.sin_addr) != 1) {
    ::close(ListenFd);
    ListenFd = -1;
    return Status::error("serve: invalid host '" + Opt.Host +
                         "' (IPv4 literal required)");
  }
  if (::bind(ListenFd, (sockaddr *)&Addr, sizeof(Addr)) != 0) {
    Status S = Status::error("bind " + Opt.Host + ":" +
                             std::to_string(Opt.Port) + ": " +
                             std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return S;
  }
  if (::listen(ListenFd, 64) != 0) {
    Status S = Status::error("listen: " + std::string(std::strerror(errno)));
    ::close(ListenFd);
    ListenFd = -1;
    return S;
  }
  sockaddr_in Bound{};
  socklen_t Len = sizeof(Bound);
  ::getsockname(ListenFd, (sockaddr *)&Bound, &Len);
  BoundPort = ntohs(Bound.sin_port);

  if (::pipe(WakePipe) != 0) {
    ::close(ListenFd);
    ListenFd = -1;
    return Status::error("pipe: " + std::string(std::strerror(errno)));
  }
  setNonBlocking(WakePipe[0], true);
  setNonBlocking(WakePipe[1], true);
  setNonBlocking(ListenFd, true);

  // A resident service always collects metrics — /metrics over a dead
  // registry is useless, and the deterministic Report view strips the
  // section, so the bit-identity contract with `wdm run` holds anyway.
  obs::setEnabled(true);

  unsigned Threads = Opt.Threads
                         ? Opt.Threads
                         : std::min(4u, std::max(
                               1u, std::thread::hardware_concurrency()));
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  Poller = std::thread([this] { pollLoop(); });
  return Status::success();
}

void Server::requestStop() {
  if (Stop.exchange(true))
    return;
  SuiteStop.store(true, std::memory_order_relaxed);
  if (WakePipe[1] >= 0) {
    char B = 1;
    [[maybe_unused]] ssize_t N = ::write(WakePipe[1], &B, 1);
  }
  QueueCv.notify_all();
}

void Server::wait() {
  if (Draining.exchange(true)) {
    // Someone else is already draining; block on completion.
    std::unique_lock<std::mutex> Lock(DoneMu);
    DoneCv.wait(Lock, [this] { return Done; });
    return;
  }
  if (Poller.joinable())
    Poller.join();
  QueueCv.notify_all();
  for (std::thread &T : Workers)
    if (T.joinable())
      T.join();
  Workers.clear();
  // In-flight suites were asked to stop via the scheduler's StopFlag;
  // their logs end with suite_interrupted and stay resume checkpoints.
  {
    std::lock_guard<std::mutex> Lock(JobsMu);
    for (auto &[Id, Run] : Jobs)
      if (Run->T.joinable())
        Run->T.join();
  }
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  for (int &Fd : WakePipe)
    if (Fd >= 0) {
      ::close(Fd);
      Fd = -1;
    }
  {
    std::lock_guard<std::mutex> Lock(DoneMu);
    Done = true;
  }
  DoneCv.notify_all();
}

//===----------------------------------------------------------------------===//
// serveForever: signal-to-drain for the CLI
//===----------------------------------------------------------------------===//

namespace {
std::atomic<bool> GServeSignal{false};
void onServeSignal(int) { GServeSignal.store(true); }
} // namespace

Status Server::serveForever(const std::function<void(uint16_t)> &OnReady) {
  Status S = start();
  if (!S.ok())
    return S;
  if (OnReady)
    OnReady(BoundPort);

  GServeSignal.store(false);
  struct sigaction SA {};
  SA.sa_handler = onServeSignal; // No SA_RESTART: EINTR wakes the pause.
  sigemptyset(&SA.sa_mask);
  struct sigaction OldInt {}, OldTerm {};
  ::sigaction(SIGINT, &SA, &OldInt);
  ::sigaction(SIGTERM, &SA, &OldTerm);

  while (!GServeSignal.load() && !Stop.load()) {
    struct timespec Ts = {0, 100 * 1000 * 1000};
    ::nanosleep(&Ts, nullptr);
  }
  requestStop();
  wait();

  ::sigaction(SIGINT, &OldInt, nullptr);
  ::sigaction(SIGTERM, &OldTerm, nullptr);
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Poll loop + worker pool
//===----------------------------------------------------------------------===//

void Server::writeAndClose(int Fd, const std::string &Response) {
  setNonBlocking(Fd, false);
  size_t Off = 0;
  while (Off < Response.size()) {
    ssize_t N = ::write(Fd, Response.data() + Off, Response.size() - Off);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      break;
    }
    Off += (size_t)N;
  }
  obs::count("serve.bytes_out", Off);
  ::shutdown(Fd, SHUT_WR);
  ::close(Fd);
}

void Server::dispatch(int Fd, HttpRequest Req) {
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Queue.emplace_back(Fd, std::move(Req));
  }
  QueueCv.notify_one();
}

void Server::pollLoop() {
  obs::setThreadTrackName("serve poll");
  std::vector<std::unique_ptr<Conn>> Conns;
  char Buf[64 * 1024];

  while (true) {
    std::vector<pollfd> Pfds;
    Pfds.push_back({WakePipe[0], POLLIN, 0});
    bool Accepting = !Stop.load(std::memory_order_relaxed);
    if (Accepting)
      Pfds.push_back({ListenFd, POLLIN, 0});
    for (const auto &C : Conns)
      Pfds.push_back({C->Fd, POLLIN, 0});

    int Rc = ::poll(Pfds.data(), Pfds.size(), 250);
    if (Rc < 0 && errno != EINTR)
      break;

    if (Stop.load(std::memory_order_relaxed)) {
      // Drain: connections still mid-parse never started a request;
      // close them and let the workers finish what was dispatched.
      for (const auto &C : Conns)
        ::close(C->Fd);
      return;
    }
    if (Rc <= 0)
      continue;

    size_t Idx = 0;
    if (Pfds[Idx].revents & POLLIN) {
      char Drain[16];
      while (::read(WakePipe[0], Drain, sizeof(Drain)) > 0) {
      }
    }
    ++Idx;

    if (Accepting) {
      if (Pfds[Idx].revents & POLLIN) {
        while (true) {
          int Fd = ::accept(ListenFd, nullptr, nullptr);
          if (Fd < 0)
            break;
          if (Conns.size() >= Opt.MaxConnections) {
            obs::count("serve.rejected");
            writeAndClose(Fd, serializeResponse(
                                  503, "application/json",
                                  errorBody("connection limit reached")));
            continue;
          }
          setNonBlocking(Fd, true);
          Conns.push_back(std::make_unique<Conn>(Fd, Opt.Limits));
        }
      }
      ++Idx;
    }

    // Read whatever arrived on each connection.
    for (size_t C = 0; C < Conns.size(); ++C, ++Idx) {
      if (!(Pfds[Idx].revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      Conn &Cn = *Conns[C];
      bool Close = false;
      while (true) {
        ssize_t N = ::read(Cn.Fd, Buf, sizeof(Buf));
        if (N > 0) {
          obs::count("serve.bytes_in", (uint64_t)N);
          Cn.Parser.feed(Buf, (size_t)N);
          if (Cn.Parser.done() || Cn.Parser.failed())
            break;
          continue;
        }
        if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
          break;
        if (N < 0 && errno == EINTR)
          continue;
        Close = true; // EOF or hard error before a full request.
        break;
      }
      if (Cn.Parser.done()) {
        setNonBlocking(Cn.Fd, false);
        dispatch(Cn.Fd, Cn.Parser.request());
        Conns[C].reset();
      } else if (Cn.Parser.failed()) {
        obs::count("serve.bad_requests");
        writeAndClose(Cn.Fd,
                      serializeResponse(Cn.Parser.errorStatus(),
                                        "application/json",
                                        errorBody(statusReason(
                                            Cn.Parser.errorStatus()))));
        Conns[C].reset();
      } else if (Close) {
        ::close(Cn.Fd);
        Conns[C].reset();
      }
    }
    Conns.erase(std::remove(Conns.begin(), Conns.end(), nullptr),
                Conns.end());
  }
}

void Server::workerLoop() {
  obs::setThreadTrackName("serve worker");
  while (true) {
    std::pair<int, HttpRequest> Item{-1, {}};
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCv.wait(Lock, [this] {
        return !Queue.empty() || Stop.load(std::memory_order_relaxed);
      });
      if (Queue.empty()) {
        if (Stop.load(std::memory_order_relaxed))
          return; // Queue drained; daemon is shutting down.
        continue;
      }
      Item = std::move(Queue.front());
      Queue.pop_front();
    }
    InFlight.fetch_add(1, std::memory_order_relaxed);
    std::string Response = handle(Item.second);
    writeAndClose(Item.first, Response);
    InFlight.fetch_sub(1, std::memory_order_relaxed);
  }
}

//===----------------------------------------------------------------------===//
// Routing
//===----------------------------------------------------------------------===//

std::string Server::handle(const HttpRequest &Req) {
  obs::count("serve.requests");
  obs::ScopedSpan Span("request");
  if (obs::tracing())
    Span.setArgs(Value::object()
                     .set("method", Value::string(Req.Method))
                     .set("path", Value::string(Req.path())));

  const std::string Path = Req.path();
  int Status = 200;
  std::string ContentType = "application/json";
  std::string Body;

  if (Path == "/healthz" && Req.Method == "GET") {
    Body = Value::object().set("ok", Value::boolean(true)).dump();
  } else if (Path == "/version" && Req.Method == "GET") {
    Body = support::buildInfoJson().dump();
  } else if (Path == "/metrics" && Req.Method == "GET") {
    ContentType = "text/plain; version=0.0.4; charset=utf-8";
    Body = obs::snapshotPrometheus();
  } else if (Path == "/v1/run") {
    if (Req.Method != "POST") {
      Status = 405;
      Body = errorBody("POST required");
    } else {
      Body = handleRun(Req, Status);
    }
  } else if (Path == "/v1/suite") {
    if (Req.Method != "POST") {
      Status = 405;
      Body = errorBody("POST required");
    } else {
      Body = handleSuite(Req, Status);
    }
  } else if (Path.rfind("/v1/jobs/", 0) == 0 && Req.Method == "GET") {
    Body = handleJob(Path, Status, ContentType);
  } else {
    Status = 404;
    Body = errorBody("no such endpoint: " + Path);
  }
  return serializeResponse(Status, ContentType, Body);
}

std::string Server::handleRun(const HttpRequest &Req, int &Status) {
  std::string Hash;
  std::string CanonText;
  {
    std::lock_guard<std::mutex> L(SpecMemoMu);
    auto It = SpecMemo.find(Req.Body);
    if (It != SpecMemo.end())
      Hash = It->second;
  }
  if (Hash.empty()) {
    Expected<std::string> Canon = canonicalSpecText(Req.Body);
    if (!Canon) {
      Status = 400;
      return errorBody(Canon.error());
    }
    CanonText = Canon.take();
    Hash = fnv1a64Hex(CanonText);
    std::lock_guard<std::mutex> L(SpecMemoMu);
    if (SpecMemo.size() >= 4096)
      SpecMemo.clear();
    SpecMemo.emplace(Req.Body, Hash);
  }

  ResultCache::Lease Lease = Cache.acquire(Hash);
  const bool Cached = Lease.Hit;
  std::string ReportText;
  std::string ReportHash;
  if (Lease.Hit) {
    obs::count("serve.cache_hits");
    if (!Lease.CachedHash.empty()) {
      // Hot path: the entry carries its deterministic-view hash, so
      // the envelope is spliced from stored bytes — no JSON parse, no
      // deterministic-view rebuild. The splice must stay byte-identical
      // to the Value::dump() envelope below (": " after keys, ", "
      // separators); report text dumps are serialize-after-parse fixed
      // points, so embedding the stored text verbatim matches re-dump.
      std::string Rep = std::move(Lease.CachedJson);
      while (!Rep.empty() &&
             (Rep.back() == '\n' || Rep.back() == '\r' || Rep.back() == ' '))
        Rep.pop_back();
      Status = 200;
      return "{\"cached\": true, \"spec_hash\": \"" + Hash +
             "\", \"report_hash\": \"" + Lease.CachedHash +
             "\", \"report\": " + Rep + "}";
    }
    ReportText = std::move(Lease.CachedJson);
  } else {
    obs::count("serve.cache_misses");
    // A memo hit skipped canonicalization; the miss path needs the
    // canonical text after all (and it cannot fail — the memo only
    // remembers bodies that canonicalized once already).
    if (CanonText.empty()) {
      Expected<std::string> Canon = canonicalSpecText(Req.Body);
      if (!Canon) {
        Cache.abandon(Hash);
        Status = 400;
        return errorBody(Canon.error());
      }
      CanonText = Canon.take();
    }
    Expected<api::AnalysisSpec> Spec = api::AnalysisSpec::parse(CanonText);
    if (!Spec) {
      Cache.abandon(Hash);
      Status = 400;
      return errorBody(Spec.error());
    }
    api::Analyzer A(Spec.take());
    if (Opt.Warm)
      A.setWarmCache(&WarmC);
    Expected<api::Report> R = A.run();
    if (!R) {
      Cache.abandon(Hash);
      Status = 500;
      return errorBody(R.error());
    }
    ReportText = R->toJsonText();
  }

  Expected<Value> RepDoc = Value::parse(ReportText);
  if (!RepDoc) {
    if (!Cached)
      Cache.abandon(Hash);
    Status = 500;
    return errorBody("stored report unparseable: " + RepDoc.error());
  }
  // The report hash is over the deterministic view — byte-identical for
  // a cold run, a cache hit, a warm run, and `wdm run` on the same spec.
  ReportHash = fnv1a64Hex(api::deterministicReportJson(*RepDoc).dump());
  if (!Cached)
    Cache.fulfill(Hash, ReportText, ReportHash);
  Status = 200;
  return Value::object()
      .set("cached", Value::boolean(Cached))
      .set("spec_hash", Value::string(Hash))
      .set("report_hash", Value::string(ReportHash))
      .set("report", std::move(*RepDoc))
      .dump();
}

std::string Server::handleSuite(const HttpRequest &Req, int &Status) {
  Expected<api::SuiteSpec> Suite = api::SuiteSpec::parse(Req.Body);
  if (!Suite) {
    Status = 400;
    return errorBody(Suite.error());
  }
  if (Stop.load(std::memory_order_relaxed)) {
    Status = 503;
    return errorBody("draining");
  }

  std::string Dir = jobsDir();
  {
    std::string Base = Dir.substr(0, Dir.rfind('/'));
    ::mkdir(Base.c_str(), 0755);
    ::mkdir(Dir.c_str(), 0755);
  }

  auto Run = std::make_shared<SuiteRun>();
  {
    std::lock_guard<std::mutex> Lock(JobsMu);
    Run->Id = fnv1a64Hex(Req.Body + "#" + std::to_string(++JobSeq));
    Jobs[Run->Id] = Run;
  }
  Run->EventLog = Dir + "/" + Run->Id + ".ndjson";

  api::SuiteRunOptions SO;
  SO.Mode = api::SuiteMode::InProcess;
  SO.Shards = Opt.SuiteShards;
  SO.EventLog = Run->EventLog;
  SO.StopFlag = &SuiteStop;
  Run->T = std::thread([Run, Suite = Suite.take(), SO]() mutable {
    obs::setThreadTrackName("suite " + Run->Id);
    Expected<api::SuiteReport> R =
        api::JobScheduler::execute(std::move(Suite), std::move(SO));
    if (R) {
      Run->ExitCode = R->exitCode();
      Run->ReportJson = R->toJson();
      Run->State.store(1, std::memory_order_release);
    } else {
      Run->Error = R.error();
      Run->State.store(2, std::memory_order_release);
    }
  });

  Status = 202;
  return Value::object()
      .set("job", Value::string(Run->Id))
      .set("status", Value::string("/v1/jobs/" + Run->Id))
      .set("events", Value::string("/v1/jobs/" + Run->Id + "/events"))
      .dump();
}

std::string Server::handleJob(const std::string &Path, int &Status,
                              std::string &ContentType) {
  std::string Rest = Path.substr(std::string("/v1/jobs/").size());
  bool WantEvents = false;
  if (size_t Slash = Rest.find('/'); Slash != std::string::npos) {
    WantEvents = Rest.substr(Slash) == "/events";
    if (!WantEvents) {
      Status = 404;
      return errorBody("no such endpoint: " + Path);
    }
    Rest = Rest.substr(0, Slash);
  }

  std::shared_ptr<SuiteRun> Run;
  {
    std::lock_guard<std::mutex> Lock(JobsMu);
    auto It = Jobs.find(Rest);
    if (It != Jobs.end())
      Run = It->second;
  }
  if (!Run) {
    Status = 404;
    return errorBody("no such job: " + Rest);
  }

  if (WantEvents) {
    // The NDJSON accumulated so far — the scheduler flushes per event,
    // so a poll loop over this endpoint is a live stream.
    std::ifstream In(Run->EventLog, std::ios::binary);
    std::ostringstream Ss;
    Ss << In.rdbuf();
    ContentType = "application/x-ndjson";
    Status = 200;
    return Ss.str();
  }

  int S = Run->State.load(std::memory_order_acquire);
  Value Doc = Value::object()
                  .set("job", Value::string(Run->Id))
                  .set("state", Value::string(S == 0   ? "running"
                                              : S == 1 ? "done"
                                                       : "failed"))
                  .set("events",
                       Value::string("/v1/jobs/" + Run->Id + "/events"));
  if (S == 1) {
    Doc.set("exit_code", Value::number((int64_t)Run->ExitCode));
    Doc.set("suite", Run->ReportJson);
  } else if (S == 2) {
    Doc.set("error", Value::string(Run->Error));
  }
  Status = 200;
  return Doc.dump();
}
