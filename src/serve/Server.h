//===--- Server.h - The wdm daemon -----------------------------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `wdm serve`: the weak-distance engine as a long-running service. A
/// hand-rolled, dependency-free HTTP/1.1 daemon over one poll-loop
/// accept/read thread plus a small worker pool, executing through the
/// existing Analyzer/JobScheduler layers with two kinds of resident
/// state:
///
///  - a two-level content-addressed Report cache (serve::ResultCache):
///    a repeat request from any client is a lookup, not a search, and
///    the on-disk level survives restarts;
///  - a warm execution cache (api::WarmCache): resolved/verified IR,
///    instrumented clones, lowered bytecode, and JIT code stay resident
///    keyed by construction-relevant spec content, so a warm request
///    skips resolve -> verify -> instrument -> lower -> compile.
///
/// Endpoints:
///
///   POST /v1/run          sync AnalysisSpec -> envelope with Report
///   POST /v1/suite        async SuiteSpec -> job id (202)
///   GET  /v1/jobs/<id>    job status (+ SuiteReport when finished)
///   GET  /v1/jobs/<id>/events   the job's NDJSON event stream so far
///   GET  /metrics         Prometheus text over the obs registry
///   GET  /healthz         liveness
///   GET  /version         build provenance
///
/// Bounded on every axis: connection cap (503 beyond it), header/body
/// size limits (431/413), one request per connection. SIGINT/SIGTERM
/// (via serveForever) or requestStop() drain gracefully: stop
/// accepting, finish queued and in-flight requests, stop in-flight
/// suites through the scheduler's StopFlag seam (their logs stay valid
/// resume checkpoints), then return.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SERVE_SERVER_H
#define WDM_SERVE_SERVER_H

#include "api/Warm.h"
#include "serve/Http.h"
#include "serve/ResultCache.h"
#include "support/Error.h"
#include "support/Json.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace wdm::serve {

struct ServerOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;        ///< 0 = ephemeral; see Server::port().
  unsigned Threads = 0;     ///< Request workers; 0 = min(4, hw threads).
  unsigned MaxConnections = 64; ///< Accepted-but-unfinished cap (503 over).
  HttpParser::Limits Limits;    ///< Header/body size caps.
  std::string CacheDir;     ///< Result-cache disk level ("" = memory only).
  size_t CacheCapacity = 256;   ///< Result-cache memory entries.
  size_t WarmCapacity = 64;     ///< Warm-entry LRU bound.
  bool Warm = true;             ///< Keep execution state resident.
  std::string StateDir;     ///< Suite job logs; "" = CacheDir or ".wdm-serve".
  unsigned SuiteShards = 0; ///< Shards for async suites; 0 = hardware.
};

class Server {
public:
  explicit Server(ServerOptions O);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens, and spawns the poll loop + workers. After success,
  /// port() is the bound port.
  Status start();

  /// The bound TCP port (resolves Port == 0).
  uint16_t port() const { return BoundPort; }

  /// Asks the daemon to drain: stop accepting, finish in-flight
  /// requests, interrupt in-flight suites. Safe from any thread and
  /// from a signal handler's perspective via a flag the poll loop
  /// polls. Idempotent.
  void requestStop();

  /// Blocks until requestStop() (or a failure) fully drains the daemon.
  void wait();

  /// start() + install SIGINT/SIGTERM-to-requestStop handlers + wait().
  /// Returns non-ok on startup failure. The CLI entry point. \p OnReady
  /// (when set) runs once the socket is bound, with the resolved port —
  /// the CLI prints its "listening on" line there so scripts can parse
  /// the ephemeral port before the call blocks.
  Status serveForever(const std::function<void(uint16_t)> &OnReady = {});

  ResultCache &cache() { return Cache; }
  api::WarmCache &warm() { return WarmC; }

  /// Handles one already-parsed request synchronously (no sockets) —
  /// the unit-test seam. Returns the serialized HTTP response.
  std::string handle(const HttpRequest &Req);

private:
  struct Conn {
    int Fd = -1;
    HttpParser Parser;
    Conn(int Fd, HttpParser::Limits L) : Fd(Fd), Parser(L) {}
  };

  struct SuiteRun {
    std::string Id;
    std::string EventLog;
    std::thread T;
    std::atomic<int> State{0}; ///< 0 running, 1 done, 2 failed.
    std::string Error;         ///< Set when State == 2.
    json::Value ReportJson;    ///< Set when State == 1.
    int ExitCode = 0;
  };

  void pollLoop();
  void workerLoop();
  void dispatch(int Fd, HttpRequest Req);
  void writeAndClose(int Fd, const std::string &Response);

  std::string handleRun(const HttpRequest &Req, int &Status);
  std::string handleSuite(const HttpRequest &Req, int &Status);
  std::string handleJob(const std::string &Path, int &Status,
                        std::string &ContentType);
  std::string jobsDir() const;

  ServerOptions Opt;
  ResultCache Cache;
  api::WarmCache WarmC;

  // Raw request body -> canonical spec hash memo. Canonicalization is a
  // pure function of the bytes, so identical repeat bodies (the traffic
  // a resident daemon actually sees) skip the spec parse + round-trip
  // on the hot path. Bounded by wholesale clear; only valid specs are
  // remembered.
  std::mutex SpecMemoMu;
  std::unordered_map<std::string, std::string> SpecMemo;

  int ListenFd = -1;
  int WakePipe[2] = {-1, -1};
  uint16_t BoundPort = 0;

  std::thread Poller;
  std::vector<std::thread> Workers;

  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<std::pair<int, HttpRequest>> Queue;

  std::atomic<bool> Stop{false};      ///< Drain requested.
  std::atomic<bool> SuiteStop{false}; ///< Scheduler StopFlag seam.
  std::atomic<bool> Draining{false};
  std::atomic<unsigned> InFlight{0};

  std::mutex JobsMu;
  std::map<std::string, std::shared_ptr<SuiteRun>> Jobs;
  uint64_t JobSeq = 0;

  std::mutex DoneMu;
  std::condition_variable DoneCv;
  bool Done = false;
};

} // namespace wdm::serve

#endif // WDM_SERVE_SERVER_H
