//===--- Fig1.cpp - The paper's motivating examples ---------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "subjects/Fig1.h"

#include "ir/IRBuilder.h"

using namespace wdm;
using namespace wdm::ir;
using namespace wdm::subjects;

static Fig1 buildFig1(Module &M, const std::string &Name, bool UseTan) {
  Fig1 Out;
  Function *F = M.addFunction(Name, Type::Double);
  Out.F = F;
  Argument *X = F->addArg(Type::Double, "x");

  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Then = F->addBlock("then");
  BasicBlock *Ok = F->addBlock("ok");
  BasicBlock *Fail = F->addBlock("assert.fail");
  BasicBlock *Exit = F->addBlock("exit");

  IRBuilder B(M);
  B.setInsertAppend(Entry);
  Instruction *Guard = B.fcmp(CmpPred::LT, X, B.lit(1.0), "guard");
  Guard->setAnnotation("x < 1");
  Out.GuardBranch = B.condbr(Guard, Then, Exit);

  B.setInsertAppend(Then);
  Value *Incr = UseTan ? static_cast<Value *>(B.tan(X, "tan.x"))
                       : static_cast<Value *>(B.lit(1.0));
  Instruction *XNew = B.fadd(X, Incr, "x.new");
  XNew->setAnnotation(UseTan ? "x = x + tan(x)" : "x = x + 1");
  Instruction *Assert = B.fcmp(CmpPred::LT, XNew, B.lit(2.0), "assert.cond");
  Assert->setAnnotation("x < 2");
  Out.AssertBranch = B.condbr(Assert, Ok, Fail);

  B.setInsertAppend(Ok);
  B.br(Exit);

  B.setInsertAppend(Fail);
  Out.TrapId = 1;
  B.trap(Out.TrapId, "assert(x < 2) failed");

  B.setInsertAppend(Exit);
  B.ret(X);
  return Out;
}

Fig1 subjects::buildFig1a(Module &M) {
  return buildFig1(M, "fig1a", /*UseTan=*/false);
}

Fig1 subjects::buildFig1b(Module &M) {
  return buildFig1(M, "fig1b", /*UseTan=*/true);
}
