//===--- Fig1.h - The paper's motivating examples --------------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Fig. 1 (a)/(b):
/// \code
///   void Prog(double x) {            void Prog(double x) {
///     if (x < 1) {                     if (x < 1) {
///       x = x + 1;                       x = x + tan(x);
///       assert(x < 2);                   assert(x < 2);
///     }                                }
///   }                                }
/// \endcode
/// Under round-to-nearest, (a)'s assertion fails at
/// x = 0.9999999999999999 (x + 1 rounds to 2.0); under round-toward-zero
/// it holds for all inputs. The assert compiles to a trap-guarding
/// branch, so "does the assertion fail?" is a path reachability problem.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SUBJECTS_FIG1_H
#define WDM_SUBJECTS_FIG1_H

#include "ir/Module.h"

namespace wdm::subjects {

struct Fig1 {
  ir::Function *F = nullptr;
  /// The `if (x < 1)` branch.
  const ir::Instruction *GuardBranch = nullptr;
  /// The assertion branch: true -> ok, false -> trap.
  const ir::Instruction *AssertBranch = nullptr;
  int TrapId = 0;
};

/// Fig. 1(a): x = x + 1.
Fig1 buildFig1a(ir::Module &M);

/// Fig. 1(b): x = x + tan(x).
Fig1 buildFig1b(ir::Module &M);

} // namespace wdm::subjects

#endif // WDM_SUBJECTS_FIG1_H
