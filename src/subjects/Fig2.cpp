//===--- Fig2.cpp - The paper's running example ------------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "subjects/Fig2.h"

#include "ir/IRBuilder.h"

using namespace wdm;
using namespace wdm::ir;
using namespace wdm::subjects;

Fig2 subjects::buildFig2(Module &M) {
  Fig2 Out;
  Function *F = M.addFunction("fig2", Type::Double);
  Out.F = F;
  Argument *X = F->addArg(Type::Double, "x");

  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Then1 = F->addBlock("then1");
  BasicBlock *Cont1 = F->addBlock("cont1");
  BasicBlock *Then2 = F->addBlock("then2");
  BasicBlock *Cont2 = F->addBlock("cont2");

  IRBuilder B(M);
  B.setInsertAppend(Entry);
  Instruction *XSlot = B.alloca_(Type::Double, "x.slot");
  B.store(XSlot, X);
  Instruction *C1 = B.fcmp(CmpPred::LE, X, B.lit(1.0), "c1");
  C1->setAnnotation("x <= 1.0");
  Instruction *Br1 = B.condbr(C1, Then1, Cont1);
  Br1->setAnnotation("if (x <= 1.0)");
  Out.Branch1 = Br1;

  B.setInsertAppend(Then1);
  Instruction *X1 = B.fadd(X, B.lit(1.0), "x.inc");
  X1->setAnnotation("x++");
  B.store(XSlot, X1);
  B.br(Cont1);

  B.setInsertAppend(Cont1);
  Instruction *XV = B.load(XSlot, "x.cur");
  Instruction *Y = B.fmul(XV, XV, "y");
  Y->setAnnotation("double y = x * x");
  Instruction *C2 = B.fcmp(CmpPred::LE, Y, B.lit(4.0), "c2");
  C2->setAnnotation("y <= 4.0");
  Instruction *Br2 = B.condbr(C2, Then2, Cont2);
  Br2->setAnnotation("if (y <= 4.0)");
  Out.Branch2 = Br2;

  B.setInsertAppend(Then2);
  Instruction *X2 = B.fsub(XV, B.lit(1.0), "x.dec");
  X2->setAnnotation("x--");
  B.store(XSlot, X2);
  B.br(Cont2);

  B.setInsertAppend(Cont2);
  Instruction *XR = B.load(XSlot, "x.final");
  B.ret(XR);
  return Out;
}
