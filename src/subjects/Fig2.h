//===--- Fig2.h - The paper's running example ------------------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Fig. 2:
/// \code
///   void Prog(double x) {
///     if (x <= 1.0) x++;
///     double y = x * x;
///     if (y <= 4.0) x--;
///   }
/// \endcode
/// Boundary values: -3.0, 1.0, 2.0 (and 0.9999999999999999, which the
/// paper's Basinhopping run discovered: x++ rounds it to 2.0 exactly, so
/// y == 4.0). Inputs triggering both true branches: [-3, 1].
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SUBJECTS_FIG2_H
#define WDM_SUBJECTS_FIG2_H

#include "ir/Module.h"

namespace wdm::subjects {

struct Fig2 {
  ir::Function *F = nullptr;
  /// The `if (x <= 1.0)` branch.
  const ir::Instruction *Branch1 = nullptr;
  /// The `if (y <= 4.0)` branch.
  const ir::Instruction *Branch2 = nullptr;
};

/// Builds the Fig. 2 program into \p M; returns the final value of x so
/// tests can check semantics.
Fig2 buildFig2(ir::Module &M);

} // namespace wdm::subjects

#endif // WDM_SUBJECTS_FIG2_H
