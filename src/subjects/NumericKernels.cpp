//===--- NumericKernels.cpp - Realistic numeric subject programs ------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "subjects/NumericKernels.h"

#include "ir/IRBuilder.h"

using namespace wdm;
using namespace wdm::ir;
using namespace wdm::subjects;

QuadraticSolver subjects::buildQuadraticSolver(Module &M) {
  QuadraticSolver Out;
  Function *F = M.addFunction("quadratic_roots", Type::Double);
  Out.F = F;
  Argument *A = F->addArg(Type::Double, "a");
  Argument *B2 = F->addArg(Type::Double, "b");
  Argument *C = F->addArg(Type::Double, "c");

  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Linear = F->addBlock("linear");
  BasicBlock *Quad = F->addBlock("quad");
  BasicBlock *NoRoots = F->addBlock("no.roots");
  BasicBlock *ChkDouble = F->addBlock("chk.double");
  BasicBlock *OneRoot = F->addBlock("one.root");
  BasicBlock *TwoRoots = F->addBlock("two.roots");

  IRBuilder B(M);
  B.setInsertAppend(Entry);
  Instruction *IsLinear = B.fcmp(CmpPred::EQ, A, B.lit(0.0), "a.zero");
  IsLinear->setAnnotation("a == 0");
  Out.LinearBranch = B.condbr(IsLinear, Linear, Quad);

  B.setInsertAppend(Linear);
  B.ret(B.lit(1.0));

  B.setInsertAppend(Quad);
  Value *BB = B.fmul(B2, B2, "b2");
  Value *FourAC = B.fmul(B.fmul(B.lit(4.0), A), C, "fourac");
  Instruction *Disc = B.fsub(BB, FourAC, "disc");
  Disc->setAnnotation("disc = b*b - 4*a*c");
  Instruction *Neg = B.fcmp(CmpPred::LT, Disc, B.lit(0.0), "disc.neg");
  Neg->setAnnotation("disc < 0");
  Out.DiscBranch = B.condbr(Neg, NoRoots, ChkDouble);

  B.setInsertAppend(NoRoots);
  B.ret(B.lit(0.0));

  B.setInsertAppend(ChkDouble);
  Instruction *IsDouble = B.fcmp(CmpPred::EQ, Disc, B.lit(0.0), "disc.zero");
  IsDouble->setAnnotation("disc == 0");
  B.condbr(IsDouble, OneRoot, TwoRoots);

  B.setInsertAppend(OneRoot);
  B.ret(B.lit(1.0));

  B.setInsertAppend(TwoRoots);
  B.ret(B.lit(2.0));
  return Out;
}

RaySphere subjects::buildRaySphere(Module &M) {
  RaySphere Out;
  Function *F = M.addFunction("ray_sphere", Type::Double);
  Out.F = F;
  Argument *Ox = F->addArg(Type::Double, "ox");
  Argument *Dx = F->addArg(Type::Double, "dx");
  Argument *R = F->addArg(Type::Double, "r");

  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Hit = F->addBlock("hit");
  BasicBlock *Miss = F->addBlock("miss");

  IRBuilder B(M);
  B.setInsertAppend(Entry);
  // Solve (ox + t*dx)^2 = r^2 for t: quadratic in t with
  //   a = dx^2, b = 2*ox*dx, c = ox^2 - r^2; disc = b^2 - 4ac.
  Value *Aq = B.fmul(Dx, Dx, "a");
  Value *Bq = B.fmul(B.fmul(B.lit(2.0), Ox), Dx, "b");
  Value *Cq = B.fsub(B.fmul(Ox, Ox), B.fmul(R, R), "c");
  Value *Disc = B.fsub(B.fmul(Bq, Bq),
                       B.fmul(B.fmul(B.lit(4.0), Aq), Cq), "disc");
  Instruction *HasHit = B.fcmp(CmpPred::GE, Disc, B.lit(0.0), "disc.ge0");
  HasHit->setAnnotation("disc >= 0 (tangency at equality)");
  Out.HitBranch = B.condbr(HasHit, Hit, Miss);

  B.setInsertAppend(Hit);
  // Entry distance t = (-b - sqrt(disc)) / (2a).
  Value *T = B.fdiv(B.fsub(B.fneg(Bq), B.sqrt(Disc)),
                    B.fmul(B.lit(2.0), Aq), "t");
  B.ret(T);

  B.setInsertAppend(Miss);
  B.ret(B.lit(-1.0));
  return Out;
}

Function *subjects::buildHermite(Module &M) {
  Function *F = M.addFunction("hermite", Type::Double);
  Argument *P0 = F->addArg(Type::Double, "p0");
  Argument *P1 = F->addArg(Type::Double, "p1");
  Argument *T = F->addArg(Type::Double, "t");

  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *ClampLo = F->addBlock("clamp.lo");
  BasicBlock *ChkHi = F->addBlock("chk.hi");
  BasicBlock *ClampHi = F->addBlock("clamp.hi");
  BasicBlock *Body = F->addBlock("body");

  IRBuilder B(M);
  B.setInsertAppend(Entry);
  Instruction *Lo = B.fcmp(CmpPred::LE, T, B.lit(0.0), "t.le0");
  Lo->setAnnotation("t <= 0");
  B.condbr(Lo, ClampLo, ChkHi);

  B.setInsertAppend(ClampLo);
  B.ret(P0);

  B.setInsertAppend(ChkHi);
  Instruction *Hi = B.fcmp(CmpPred::GE, T, B.lit(1.0), "t.ge1");
  Hi->setAnnotation("t >= 1");
  B.condbr(Hi, ClampHi, Body);

  B.setInsertAppend(ClampHi);
  B.ret(P1);

  B.setInsertAppend(Body);
  // h(t) = p0 + (p1 - p0) * t^2 * (3 - 2t)  (smoothstep blend).
  Value *T2 = B.fmul(T, T, "t2");
  Value *Blend = B.fmul(T2, B.fsub(B.lit(3.0), B.fmul(B.lit(2.0), T)),
                        "blend");
  Value *Span = B.fsub(P1, P0, "span");
  B.ret(B.fadd(P0, B.fmul(Span, Blend), "h"));
  return F;
}
