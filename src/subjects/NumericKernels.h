//===--- NumericKernels.h - Realistic numeric subject programs -*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Realistic numeric kernels beyond the paper's own subjects, used to
/// exercise the analyses on the kind of code the paper's introduction
/// motivates (aerospace/robotics/physics style numerics): a quadratic
/// equation solver with discriminant branching, a ray-sphere
/// intersection test, and a cubic Hermite interpolation with clamping.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SUBJECTS_NUMERICKERNELS_H
#define WDM_SUBJECTS_NUMERICKERNELS_H

#include "ir/Module.h"

namespace wdm::subjects {

struct QuadraticSolver {
  ir::Function *F = nullptr; ///< (a, b, c) -> number of real roots.
  /// The discriminant-sign branch (disc < 0).
  const ir::Instruction *DiscBranch = nullptr;
  /// The degenerate-coefficient branch (a == 0).
  const ir::Instruction *LinearBranch = nullptr;
};

/// solve a*x^2 + b*x + c = 0:
///   a == 0        -> returns 1 (linear; ignoring the b == 0 subcase)
///   disc < 0      -> returns 0
///   disc == 0     -> returns 1    (boundary condition of interest!)
///   otherwise     -> returns 2
/// The disc == 0 case is a classic boundary-value target: a measure-zero
/// surface b^2 == 4ac that random testing cannot hit.
QuadraticSolver buildQuadraticSolver(ir::Module &M);

struct RaySphere {
  ir::Function *F = nullptr; ///< (ox, dx, r) -> hit distance or -1.
  const ir::Instruction *HitBranch = nullptr;
};

/// 1-D ray vs circle of radius r centered at origin: the ray starts at
/// ox with direction dx (normalized by |dx|); returns the entry distance
/// or -1 on miss. Tangency (discriminant == 0) is the boundary.
RaySphere buildRaySphere(ir::Module &M);

/// Cubic Hermite interpolation h(t) on [0, 1] with clamping branches at
/// t <= 0 and t >= 1; (p0, p1, t) -> value. The clamp comparisons are
/// boundary sites; overflow is reachable through huge slopes.
ir::Function *buildHermite(ir::Module &M);

} // namespace wdm::subjects

#endif // WDM_SUBJECTS_NUMERICKERNELS_H
