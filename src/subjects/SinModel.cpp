//===--- SinModel.cpp - Glibc 2.19 sin branch model ---------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "subjects/SinModel.h"

#include "ir/IRBuilder.h"
#include "support/FPUtils.h"

#include <cmath>

using namespace wdm;
using namespace wdm::ir;
using namespace wdm::subjects;

double SinModel::refBoundary(unsigned I) const {
  return fromBits(static_cast<uint64_t>(Thresholds[I]) << 32);
}

/// Emits an odd Horner polynomial r * (1 + r2*(C3 + r2*(C5 + ...))) for
/// the coefficient list \p Coeffs (highest degree first).
static Value *emitOddPoly(IRBuilder &B, Value *R,
                          const std::vector<double> &Coeffs) {
  Value *R2 = B.fmul(R, R, "r2");
  Value *Acc = B.lit(Coeffs.front());
  for (size_t I = 1; I < Coeffs.size(); ++I)
    Acc = B.fadd(B.fmul(R2, Acc), B.lit(Coeffs[I]));
  return B.fmul(R, Acc);
}

/// Builds the shared argument-reduction core: x = n*pi + r with
/// r in [-pi/2, pi/2), sin(x) = (-1)^n sin(r). The parity sign is
/// computed arithmetically (1 - 2*(n - 2*floor(n/2))) so the body stays
/// comparison-free and the model's boundary sites are exactly the five
/// dispatch tests.
static Function *buildSinCore(Module &M) {
  Function *F = M.addFunction("wdm_sin_core", Type::Double);
  Argument *X = F->addArg(Type::Double, "x");
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder B(M);
  B.setInsertAppend(Entry);

  Value *T = B.fmul(X, B.lit(0.3183098861837907), "t"); // x / pi
  Value *N = B.floor(B.fadd(T, B.lit(0.5)), "n");
  Value *R = B.fsub(X, B.fmul(N, B.lit(M_PI)), "r");
  Value *HalfFloor = B.floor(B.fmul(N, B.lit(0.5)));
  Value *Parity = B.fsub(N, B.fmul(HalfFloor, B.lit(2.0)), "parity");
  Value *Sign = B.fsub(B.lit(1.0), B.fmul(B.lit(2.0), Parity), "sign");

  Value *S = emitOddPoly(B, R,
                         {2.7557319223985893e-06, -0.0001984126984126984,
                          0.008333333333333333, -0.16666666666666666, 1.0});
  B.ret(B.fmul(Sign, S, "sin.x"));
  return F;
}

SinModel subjects::buildSinModel(Module &M) {
  SinModel Out;
  Function *Core = buildSinCore(M);

  Function *F = M.addFunction("glibc_sin", Type::Double);
  Out.F = F;
  Argument *X = F->addArg(Type::Double, "x");

  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Tiny = F->addBlock("range.tiny");
  BasicBlock *Chk2 = F->addBlock("chk2");
  BasicBlock *Poly1 = F->addBlock("range.poly");
  BasicBlock *Chk3 = F->addBlock("chk3");
  BasicBlock *Poly2 = F->addBlock("range.mid");
  BasicBlock *Chk4 = F->addBlock("chk4");
  BasicBlock *Reduce = F->addBlock("range.reduce");
  BasicBlock *Chk5 = F->addBlock("chk5");
  BasicBlock *Huge = F->addBlock("range.huge");
  BasicBlock *NaNBlk = F->addBlock("range.nan");

  IRBuilder B(M);
  B.setInsertAppend(Entry);
  Value *HW = B.highword(X, "m");
  Value *K = B.iand(HW, B.litInt(0x7fffffff), "k");

  const char *CmpAnnot[5] = {
      "k < 0x3e500000  // |x| < 1.490120e-08",
      "k < 0x3feb6000  // |x| < 8.554690e-01",
      "k < 0x400368fd  // |x| < 2.426260e+00",
      "k < 0x419921fb  // |x| < 1.054140e+08",
      "k < 0x7ff00000  // |x| < 2^1024",
  };
  BasicBlock *CheckBlocks[5] = {Entry, Chk2, Chk3, Chk4, Chk5};
  BasicBlock *BodyBlocks[5] = {Tiny, Poly1, Poly2, Reduce, Huge};
  BasicBlock *NextBlocks[5] = {Chk2, Chk3, Chk4, Chk5, NaNBlk};

  for (unsigned I = 0; I < 5; ++I) {
    B.setInsertAppend(CheckBlocks[I]);
    Instruction *Cmp = B.icmp(
        CmpPred::LT, K, B.litInt(static_cast<int64_t>(Out.Thresholds[I])));
    Cmp->setAnnotation(CmpAnnot[I]);
    Out.KCompares[I] = Cmp;
    B.condbr(Cmp, BodyBlocks[I], NextBlocks[I]);
  }

  // |x| < 2^-26: sin(x) rounds to x.
  B.setInsertAppend(Tiny);
  B.ret(X);

  // |x| < 0.855469: degree-7 Taylor polynomial.
  B.setInsertAppend(Poly1);
  B.ret(emitOddPoly(B, X,
                    {-0.0001984126984126984, 0.008333333333333333,
                     -0.16666666666666666, 1.0}));

  // |x| < 2.426260: one reduction step handles the excursion past pi/2.
  B.setInsertAppend(Poly2);
  B.ret(B.call(Core, {X}));

  // |x| < 1.054140e8: argument reduction.
  B.setInsertAppend(Reduce);
  B.ret(B.call(Core, {X}));

  // |x| < 2^1024: same reduction, degraded accuracy (model fidelity is
  // irrelevant to the boundary study).
  B.setInsertAppend(Huge);
  B.ret(B.call(Core, {X}));

  // x is inf or NaN: x - x yields NaN.
  B.setInsertAppend(NaNBlk);
  B.ret(B.fsub(X, X));
  return Out;
}
