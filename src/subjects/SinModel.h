//===--- SinModel.h - Glibc 2.19 sin branch model --------------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 6.2 case study subject: Glibc 2.19's `sin` dispatches on
/// the high machine word of |x| (paper Fig. 8):
/// \code
///   k = 0x7fffffff & m;
///   if      (k < 0x3e500000) ...  // |x| < 1.490120e-08
///   else if (k < 0x3feb6000) ...  // |x| < 8.554690e-01
///   else if (k < 0x400368fd) ...  // |x| < 2.426260e+00
///   else if (k < 0x419921fb) ...  // |x| < 1.054140e+08
///   else if (k < 0x7ff00000) ...  // |x| < 2^1024
///   else ...
/// \endcode
/// This model reproduces that branch structure bit-exactly (highword +
/// mask + the five integer comparisons) over polynomial/argument-
/// reduction bodies. The bodies deliberately contain no comparisons, so
/// the boundary sites are exactly the five `k < c` tests — 10 boundary
/// conditions, of which the 2 at k = 0x7ff00000 are unreachable from
/// finite inputs (2^1024 exceeds the largest double), as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SUBJECTS_SINMODEL_H
#define WDM_SUBJECTS_SINMODEL_H

#include "ir/Module.h"

#include <array>

namespace wdm::subjects {

struct SinModel {
  ir::Function *F = nullptr;
  /// The five threshold constants, in branch order.
  std::array<uint32_t, 5> Thresholds = {0x3e500000u, 0x3feb6000u,
                                        0x400368fdu, 0x419921fbu,
                                        0x7ff00000u};
  /// The five `k < c` comparison instructions, in branch order.
  std::array<const ir::Instruction *, 5> KCompares = {};

  /// The positive double whose high word equals Thresholds[I] with a zero
  /// low word — the developer-suggested boundary ("ref" row of Table 2).
  double refBoundary(unsigned I) const;
};

SinModel buildSinModel(ir::Module &M);

} // namespace wdm::subjects

#endif // WDM_SUBJECTS_SINMODEL_H
