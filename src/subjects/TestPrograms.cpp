//===--- TestPrograms.cpp - Small IR corpus for tests -----------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "subjects/TestPrograms.h"

#include "ir/IRBuilder.h"

using namespace wdm;
using namespace wdm::ir;

Function *subjects::buildStraightline(Module &M) {
  Function *F = M.addFunction("straightline", Type::Double);
  Argument *A = F->addArg(Type::Double, "a");
  Argument *B2 = F->addArg(Type::Double, "b");
  IRBuilder B(M);
  B.setInsertAppend(F->addBlock("entry"));
  // Sequence the emissions explicitly: C++ argument evaluation order is
  // unspecified, and tests depend on fadd/fsub/fmul layout order.
  Value *Sum = B.fadd(A, B2);
  Value *Diff = B.fsub(A, B2);
  B.ret(B.fmul(Sum, Diff));
  return F;
}

Function *subjects::buildLoopAccum(Module &M) {
  Function *F = M.addFunction("loop_accum", Type::Double);
  Argument *X = F->addArg(Type::Double, "x");
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Header = F->addBlock("header");
  BasicBlock *Body = F->addBlock("body");
  BasicBlock *Exit = F->addBlock("exit");

  IRBuilder B(M);
  B.setInsertAppend(Entry);
  Instruction *Acc = B.alloca_(Type::Double, "acc");
  Instruction *I = B.alloca_(Type::Int, "i");
  B.store(Acc, B.lit(0.0));
  B.store(I, B.litInt(0));
  B.br(Header);

  B.setInsertAppend(Header);
  Value *IV = B.load(I, "i.cur");
  Value *More = B.icmp(CmpPred::LT, IV, B.litInt(20));
  B.condbr(More, Body, Exit);

  B.setInsertAppend(Body);
  Value *AV = B.load(Acc, "acc.cur");
  Value *Next = B.fadd(B.fmul(AV, B.lit(0.5)), X);
  B.store(Acc, Next);
  Value *IV2 = B.load(I);
  B.store(I, B.iadd(IV2, B.litInt(1)));
  B.br(Header);

  B.setInsertAppend(Exit);
  B.ret(B.load(Acc));
  return F;
}

Function *subjects::buildInfiniteLoop(Module &M) {
  Function *F = M.addFunction("infinite_loop", Type::Double);
  F->addArg(Type::Double, "x");
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Spin = F->addBlock("spin");
  IRBuilder B(M);
  B.setInsertAppend(Entry);
  B.br(Spin);
  B.setInsertAppend(Spin);
  B.br(Spin);
  return F;
}

Function *subjects::buildTrapAlways(Module &M) {
  Function *F = M.addFunction("trap_always", Type::Double);
  F->addArg(Type::Double, "x");
  IRBuilder B(M);
  B.setInsertAppend(F->addBlock("entry"));
  B.trap(7, "always traps");
  return F;
}

Function *subjects::buildClassifier(Module &M) {
  Function *F = M.addFunction("classifier", Type::Double);
  Argument *X = F->addArg(Type::Double, "x");
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Neg = F->addBlock("neg");
  BasicBlock *NegDeep = F->addBlock("neg.deep");
  BasicBlock *NegShallow = F->addBlock("neg.shallow");
  BasicBlock *Pos = F->addBlock("pos");
  BasicBlock *Big = F->addBlock("big");
  BasicBlock *Mid = F->addBlock("mid");
  BasicBlock *Magic = F->addBlock("magic");
  BasicBlock *Plain = F->addBlock("plain");

  IRBuilder B(M);
  B.setInsertAppend(Entry);
  B.condbr(B.fcmp(CmpPred::LT, X, B.lit(0.0), "is.neg"), Neg, Pos);

  B.setInsertAppend(Neg);
  B.condbr(B.fcmp(CmpPred::LT, X, B.lit(-100.0), "is.deep"), NegDeep,
           NegShallow);
  B.setInsertAppend(NegDeep);
  B.ret(B.lit(-2.0));
  B.setInsertAppend(NegShallow);
  B.ret(B.lit(-1.0));

  B.setInsertAppend(Pos);
  B.condbr(B.fcmp(CmpPred::GT, X, B.lit(100.0), "is.big"), Big, Mid);
  B.setInsertAppend(Big);
  B.ret(B.lit(2.0));

  B.setInsertAppend(Mid);
  B.condbr(B.fcmp(CmpPred::EQ, X, B.lit(42.0), "is.magic"), Magic, Plain);
  B.setInsertAppend(Magic);
  B.ret(B.lit(99.0));
  B.setInsertAppend(Plain);
  B.ret(B.lit(1.0));
  return F;
}

Function *subjects::buildCallChain(Module &M) {
  Function *G = M.addFunction("callchain_g", Type::Double);
  Argument *GX = G->addArg(Type::Double, "x");
  IRBuilder B(M);
  B.setInsertAppend(G->addBlock("entry"));
  B.ret(B.fmul(B.lit(2.0), GX));

  Function *F = M.addFunction("callchain_f", Type::Double);
  Argument *FX = F->addArg(Type::Double, "x");
  B.setInsertAppend(F->addBlock("entry"));
  B.ret(B.fadd(B.call(G, {FX}), B.lit(1.0)));
  return F;
}
