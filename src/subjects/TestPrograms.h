//===--- TestPrograms.h - Small IR corpus for tests ------------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#ifndef WDM_SUBJECTS_TESTPROGRAMS_H
#define WDM_SUBJECTS_TESTPROGRAMS_H

#include "ir/Module.h"

namespace wdm::subjects {

/// f(a, b) = (a + b) * (a - b); straight-line arithmetic.
ir::Function *buildStraightline(ir::Module &M);

/// f(x) = 20 iterations of acc = acc * 0.5 + x starting at 0; exercises
/// alloca slots, an int counter, and a loop back edge.
ir::Function *buildLoopAccum(ir::Module &M);

/// Loops forever; exercises the interpreter's step budget.
ir::Function *buildInfiniteLoop(ir::Module &M);

/// Traps unconditionally with trap id 7.
ir::Function *buildTrapAlways(ir::Module &M);

/// Nested classification:
///   x < 0    : (x < -100 ? -2 : -1)
///   x > 100  : 2
///   x == 42  : 99
///   otherwise: 1
/// Five branch directions require distinct input regions; reaching
/// x == 42 exactly is the interesting coverage target.
ir::Function *buildClassifier(ir::Module &M);

/// g(x) = 2 * x and f(x) = g(x) + 1; exercises calls.
ir::Function *buildCallChain(ir::Module &M);

} // namespace wdm::subjects

#endif // WDM_SUBJECTS_TESTPROGRAMS_H
