//===--- BuildInfo.cpp - Build provenance stamping --------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "support/BuildInfo.h"

using namespace wdm;
using namespace wdm::support;
using wdm::json::Value;

// Injected per-TU by CMake (set_source_files_properties on this file);
// a non-CMake compile still links with honest placeholders.
#ifndef WDM_GIT_DESCRIBE
#define WDM_GIT_DESCRIBE "unknown"
#endif
#ifndef WDM_COMPILER
#define WDM_COMPILER "unknown"
#endif
#ifndef WDM_CXX_FLAGS
#define WDM_CXX_FLAGS ""
#endif
#ifndef WDM_BUILD_TYPE
#define WDM_BUILD_TYPE "unknown"
#endif

const BuildInfo &wdm::support::buildInfo() {
  static const BuildInfo Info{WDM_GIT_DESCRIBE, WDM_COMPILER,
                              WDM_CXX_FLAGS, WDM_BUILD_TYPE};
  return Info;
}

json::Value wdm::support::buildInfoJson() {
  const BuildInfo &I = buildInfo();
  return Value::object()
      .set("git", Value::string(I.GitDescribe))
      .set("compiler", Value::string(I.Compiler))
      .set("flags", Value::string(I.Flags))
      .set("build_type", Value::string(I.BuildType));
}
