//===--- BuildInfo.h - Build provenance stamping ---------------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Who built this binary, from what: git describe, compiler id/version,
/// the configured flags, and the CMake build type — injected by the
/// build system as compile definitions on BuildInfo.cpp (so only one TU
/// rebuilds when the commit changes). Stamped into `wdm --version`,
/// `suite_started` NDJSON events, BENCH_*.json roots, and the Report's
/// telemetry "metrics" section, so perf numbers and logs stay
/// attributable to a build.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SUPPORT_BUILDINFO_H
#define WDM_SUPPORT_BUILDINFO_H

#include "support/Json.h"

#include <string>

namespace wdm::support {

struct BuildInfo {
  std::string GitDescribe; ///< `git describe --always --dirty --tags`.
  std::string Compiler;    ///< e.g. "GNU 13.2.0".
  std::string Flags;       ///< CMAKE_CXX_FLAGS + build-type flags.
  std::string BuildType;   ///< e.g. "Release"; "unknown" outside CMake.
};

/// The stamped build info ("unknown" fields when the build system did
/// not inject them).
const BuildInfo &buildInfo();

/// {"git": ..., "compiler": ..., "flags": ..., "build_type": ...}.
json::Value buildInfoJson();

} // namespace wdm::support

#endif // WDM_SUPPORT_BUILDINFO_H
