//===--- Casting.h - Hand-rolled isa/cast/dyn_cast RTTI --------*- C++ -*-===//
//
// Part of the wdm project: weak-distance minimization for floating-point
// analysis (reproduction of Fu & Su, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style opt-in RTTI. A class opts in by providing a static
/// `classof(const Base *)` predicate, typically backed by a Kind enum stored
/// in the base class. See ir/Value.h for the canonical use.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SUPPORT_CASTING_H
#define WDM_SUPPORT_CASTING_H

#include <cassert>

namespace wdm {

/// Returns true if \p Val is an instance of type To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Downcast that yields nullptr when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return Val && isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return Val && isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace wdm

#endif // WDM_SUPPORT_CASTING_H
