//===--- Error.h - Exception-free error handling ---------------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `Status` and `Expected<T>`: lightweight, exception-free error propagation
/// in the spirit of llvm::Error / llvm::Expected. Library code never throws.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SUPPORT_ERROR_H
#define WDM_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace wdm {

/// Result of an operation that can fail with a diagnostic message.
class Status {
public:
  /// Constructs a success status.
  Status() = default;

  /// Constructs a failure status carrying \p Message.
  static Status error(std::string Message) {
    Status S;
    S.Message = std::move(Message);
    S.Failed = true;
    return S;
  }

  static Status success() { return Status(); }

  bool ok() const { return !Failed; }
  explicit operator bool() const { return ok(); }

  /// The diagnostic message; empty on success.
  const std::string &message() const { return Message; }

private:
  std::string Message;
  bool Failed = false;
};

/// Either a value of type T or an error message. Modeled after
/// llvm::Expected but without the checked-error discipline.
template <typename T> class Expected {
public:
  /*implicit*/ Expected(T Value) : Value(std::move(Value)) {}
  /*implicit*/ Expected(Status S) : Err(S.message()) {
    assert(!S.ok() && "Expected constructed from success Status");
  }

  static Expected<T> error(std::string Message) {
    Expected<T> E;
    E.Err = std::move(Message);
    return E;
  }

  bool hasValue() const { return Value.has_value(); }
  explicit operator bool() const { return hasValue(); }

  T &get() {
    assert(hasValue() && "Expected<T>::get() on error state");
    return *Value;
  }
  const T &get() const {
    assert(hasValue() && "Expected<T>::get() on error state");
    return *Value;
  }
  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// The error message; only valid when !hasValue().
  const std::string &error() const {
    assert(!hasValue() && "Expected<T>::error() on value state");
    return Err;
  }

  /// Moves the value out, leaving the Expected in a moved-from state.
  T take() {
    assert(hasValue() && "Expected<T>::take() on error state");
    return std::move(*Value);
  }

private:
  Expected() = default;

  std::optional<T> Value;
  std::string Err;
};

} // namespace wdm

#endif // WDM_SUPPORT_ERROR_H
