//===--- FPUtils.cpp - IEEE-754 binary64 bit-level utilities -------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "support/FPUtils.h"

#include <cmath>
#include <cstring>

using namespace wdm;

uint64_t wdm::bitsOf(double X) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(X), "binary64 expected");
  std::memcpy(&Bits, &X, sizeof(Bits));
  return Bits;
}

double wdm::fromBits(uint64_t Bits) {
  double X;
  std::memcpy(&X, &Bits, sizeof(X));
  return X;
}

uint32_t wdm::highWord(double X) {
  return static_cast<uint32_t>(bitsOf(X) >> 32);
}

uint32_t wdm::lowWord(double X) {
  return static_cast<uint32_t>(bitsOf(X) & 0xffffffffu);
}

int64_t wdm::orderedBits(double X) {
  uint64_t Bits = bitsOf(X);
  // Positive floats are already ordered by their bit patterns; negative
  // floats order in reverse, so mirror them below zero.
  if (Bits >> 63)
    return static_cast<int64_t>(0x8000000000000000ull - Bits);
  return static_cast<int64_t>(Bits);
}

uint64_t wdm::ulpDistance(double A, double B) {
  if (std::isnan(A) || std::isnan(B))
    return ~0ull;
  int64_t IA = orderedBits(A);
  int64_t IB = orderedBits(B);
  // +0.0 and -0.0 are the same real number; orderedBits already maps both
  // to 0 (bits 0x0 -> 0 and 0x8000...0 -> 0), so plain subtraction works.
  if (IA >= IB)
    return static_cast<uint64_t>(IA) - static_cast<uint64_t>(IB);
  return static_cast<uint64_t>(IB) - static_cast<uint64_t>(IA);
}

double wdm::ulpDistanceAsDouble(double A, double B) {
  return static_cast<double>(ulpDistance(A, B));
}

double wdm::fromOrderedBits(int64_t Ordered) {
  if (Ordered < 0)
    return fromBits(0x8000000000000000ull - static_cast<uint64_t>(Ordered));
  return fromBits(static_cast<uint64_t>(Ordered));
}

int64_t wdm::maxOrderedFinite() {
  return orderedBits(std::numeric_limits<double>::max());
}

double wdm::clampedFromOrderedBits(int64_t Ordered) {
  int64_t Max = maxOrderedFinite();
  if (Ordered > Max)
    Ordered = Max;
  if (Ordered < -Max)
    Ordered = -Max;
  return fromOrderedBits(Ordered);
}

double wdm::nextUp(double X) {
  return std::nextafter(X, std::numeric_limits<double>::infinity());
}

double wdm::nextDown(double X) {
  return std::nextafter(X, -std::numeric_limits<double>::infinity());
}

bool wdm::isNonFinite(double X) { return !std::isfinite(X); }
