//===--- FPUtils.h - IEEE-754 binary64 bit-level utilities -----*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-level floating-point helpers: raw bit access, the high machine word
/// used by Glibc's sin (paper Fig. 8), ULP distance (the integer metric the
/// paper suggests for mitigating Limitation 2), and neighbor enumeration.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SUPPORT_FPUTILS_H
#define WDM_SUPPORT_FPUTILS_H

#include <cstdint>
#include <limits>

namespace wdm {

/// Reinterprets a double as its raw IEEE-754 bit pattern.
uint64_t bitsOf(double X);

/// Reinterprets a bit pattern as a double.
double fromBits(uint64_t Bits);

/// The high 32-bit machine word of \p X; this is the `m` in Glibc sin's
/// `k = 0x7fffffff & m` (paper Fig. 8, Section 6.2).
uint32_t highWord(double X);

/// The low 32-bit machine word of \p X.
uint32_t lowWord(double X);

/// Maps a double onto a signed integer scale that is monotone in the usual
/// ordering of the reals: negative doubles map below nonnegative ones and
/// adjacent floats map to adjacent integers. NaNs map to extreme values.
int64_t orderedBits(double X);

/// The number of representable doubles strictly between \p A and \p B plus
/// one when they differ; 0 iff A == B bitwise-after-normalizing-zeros.
/// Saturates at numeric_limits<uint64_t>::max() for NaN operands.
uint64_t ulpDistance(double A, double B);

/// ulpDistance rounded into a double; large distances lose precision but
/// remain monotone enough to steer minimization.
double ulpDistanceAsDouble(double A, double B);

/// Inverse of orderedBits for values in the image of finite doubles.
double fromOrderedBits(int64_t Ordered);

/// orderedBits of the largest finite double; the valid ordered range of
/// finite doubles is [-maxOrderedFinite(), maxOrderedFinite()].
int64_t maxOrderedFinite();

/// Clamps an ordered-bits value into the finite range and maps it back to
/// a double. The ULP pattern search uses this to walk the float number
/// line without stepping into infinities or NaNs.
double clampedFromOrderedBits(int64_t Ordered);

/// Two's-complement addition on the ordered-bits scale. The searchers'
/// large jumps may leave the int64 range; wrapping (followed by the
/// caller's clamp) is the established trajectory, so keep it — but as
/// defined unsigned arithmetic rather than signed overflow.
inline int64_t orderedBitsAdd(int64_t Base, int64_t Delta) {
  return static_cast<int64_t>(static_cast<uint64_t>(Base) +
                              static_cast<uint64_t>(Delta));
}

/// Next representable double above \p X (toward +inf).
double nextUp(double X);

/// Next representable double below \p X (toward -inf).
double nextDown(double X);

/// True if X is +/-inf or NaN.
bool isNonFinite(double X);

/// Canonicalizes a NaN to the positive quiet NaN (finite values and
/// infinities pass through untouched). The execution tiers apply this to
/// every floating-point *computation* result: x86 propagates the NaN
/// payload of whichever operand the compiler happened to put in the
/// destination register, so without canonicalization two correct
/// compilations of the same arithmetic can disagree on NaN bits — and
/// the interpreter and the VM must agree bit-for-bit. Plain data moves
/// (select, load/store, globals, arguments) still preserve raw bits.
inline double canonicalizeNaN(double X) {
  return X == X ? X : std::numeric_limits<double>::quiet_NaN();
}

/// Largest finite double, i.e. the MAX of Algorithm 3's overflow check.
inline constexpr double MaxDouble = std::numeric_limits<double>::max();

/// Machine epsilon of binary64, i.e. GSL_DBL_EPSILON.
inline constexpr double DblEpsilon = std::numeric_limits<double>::epsilon();

} // namespace wdm

#endif // WDM_SUPPORT_FPUTILS_H
