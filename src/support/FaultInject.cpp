//===--- FaultInject.cpp - Deterministic fault-injection harness ---------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include <cerrno>
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>
#include <string_view>

namespace wdm::fault {

std::string envSpec() {
  const char *E = std::getenv("WDM_FAULT");
  return E ? std::string(E) : std::string();
}

namespace {

/// Sleeps \p Sec wall-clock seconds, resuming across EINTR so an
/// injected delay is exact even when signals land (the suite layer
/// installs handlers without SA_RESTART).
void sleepFully(double Sec) {
  if (Sec <= 0)
    return;
  timespec Req;
  Req.tv_sec = static_cast<time_t>(Sec);
  Req.tv_nsec = static_cast<long>((Sec - static_cast<double>(Req.tv_sec)) * 1e9);
  timespec Rem;
  while (nanosleep(&Req, &Rem) == -1 && errno == EINTR)
    Req = Rem;
}

bool parseClause(std::string_view Text, Clause &Out, std::string &Err) {
  // action[:param]@job:<index>[#<attempt|*>]
  size_t At = Text.find('@');
  if (At == std::string_view::npos) {
    Err = "missing '@job:' selector";
    return false;
  }
  std::string_view Head = Text.substr(0, At);
  std::string_view Tail = Text.substr(At + 1);

  size_t Colon = Head.find(':');
  Out.Action = std::string(Head.substr(0, Colon));
  Out.Param = 0;
  if (Colon != std::string_view::npos) {
    std::string P(Head.substr(Colon + 1));
    char *End = nullptr;
    Out.Param = std::strtod(P.c_str(), &End);
    if (P.empty() || End == P.c_str() || *End != '\0') {
      Err = "bad parameter '" + P + "'";
      return false;
    }
  }
  if (Out.Action != "crash" && Out.Action != "hang" && Out.Action != "oom" &&
      Out.Action != "slow-heartbeat" && Out.Action != "exit" &&
      Out.Action != "sleep") {
    Err = "unknown action '" + Out.Action + "'";
    return false;
  }

  if (Tail.rfind("job:", 0) != 0) {
    Err = "selector must be 'job:<index>'";
    return false;
  }
  Tail.remove_prefix(4);

  Out.Attempt = 1;
  size_t Hash = Tail.find('#');
  if (Hash != std::string_view::npos) {
    std::string_view A = Tail.substr(Hash + 1);
    if (A == "*") {
      Out.Attempt = 0;
    } else {
      char *End = nullptr;
      std::string AS(A);
      unsigned long V = std::strtoul(AS.c_str(), &End, 10);
      if (AS.empty() || *End != '\0' || V == 0) {
        Err = "bad attempt selector '" + AS + "'";
        return false;
      }
      Out.Attempt = static_cast<unsigned>(V);
    }
    Tail = Tail.substr(0, Hash);
  }

  std::string Idx(Tail);
  char *End = nullptr;
  unsigned long long V = std::strtoull(Idx.c_str(), &End, 10);
  if (Idx.empty() || *End != '\0') {
    Err = "bad job index '" + Idx + "'";
    return false;
  }
  Out.JobIndex = static_cast<size_t>(V);
  return true;
}

} // namespace

Expected<std::vector<Clause>> parse(const std::string &Text) {
  std::vector<Clause> Plan;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t End = Text.find_first_of(",;", Pos);
    if (End == std::string::npos)
      End = Text.size();
    // Trim surrounding whitespace from the clause.
    size_t B = Pos, E = End;
    while (B < E && std::isspace(static_cast<unsigned char>(Text[B])))
      ++B;
    while (E > B && std::isspace(static_cast<unsigned char>(Text[E - 1])))
      --E;
    if (B < E) {
      Clause C;
      std::string Err;
      std::string_view Part(Text.data() + B, E - B);
      if (!parseClause(Part, C, Err))
        return Status::error("WDM_FAULT: clause '" + std::string(Part) +
                             "': " + Err);
      Plan.push_back(std::move(C));
    }
    if (End == Text.size())
      break;
    Pos = End + 1;
  }
  if (Plan.empty())
    return Status::error("WDM_FAULT: empty fault spec");
  return Plan;
}

std::optional<Clause> actionFor(const std::vector<Clause> &Plan,
                                size_t JobIndex, unsigned Attempt) {
  for (const Clause &C : Plan)
    if (C.matches(JobIndex, Attempt))
      return C;
  return std::nullopt;
}

void injectChild(const Clause &C) {
  if (C.Action == "crash") {
    std::abort();
  } else if (C.Action == "exit") {
    _Exit(C.Param > 0 ? static_cast<int>(C.Param) : 9);
  } else if (C.Action == "hang") {
    // A worst-case hang: deaf to SIGTERM, so only the driver's SIGKILL
    // escalation can reclaim the slot.
    std::signal(SIGTERM, SIG_IGN);
    std::signal(SIGINT, SIG_IGN);
    for (;;)
      sleepFully(3600);
  } else if (C.Action == "oom") {
    // Allocate and touch until the allocator gives up. Under RLIMIT_AS
    // this is a genuine resource-limit death; the bad_alloc text on
    // stderr is what the driver's limit attribution looks for.
    size_t StepMb = C.Param > 0 ? static_cast<size_t>(C.Param) : 64;
    std::vector<char *> Held;
    try {
      for (;;) {
        char *P = new char[StepMb << 20];
        for (size_t I = 0; I < (StepMb << 20); I += 4096)
          P[I] = 1;
        Held.push_back(P);
      }
    } catch (const std::bad_alloc &) {
      std::fputs("wdm fault: std::bad_alloc (injected oom)\n", stderr);
      std::fflush(stderr);
      std::abort();
    }
  } else if (C.Action == "slow-heartbeat") {
    // Total silence — no output, no heartbeat — then proceed normally.
    sleepFully(C.Param > 0 ? C.Param : 5);
  }
  // "sleep" is a driver-side action: a no-op in the child.
}

} // namespace wdm::fault
