//===--- FaultInject.h - Deterministic fault-injection harness -*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The suite layer's fault-tolerance contract (deadlines, stall
/// detection, retries, quarantine, resource limits, graceful shutdown)
/// is only trustworthy if every path is exercised by *real* dying,
/// hanging, and thrashing worker processes — not mocks. This module is
/// that harness: a `WDM_FAULT` environment spec names deterministic
/// faults to inject into specific suite jobs (by expansion index) on
/// specific attempts, and `wdm run-job` children plus the JobScheduler
/// dispatch loop honor it.
///
/// Grammar (comma- or semicolon-separated clauses):
///
///   WDM_FAULT = clause [',' clause]...
///   clause    = action [':' param] '@job:' index ['#' (attempt | '*')]
///
/// The attempt selector defaults to 1 (first attempt only — so a
/// retried job recovers, exercising the retry-then-success path);
/// `#*` injects on every attempt (the crash-loop / quarantine path).
///
/// Child-side actions (performed by `wdm run-job` after spec parse,
/// identified via the internal `--fault-tag=<index>.<attempt>` flag the
/// scheduler appends whenever WDM_FAULT is set):
///
///   crash              abort() — die by SIGABRT like a real crash
///   hang               ignore SIGTERM and sleep forever (forces the
///                      driver's full SIGTERM→grace→SIGKILL escalation)
///   oom[:mb_step]      allocate+touch memory until the allocator fails
///                      (under RLIMIT_AS: a real resource-limit kill)
///   slow-heartbeat[:s] stay silent (no output, no heartbeat) for s
///                      seconds (default 5) before running normally —
///                      trips a stall deadline shorter than s
///   exit[:code]        _exit(code) (default 9) without a report
///
/// Driver-side action (performed by the JobScheduler worker loop right
/// before dispatching the job; interruptible by shutdown):
///
///   sleep[:s]          sleep s seconds (default 3) before dispatch —
///                      opens a deterministic window for signal-driven
///                      shutdown tests in *both* scheduler modes
///
/// Everything here is inert unless WDM_FAULT is set; production runs
/// never pay for it.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SUPPORT_FAULTINJECT_H
#define WDM_SUPPORT_FAULTINJECT_H

#include "support/Error.h"

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace wdm::fault {

/// One parsed WDM_FAULT clause.
struct Clause {
  std::string Action; ///< "crash", "hang", "oom", ...
  double Param = 0;   ///< The optional ':' parameter (0 = unset).
  size_t JobIndex = 0;
  unsigned Attempt = 1; ///< 0 = every attempt ('#*').

  /// True when this clause fires for (JobIndex, Attempt).
  bool matches(size_t Job, unsigned AttemptNo) const {
    return JobIndex == Job && (Attempt == 0 || Attempt == AttemptNo);
  }
};

/// The raw WDM_FAULT text; empty when unset. Reads the environment on
/// every call (cheap, and tests flip it between runs).
std::string envSpec();

/// True when WDM_FAULT is set and non-empty.
inline bool enabled() { return !envSpec().empty(); }

/// Parses a WDM_FAULT spec. Unknown actions and malformed clauses are
/// errors — a typo'd fault plan must fail loudly, not silently inject
/// nothing.
Expected<std::vector<Clause>> parse(const std::string &Text);

/// First clause of \p Plan matching (JobIndex, Attempt), if any.
std::optional<Clause> actionFor(const std::vector<Clause> &Plan,
                                size_t JobIndex, unsigned Attempt);

/// Performs a child-side action in this process (crash/hang/oom/
/// slow-heartbeat/exit). Returns normally only for actions that let the
/// job proceed (slow-heartbeat) or driver-side actions (sleep), which
/// are no-ops here.
void injectChild(const Clause &C);

} // namespace wdm::fault

#endif // WDM_SUPPORT_FAULTINJECT_H
