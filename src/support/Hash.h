//===--- Hash.h - Stable content hashing -----------------------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a 64-bit hashing for content-addressed identifiers. The suite
/// layer derives job IDs from the canonical spec text with this hash, so
/// IDs are stable across runs, processes, and machines — they depend on
/// the job's content, never on its position in a suite.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SUPPORT_HASH_H
#define WDM_SUPPORT_HASH_H

#include <cstdint>
#include <string>
#include <string_view>

namespace wdm {

/// FNV-1a over \p Text (64-bit offset basis / prime).
inline uint64_t fnv1a64(std::string_view Text) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char C : Text) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// The 16-digit lowercase-hex spelling of fnv1a64(Text).
inline std::string fnv1a64Hex(std::string_view Text) {
  static const char Digits[] = "0123456789abcdef";
  uint64_t H = fnv1a64(Text);
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[static_cast<size_t>(I)] = Digits[H & 0xf];
    H >>= 4;
  }
  return Out;
}

} // namespace wdm

#endif // WDM_SUPPORT_HASH_H
