//===--- Json.cpp - JSON writer/reader + bench reports ----------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/BuildInfo.h"
#include "support/StringUtils.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

using namespace wdm;
using namespace wdm::json;

std::string wdm::json::escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string wdm::json::numberToJson(double V) {
  if (std::isnan(V))
    return "\"nan\"";
  if (std::isinf(V))
    return V > 0 ? "\"inf\"" : "\"-inf\"";
  return formatDouble(V);
}

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

Value Value::boolean(bool B) {
  Value V;
  V.K = Kind::Bool;
  V.B = B;
  return V;
}

Value Value::number(double D) {
  Value V;
  V.K = Kind::Number;
  V.NF = NumForm::Double;
  V.Num = D;
  return V;
}

Value Value::number(uint64_t U) {
  Value V;
  V.K = Kind::Number;
  V.NF = NumForm::UInt;
  V.UNum = U;
  V.Num = static_cast<double>(U);
  return V;
}

Value Value::number(int64_t I) {
  if (I >= 0)
    return number(static_cast<uint64_t>(I));
  Value V;
  V.K = Kind::Number;
  V.NF = NumForm::Int;
  V.INum = I;
  V.Num = static_cast<double>(I);
  return V;
}

Value Value::string(std::string S) {
  Value V;
  V.K = Kind::String;
  V.Str = std::move(S);
  return V;
}

Value Value::array() {
  Value V;
  V.K = Kind::Array;
  return V;
}

Value Value::object() {
  Value V;
  V.K = Kind::Object;
  return V;
}

bool Value::asBool(bool Default) const {
  return K == Kind::Bool ? B : Default;
}

double Value::asDouble(double Default) const {
  if (K == Kind::Number)
    return Num;
  if (K == Kind::String) {
    if (Str == "inf")
      return HUGE_VAL;
    if (Str == "-inf")
      return -HUGE_VAL;
    if (Str == "nan")
      return std::nan("");
  }
  return Default;
}

uint64_t Value::asUint(uint64_t Default) const {
  if (K != Kind::Number)
    return Default;
  switch (NF) {
  case NumForm::UInt:
    return UNum;
  case NumForm::Int:
    return INum >= 0 ? static_cast<uint64_t>(INum) : Default;
  case NumForm::Double:
    return Num >= 0 && Num < 1.8446744073709552e19
               ? static_cast<uint64_t>(Num)
               : Default;
  }
  return Default;
}

int64_t Value::asInt(int64_t Default) const {
  if (K != Kind::Number)
    return Default;
  switch (NF) {
  case NumForm::UInt:
    return UNum <= static_cast<uint64_t>(INT64_MAX)
               ? static_cast<int64_t>(UNum)
               : Default;
  case NumForm::Int:
    return INum;
  case NumForm::Double:
    return static_cast<int64_t>(Num);
  }
  return Default;
}

const std::string &Value::asString() const {
  static const std::string Empty;
  return K == Kind::String ? Str : Empty;
}

Value &Value::push(Value V) {
  Elems.push_back(std::move(V));
  return Elems.back();
}

const Value &Value::at(size_t I) const {
  static const Value Null;
  return I < Elems.size() ? Elems[I] : Null;
}

Value &Value::set(std::string Key, Value V) {
  for (auto &[K2, V2] : Members) {
    if (K2 == Key) {
      V2 = std::move(V);
      return *this;
    }
  }
  Members.emplace_back(std::move(Key), std::move(V));
  return *this;
}

bool Value::remove(const std::string &Key) {
  for (auto It = Members.begin(); It != Members.end(); ++It) {
    if (It->first == Key) {
      Members.erase(It);
      return true;
    }
  }
  return false;
}

const Value *Value::find(const std::string &Key) const {
  for (const auto &[K2, V2] : Members)
    if (K2 == Key)
      return &V2;
  return nullptr;
}

void Value::dumpTo(std::string &Out) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += B ? "true" : "false";
    break;
  case Kind::Number:
    switch (NF) {
    case NumForm::UInt:
      Out += std::to_string(UNum);
      break;
    case NumForm::Int:
      Out += std::to_string(INum);
      break;
    case NumForm::Double:
      Out += numberToJson(Num);
      break;
    }
    break;
  case Kind::String:
    Out += '"';
    Out += escape(Str);
    Out += '"';
    break;
  case Kind::Array:
    Out += '[';
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (I)
        Out += ", ";
      Elems[I].dumpTo(Out);
    }
    Out += ']';
    break;
  case Kind::Object:
    Out += '{';
    for (size_t I = 0; I < Members.size(); ++I) {
      if (I)
        Out += ", ";
      Out += '"';
      Out += escape(Members[I].first);
      Out += "\": ";
      Members[I].second.dumpTo(Out);
    }
    Out += '}';
    break;
  }
}

std::string Value::dump() const {
  std::string Out;
  dumpTo(Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Expected<Value> run() {
    Value V;
    if (std::string E = parseValue(V, 0); !E.empty())
      return Expected<Value>::error(E);
    skipWs();
    if (Pos != Text.size())
      return Expected<Value>::error(err("trailing characters"));
    return V;
  }

private:
  static constexpr int MaxDepth = 64;

  std::string err(const std::string &What) const {
    return "json: " + What + " at offset " + std::to_string(Pos);
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool lit(std::string_view S) {
    if (Text.substr(Pos, S.size()) == S) {
      Pos += S.size();
      return true;
    }
    return false;
  }

  /// Returns an error message, or "" on success.
  std::string parseValue(Value &Out, int Depth) {
    if (Depth > MaxDepth)
      return err("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return err("unexpected end of input");
    char C = Text[Pos];
    if (C == 'n')
      return lit("null") ? "" : err("bad literal");
    if (C == 't') {
      if (!lit("true"))
        return err("bad literal");
      Out = Value::boolean(true);
      return "";
    }
    if (C == 'f') {
      if (!lit("false"))
        return err("bad literal");
      Out = Value::boolean(false);
      return "";
    }
    if (C == '"')
      return parseString(Out);
    if (C == '[')
      return parseArray(Out, Depth);
    if (C == '{')
      return parseObject(Out, Depth);
    return parseNumber(Out);
  }

  std::string parseString(Value &Out) {
    ++Pos; // opening quote
    std::string S;
    while (true) {
      if (Pos >= Text.size())
        return err("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        break;
      if (static_cast<unsigned char>(C) < 0x20)
        return err("raw control character in string");
      if (C != '\\') {
        S += C;
        continue;
      }
      if (Pos >= Text.size())
        return err("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        S += E;
        break;
      case 'n':
        S += '\n';
        break;
      case 't':
        S += '\t';
        break;
      case 'r':
        S += '\r';
        break;
      case 'b':
        S += '\b';
        break;
      case 'f':
        S += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return err("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= H - '0';
          else if (H >= 'a' && H <= 'f')
            Code |= H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            Code |= H - 'A' + 10;
          else
            return err("bad \\u escape");
        }
        // UTF-8 encode (BMP only; surrogate pairs are out of scope for
        // the spec/report vocabulary).
        if (Code < 0x80) {
          S += static_cast<char>(Code);
        } else if (Code < 0x800) {
          S += static_cast<char>(0xC0 | (Code >> 6));
          S += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          S += static_cast<char>(0xE0 | (Code >> 12));
          S += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          S += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return err("unknown escape");
      }
    }
    Out = Value::string(std::move(S));
    return "";
  }

  std::string parseNumber(Value &Out) {
    size_t Start = Pos;
    bool Integral = true;
    if (eat('-'))
      ;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-')) {
      if (!std::isdigit(static_cast<unsigned char>(Text[Pos])))
        Integral = false;
      ++Pos;
    }
    if (Pos == Start)
      return err("expected value");
    std::string Tok(Text.substr(Start, Pos - Start));
    errno = 0;
    if (Integral) {
      char *End = nullptr;
      if (Tok[0] == '-') {
        long long I = std::strtoll(Tok.c_str(), &End, 10);
        if (errno == 0 && End && !*End) {
          Out = Value::number(static_cast<int64_t>(I));
          return "";
        }
      } else {
        unsigned long long U = std::strtoull(Tok.c_str(), &End, 10);
        if (errno == 0 && End && !*End) {
          Out = Value::number(static_cast<uint64_t>(U));
          return "";
        }
      }
      errno = 0;
    }
    char *End = nullptr;
    double D = std::strtod(Tok.c_str(), &End);
    if (!End || *End)
      return err("malformed number '" + Tok + "'");
    Out = Value::number(D);
    return "";
  }

  std::string parseArray(Value &Out, int Depth) {
    ++Pos; // '['
    Out = Value::array();
    skipWs();
    if (eat(']'))
      return "";
    while (true) {
      Value Elem;
      if (std::string E = parseValue(Elem, Depth + 1); !E.empty())
        return E;
      Out.push(std::move(Elem));
      skipWs();
      if (eat(']'))
        return "";
      if (!eat(','))
        return err("expected ',' or ']'");
    }
  }

  std::string parseObject(Value &Out, int Depth) {
    ++Pos; // '{'
    Out = Value::object();
    skipWs();
    if (eat('}'))
      return "";
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return err("expected member name");
      Value Key;
      if (std::string E = parseString(Key); !E.empty())
        return E;
      skipWs();
      if (!eat(':'))
        return err("expected ':'");
      Value Member;
      if (std::string E = parseValue(Member, Depth + 1); !E.empty())
        return E;
      Out.set(Key.asString(), std::move(Member));
      skipWs();
      if (eat('}'))
        return "";
      if (!eat(','))
        return err("expected ',' or '}'");
    }
  }

  std::string_view Text;
  size_t Pos = 0;
};

} // namespace

Expected<Value> Value::parse(std::string_view Text) {
  return Parser(Text).run();
}

Value wdm::json::deepMerge(Value Base, const Value &Overlay) {
  if (Overlay.isNull())
    return Base;
  if (!Base.isObject() || !Overlay.isObject())
    return Overlay;
  for (const auto &[Key, V] : Overlay.members()) {
    const Value *Existing = Base.find(Key);
    Base.set(Key, Existing ? deepMerge(*Existing, V) : V);
  }
  return Base;
}

Expected<std::vector<Value>>
wdm::json::readNdjsonFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Expected<std::vector<Value>>::error("cannot open '" + Path + "'");
  std::vector<Value> Out;
  std::string Line;
  while (std::getline(In, Line)) {
    if (trim(Line).empty())
      continue;
    if (Expected<Value> Doc = Value::parse(Line))
      Out.push_back(Doc.take());
    // else: a crash-truncated or foreign line; not a checkpoint record.
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// BenchJson
//===----------------------------------------------------------------------===//

BenchJson::BenchJson(std::string BenchName)
    : BenchName(std::move(BenchName)), Root(Value::object()),
      Entries(Value::array()) {
  field("hardware_threads",
        static_cast<uint64_t>(std::thread::hardware_concurrency()));
}

Value &BenchJson::current() {
  return Entries.size() == 0
             ? Root
             : const_cast<Value &>(Entries.at(Entries.size() - 1));
}

BenchJson &BenchJson::entry(const std::string &Name) {
  Entries.push(Value::object().set("name", Value::string(Name)));
  return *this;
}

BenchJson &BenchJson::field(const std::string &Key, double V) {
  current().set(Key, Value::number(V));
  return *this;
}

BenchJson &BenchJson::field(const std::string &Key, uint64_t V) {
  current().set(Key, Value::number(V));
  return *this;
}

BenchJson &BenchJson::field(const std::string &Key, const std::string &V) {
  current().set(Key, Value::string(V));
  return *this;
}

BenchJson &BenchJson::timing(double WallSeconds, uint64_t Evals) {
  field("wall_seconds", WallSeconds);
  field("evals", Evals);
  field("evals_per_sec",
        WallSeconds > 0 ? static_cast<double>(Evals) / WallSeconds : 0.0);
  return *this;
}

std::string BenchJson::json() const {
  Value Doc = Value::object();
  Doc.set("bench", Value::string(BenchName));
  // Every BENCH_*.json names the build it measured, so perf history
  // stays attributable after the fact.
  Doc.set("build", support::buildInfoJson());
  for (const auto &[Key, V] : Root.members())
    Doc.set(Key, V);
  Doc.set("entries", Entries);
  return Doc.dump() + "\n";
}

bool BenchJson::write() const {
  std::string Dir;
  if (const char *Env = std::getenv("WDM_BENCH_DIR"))
    Dir = Env;
  std::string Path =
      (Dir.empty() ? std::string() : Dir + "/") + "BENCH_" + BenchName +
      ".json";
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << json();
  return static_cast<bool>(Out);
}
