//===--- Json.h - JSON writer/reader + bench reports -----------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one JSON layer of the project: a small document model (Value) with
/// a writer and the reader the api::AnalysisSpec parser needs, plus the
/// BenchJson report accumulator the perf-tracking benches share
/// (historically bench/bench_json.h; promoted here so the api layer can
/// serialize specs and reports with the same code the benches use).
///
/// Writer rules: strings are escaped per RFC 8259 (quotes, backslashes,
/// and all control characters); non-finite doubles have no JSON literal
/// and are emitted as the strings "inf" / "-inf" / "nan", which
/// Value::asDouble converts back.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SUPPORT_JSON_H
#define WDM_SUPPORT_JSON_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wdm::json {

/// Escapes \p S for inclusion inside a JSON string literal (without the
/// surrounding quotes).
std::string escape(std::string_view S);

/// Serializes one double. Finite values print with shortest-round-trip
/// precision; non-finite values become the quoted strings "inf", "-inf",
/// "nan" (JSON has no literals for them).
std::string numberToJson(double V);

/// A JSON document: null, bool, number, string, array, or object.
/// Objects preserve insertion order. Numbers remember whether they were
/// written as integers so 64-bit seeds round-trip exactly.
class Value {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Value() = default; ///< Null.
  static Value boolean(bool B);
  static Value number(double V);
  static Value number(uint64_t V);
  static Value number(int64_t V);
  static Value number(int V) { return number(static_cast<int64_t>(V)); }
  static Value number(unsigned V) {
    return number(static_cast<uint64_t>(V));
  }
  static Value string(std::string S);
  static Value array();
  static Value object();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool(bool Default = false) const;
  /// Numeric access; the string forms "inf"/"-inf"/"nan" convert too.
  double asDouble(double Default = 0.0) const;
  uint64_t asUint(uint64_t Default = 0) const;
  int64_t asInt(int64_t Default = 0) const;
  const std::string &asString() const; ///< Empty for non-strings.

  // Array interface.
  Value &push(Value V); ///< Returns the pushed element.
  size_t size() const { return Elems.size(); }
  /// Element \p I; a shared null Value when out of range or not an array.
  const Value &at(size_t I) const;

  // Object interface.
  Value &set(std::string Key, Value V); ///< Returns *this (chainable).
  /// Removes member \p Key when present; returns true when removed.
  /// Later members keep their insertion order.
  bool remove(const std::string &Key);
  /// Member lookup; nullptr when missing or not an object.
  const Value *find(const std::string &Key) const;
  /// Object members in insertion order (empty for non-objects).
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }

  /// Compact one-line serialization.
  std::string dump() const;

  /// Parses one JSON document (trailing garbage is an error). Returns a
  /// diagnostic with an offset on failure.
  static Expected<Value> parse(std::string_view Text);

private:
  Kind K = Kind::Null;
  bool B = false;
  // Number storage: the double value plus the integral source form, when
  // the literal was integral, so uint64 seeds survive the round trip.
  enum class NumForm : uint8_t { Double, Int, UInt };
  NumForm NF = NumForm::Double;
  double Num = 0;
  int64_t INum = 0;
  uint64_t UNum = 0;
  std::string Str;
  std::vector<Value> Elems;
  std::vector<std::pair<std::string, Value>> Members;

  void dumpTo(std::string &Out) const;
};

/// Structural merge of two documents: objects merge member-by-member
/// recursively (overlay members win; base members the overlay does not
/// mention survive), every other kind — including arrays — is replaced
/// by the overlay. A null overlay leaves the base untouched. This is the
/// suite layer's defaults-then-overrides composition rule.
Value deepMerge(Value Base, const Value &Overlay);

/// Reads a newline-delimited-JSON file: one document per line. Blank
/// lines and unparseable lines are skipped — a driver killed mid-write
/// leaves a truncated final line, and the checkpoint reader must treat
/// it as "that record never happened" rather than fail. Only a file
/// that cannot be opened is an error.
Expected<std::vector<Value>> readNdjsonFile(const std::string &Path);

/// Accumulates one benchmark report and serializes it as
/// {"bench": ..., "threads": ..., "entries": [{...}, ...]}.
/// field() calls before the first entry() attach to the report root;
/// later calls attach to the most recent entry.
class BenchJson {
public:
  explicit BenchJson(std::string BenchName);

  /// Starts a new entry (one measured unit, e.g. one GSL function or one
  /// microbenchmark).
  BenchJson &entry(const std::string &Name);

  BenchJson &field(const std::string &Key, double Value);
  BenchJson &field(const std::string &Key, uint64_t Value);
  BenchJson &field(const std::string &Key, const std::string &Value);

  /// Convenience: wall seconds + evals + derived evals/sec on the
  /// current entry.
  BenchJson &timing(double WallSeconds, uint64_t Evals);

  std::string json() const;

  /// Writes BENCH_<name>.json into $WDM_BENCH_DIR (default: the current
  /// directory). Returns false on I/O failure.
  bool write() const;

private:
  Value &current();

  std::string BenchName;
  Value Root;    ///< Report-root object.
  Value Entries; ///< Array of entry objects.
};

} // namespace wdm::json

#endif // WDM_SUPPORT_JSON_H
