//===--- RNG.cpp - Deterministic random number generation ----------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "support/RNG.h"

#include "support/FPUtils.h"

#include <cassert>
#include <cmath>

using namespace wdm;

static uint64_t splitMix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

RNG::RNG(uint64_t Seed) {
  uint64_t Mix = Seed;
  for (uint64_t &Word : S)
    Word = splitMix64(Mix);
}

uint64_t RNG::next() {
  uint64_t Result = rotl(S[0] + S[3], 23) + S[0];
  uint64_t T = S[1] << 17;
  S[2] ^= S[0];
  S[3] ^= S[1];
  S[1] ^= S[2];
  S[0] ^= S[3];
  S[2] ^= T;
  S[3] = rotl(S[3], 45);
  return Result;
}

double RNG::uniform() {
  // 53 high bits scaled into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double RNG::uniform(double Lo, double Hi) {
  assert(Lo < Hi && "empty uniform range");
  return Lo + (Hi - Lo) * uniform();
}

double RNG::normal() {
  if (HasSpare) {
    HasSpare = false;
    return Spare;
  }
  double U1 = uniform();
  double U2 = uniform();
  // Guard against log(0).
  if (U1 <= 0)
    U1 = 0x1.0p-53;
  double R = std::sqrt(-2.0 * std::log(U1));
  double Theta = 2.0 * M_PI * U2;
  Spare = R * std::sin(Theta);
  HasSpare = true;
  return R * std::cos(Theta);
}

double RNG::normal(double Mean, double Sigma) {
  return Mean + Sigma * normal();
}

uint64_t RNG::below(uint64_t N) {
  assert(N > 0 && "below(0) is meaningless");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = (0 - N) % N;
  for (;;) {
    uint64_t Draw = next();
    if (Draw >= Threshold)
      return Draw % N;
  }
}

int64_t RNG::intIn(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty integer range");
  return Lo + static_cast<int64_t>(
                  below(static_cast<uint64_t>(Hi - Lo) + 1));
}

bool RNG::chance(double P) { return uniform() < P; }

double RNG::anyFiniteDouble() {
  for (;;) {
    uint64_t Bits = next();
    double X = fromBits(Bits);
    if (std::isfinite(X))
      return X;
  }
}

RNG RNG::split() { return RNG(next() ^ 0xa0761d6478bd642full); }
