//===--- RNG.h - Deterministic random number generation --------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seedable xoshiro256++ generator. All stochastic components of the
/// optimizers draw from an explicitly passed RNG so that every experiment
/// in the paper reproduction is bit-reproducible across runs.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SUPPORT_RNG_H
#define WDM_SUPPORT_RNG_H

#include <cstddef>
#include <cstdint>

namespace wdm {

/// xoshiro256++ seeded through SplitMix64.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit draw.
  uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [Lo, Hi). Requires Lo < Hi and both finite.
  double uniform(double Lo, double Hi);

  /// Standard normal draw (Box-Muller, cached spare).
  double normal();

  /// Normal draw with the given mean and standard deviation.
  double normal(double Mean, double Sigma);

  /// Uniform integer in [0, N). Requires N > 0.
  uint64_t below(uint64_t N);

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t intIn(int64_t Lo, int64_t Hi);

  /// True with probability P.
  bool chance(double P);

  /// A double drawn uniformly over the *bit patterns* of finite doubles in
  /// the widest sense: uniform exponent, uniform mantissa, uniform sign.
  /// This matches how the paper's random starting points can land anywhere
  /// in F, including huge magnitudes that plain uniform() never reaches.
  double anyFiniteDouble();

  /// Derives an independent child generator; advances this generator.
  RNG split();

private:
  uint64_t S[4];
  double Spare = 0;
  bool HasSpare = false;
};

} // namespace wdm

#endif // WDM_SUPPORT_RNG_H
