//===--- Statistics.cpp - Streaming statistics ----------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cmath>

using namespace wdm;

void RunningStat::push(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double RunningStat::mean() const { return N ? Mean : 0.0; }

double RunningStat::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const { return N ? Min : 0.0; }

double RunningStat::max() const { return N ? Max : 0.0; }

double wdm::quantile(std::vector<double> Data, double Q) {
  if (Data.empty())
    return 0.0;
  std::sort(Data.begin(), Data.end());
  if (Q <= 0)
    return Data.front();
  if (Q >= 1)
    return Data.back();
  double Pos = Q * static_cast<double>(Data.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  double Frac = Pos - static_cast<double>(Lo);
  if (Lo + 1 >= Data.size())
    return Data.back();
  return Data[Lo] * (1.0 - Frac) + Data[Lo + 1] * Frac;
}
