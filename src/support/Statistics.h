//===--- Statistics.h - Streaming statistics -------------------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Welford-style streaming statistics used by the experiment harnesses to
/// summarize sampling runs (Table 2's min/max/hits rows, Fig. 9 progress).
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SUPPORT_STATISTICS_H
#define WDM_SUPPORT_STATISTICS_H

#include <cstdint>
#include <vector>

namespace wdm {

/// Accumulates count / mean / variance / extrema of a stream of doubles
/// without storing the stream.
class RunningStat {
public:
  void push(double X);

  uint64_t count() const { return N; }
  bool empty() const { return N == 0; }
  double mean() const;
  /// Sample variance (N-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

private:
  uint64_t N = 0;
  double Mean = 0;
  double M2 = 0;
  double Min = 0;
  double Max = 0;
};

/// Returns the \p Q quantile (0 <= Q <= 1) of \p Data by linear
/// interpolation; \p Data is copied and sorted. Empty input yields 0.
double quantile(std::vector<double> Data, double Q);

} // namespace wdm

#endif // WDM_SUPPORT_STATISTICS_H
