//===--- StringUtils.cpp - Formatting helpers ------------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <ctime>

using namespace wdm;

std::string wdm::formatf(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::string wdm::formatDouble(double X) {
  if (std::isnan(X))
    return std::signbit(X) ? "-nan" : "nan";
  if (std::isinf(X))
    return std::signbit(X) ? "-inf" : "inf";
  char Buffer[64];
  auto [Ptr, Ec] = std::to_chars(Buffer, Buffer + sizeof(Buffer), X);
  (void)Ec;
  return std::string(Buffer, Ptr);
}

std::string wdm::formatDoubleCompact(double X, int Digits) {
  if (std::isnan(X))
    return std::signbit(X) ? "-nan" : "nan";
  if (std::isinf(X))
    return std::signbit(X) ? "-inf" : "inf";
  std::string Raw = formatf("%.*e", Digits - 1, X);
  // Strip exponent zero padding: 1.8e+308 -> 1.8e308, 5.3e+01 -> 5.3e1.
  std::string Out;
  size_t EPos = Raw.find('e');
  if (EPos == std::string::npos)
    return Raw;
  Out = Raw.substr(0, EPos + 1);
  std::string_view Exp = std::string_view(Raw).substr(EPos + 1);
  bool Negative = !Exp.empty() && Exp.front() == '-';
  if (!Exp.empty() && (Exp.front() == '+' || Exp.front() == '-'))
    Exp.remove_prefix(1);
  while (Exp.size() > 1 && Exp.front() == '0')
    Exp.remove_prefix(1);
  if (Negative)
    Out += '-';
  Out += Exp;
  return Out;
}

std::vector<std::string> wdm::splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Sep) {
      Parts.emplace_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Parts;
}

std::string_view wdm::trim(std::string_view Text) {
  auto IsSpace = [](char C) {
    return C == ' ' || C == '\t' || C == '\n' || C == '\r';
  };
  while (!Text.empty() && IsSpace(Text.front()))
    Text.remove_prefix(1);
  while (!Text.empty() && IsSpace(Text.back()))
    Text.remove_suffix(1);
  return Text;
}

bool wdm::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.substr(0, Prefix.size()) == Prefix;
}

std::string wdm::isoUtcNow() {
  using namespace std::chrono;
  auto Now = system_clock::now();
  time_t Secs = system_clock::to_time_t(Now);
  auto Millis =
      duration_cast<milliseconds>(Now.time_since_epoch()).count() % 1000;
  std::tm Tm{};
  gmtime_r(&Secs, &Tm);
  return formatf("%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", Tm.tm_year + 1900,
                 Tm.tm_mon + 1, Tm.tm_mday, Tm.tm_hour, Tm.tm_min,
                 Tm.tm_sec, static_cast<int>(Millis));
}

unsigned wdm::envUnsigned(const char *Name, unsigned Default) {
  const char *V = std::getenv(Name);
  if (!V || !*V || *V == '-') // strtoul silently wraps negatives
    return Default;
  char *End = nullptr;
  unsigned long Parsed = std::strtoul(V, &End, 10);
  if (!End || *End != '\0' || Parsed > 1'000'000)
    return Default;
  return static_cast<unsigned>(Parsed);
}
