//===--- StringUtils.h - Formatting helpers --------------------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string, shortest round-trip double
/// printing, and small string manipulation helpers used by the IR printer
/// and the experiment tables.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SUPPORT_STRINGUTILS_H
#define WDM_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace wdm {

/// printf-style formatting into a std::string.
std::string formatf(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Shortest decimal string that round-trips to exactly \p X
/// (std::to_chars); "inf"/"-inf"/"nan" for non-finite values.
std::string formatDouble(double X);

/// Scientific format with \p Digits significant digits, e.g. "1.8e308".
/// This is the compact style the paper uses in Tables 4 and 5.
std::string formatDoubleCompact(double X, int Digits = 2);

/// Splits on a separator character; keeps empty fields.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view Text);

/// True if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Current wall-clock time as ISO-8601 UTC with millisecond precision,
/// e.g. "2026-08-07T12:34:56.789Z". Used to stamp suite NDJSON events.
std::string isoUtcNow();

/// Parses environment variable \p Name as an unsigned integer; returns
/// \p Default when unset, malformed, negative, or implausibly large
/// (> 1'000'000). The WDM_THREADS / WDM_STARTS knobs of the benches and
/// examples share this policy.
unsigned envUnsigned(const char *Name, unsigned Default);

} // namespace wdm

#endif // WDM_SUPPORT_STRINGUTILS_H
