//===--- TableWriter.cpp - Aligned console tables --------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "support/TableWriter.h"

#include <algorithm>
#include <ostream>

using namespace wdm;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {}

void Table::addRow(std::vector<std::string> Row) {
  Row.resize(std::max(Row.size(), Header.size()));
  Rows.push_back(std::move(Row));
  IsSeparator.push_back(false);
}

void Table::addSeparator() {
  Rows.emplace_back();
  IsSeparator.push_back(true);
}

void Table::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t Col = 0; Col < Header.size(); ++Col)
    Widths[Col] = Header[Col].size();
  for (const auto &Row : Rows)
    for (size_t Col = 0; Col < Row.size() && Col < Widths.size(); ++Col)
      Widths[Col] = std::max(Widths[Col], Row[Col].size());

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t Col = 0; Col < Widths.size(); ++Col) {
      const std::string &Cell = Col < Row.size() ? Row[Col] : std::string();
      OS << "  " << Cell;
      for (size_t Pad = Cell.size(); Pad < Widths[Col]; ++Pad)
        OS << ' ';
    }
    OS << '\n';
  };

  auto PrintRule = [&] {
    for (size_t Col = 0; Col < Widths.size(); ++Col) {
      OS << "  ";
      for (size_t I = 0; I < Widths[Col]; ++I)
        OS << '-';
    }
    OS << '\n';
  };

  PrintRow(Header);
  PrintRule();
  for (size_t RowIdx = 0; RowIdx < Rows.size(); ++RowIdx) {
    if (IsSeparator[RowIdx])
      PrintRule();
    else
      PrintRow(Rows[RowIdx]);
  }
}

void Table::printCSV(std::ostream &OS) const {
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t Col = 0; Col < Row.size(); ++Col) {
      if (Col)
        OS << ',';
      OS << Row[Col];
    }
    OS << '\n';
  };
  PrintRow(Header);
  for (size_t RowIdx = 0; RowIdx < Rows.size(); ++RowIdx)
    if (!IsSeparator[RowIdx])
      PrintRow(Rows[RowIdx]);
}
