//===--- TableWriter.h - Aligned console tables ----------------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-width table renderer used by every bench binary to print
/// the paper's tables (Tables 1-5) in a uniform, diffable format. Also
/// emits CSV for downstream plotting.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_SUPPORT_TABLEWRITER_H
#define WDM_SUPPORT_TABLEWRITER_H

#include <iosfwd>
#include <string>
#include <vector>

namespace wdm {

/// Collects rows of strings and renders them column-aligned.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a data row; short rows are padded with empty cells.
  void addRow(std::vector<std::string> Row);

  /// Appends a horizontal separator line.
  void addSeparator();

  size_t numRows() const { return Rows.size(); }

  /// Renders with column alignment and a header rule.
  void print(std::ostream &OS) const;

  /// Renders as comma-separated values (no separator rows).
  void printCSV(std::ostream &OS) const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
  std::vector<bool> IsSeparator;
};

} // namespace wdm

#endif // WDM_SUPPORT_TABLEWRITER_H
