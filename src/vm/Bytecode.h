//===--- Bytecode.h - Flat register bytecode for the compiled tier -*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled execution tier's program representation: each instrumented
/// ir::Function lowers to a flat array of fixed-width register instructions
/// with every operand pre-resolved at compile time —
///
///  - registers are untyped 64-bit frame slots laid out as
///    [arguments][pooled constants][instruction results][alloca slots],
///    so an operand is always a plain index (no Value* chasing, no hash
///    lookups, no RTValue type tags on the hot path);
///  - comparison predicates and global/site accesses are specialized into
///    dedicated opcodes (FCmpLT, GLoadD, SiteEnabled, ...) so dispatch
///    carries no secondary switches — in particular the instrumentation
///    opcodes read and write ExecContext state (dense global slots, the
///    raw site-enabled table) in-line;
///  - branches are pc offsets backpatched by the lowering; the 1:1
///    instruction mapping keeps the VM's step accounting bit-identical
///    to the interpreter's.
///
/// Lowering (Lowering.h) produces this; Machine.h executes it. Functions
/// the lowering cannot fit into the fixed-width encoding are marked
/// !Ok with a reason, and the factory layer (VMWeakDistance.h) falls
/// back to the interpreter for them.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_VM_BYTECODE_H
#define WDM_VM_BYTECODE_H

#include "ir/Module.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace wdm::vm {

/// One specialized opcode per dynamic behavior; comparison predicates and
/// global types are baked in so the dispatch loop never branches twice.
enum class Op : uint8_t {
  // Double arithmetic and intrinsics (R[Dest].D = op(R[A].D, R[B].D)).
  FAdd,
  FSub,
  FMul,
  FDiv,
  FRem,
  FNeg,
  FAbs,
  Sqrt,
  Sin,
  Cos,
  Tan,
  Exp,
  Log,
  Pow,
  FMin,
  FMax,
  Floor,
  // Comparisons, one opcode per predicate; results are canonical 0/1 in
  // R[Dest].I.
  FCmpEQ,
  FCmpNE,
  FCmpLT,
  FCmpLE,
  FCmpGT,
  FCmpGE,
  ICmpEQ,
  ICmpNE,
  ICmpLT,
  ICmpLE,
  ICmpGT,
  ICmpGE,
  // Integer arithmetic/bitwise (wrap-around via unsigned, like the
  // interpreter).
  IAdd,
  ISub,
  IMul,
  IAnd,
  IOr,
  IXor,
  IShl,
  ILShr,
  // Boolean connectives over canonical 0/1 integers.
  BAnd,
  BOr,
  BNot,
  // Conversions.
  SIToFP,
  FPToSI,
  HighWord,
  UlpDiff,
  // R[Dest] = R[A].I ? R[B] : R[C] (raw 8-byte copy).
  Select,
  // Alloca: R[Dest].I = Imm (the slot ordinal, the value the interpreter
  // produces); the slot's storage is the frame register SlotReg(Imm2).
  SlotAddr,
  SlotLoad,  ///< R[Dest] = R[Imm2] (Imm2 = slot register).
  SlotStore, ///< R[Imm2] = R[A].
  // Globals, pre-resolved to ExecContext dense slot Imm.
  GLoadD,
  GLoadI,
  GStoreD,
  GStoreI,
  // Instrumentation gate: R[Dest].I = site Imm enabled (raw table read).
  SiteEnabled,
  // Call: Imm2 = callee function index; Imm = offset into CallArgPool
  // where the callee's argument registers are listed; Dest = result
  // register (unused for void callees).
  Call,
  // Control flow; branch targets are instruction indices.
  Jmp,    ///< pc = Imm.
  CondBr, ///< pc = R[A].I ? Imm : Imm2; Dest = Branches[] index.
  RetD,   ///< Return R[A] as double.
  RetI,   ///< Return R[A] as int.
  RetB,   ///< Return R[A] as bool.
  RetVoid,
  Trap, ///< Imm = trap id, Imm2 = TrapMessages index.
  /// Superinstruction: the instrumentation's read-modify-write idiom
  /// `t = loadg g; r = fop t, x; storeg g, r` fused into one dispatch
  /// (the peephole in Lowering.cpp). Fields: Imm = global slot, Dest =
  /// the loadg's result register (still written, in case a later use or
  /// a branch into the fused span reads it), A/B = the fop's operand
  /// registers, C = the fop's result register, Imm2 = the fop kind
  /// (FusedFOp). Executes with the exact step accounting of the three
  /// source instructions (+2 beyond the dispatch step, with the step
  /// limit checked at each virtual boundary), then skips the two
  /// now-redundant instructions, which stay in place as branch targets.
  FusedGRmwD,
  /// Superinstruction: `r = fcmp.pred a, b; condbr r, t, f` fused into
  /// one dispatch. Fields: Dest = the compare's result register (still
  /// written for later uses), A/B = the compare operands, Imm2 = the
  /// predicate (FusedCmp). The original CondBr stays in place at pc+1
  /// and doubles as the fused handler's data carrier — its Dest is the
  /// Branches[] index for the observer and its Imm/Imm2 are the branch
  /// targets. Step accounting is exactly the unfused pair's: the
  /// dispatch step covers the compare, then the condbr's step is
  /// charged (and the limit checked) before the observer fires and the
  /// jump is taken.
  FusedFCmpBr,
};

/// The double binops eligible for FusedGRmwD (Inst::Imm2).
enum class FusedFOp : uint16_t {
  FAdd,
  FSub,
  FMul,
  FDiv,
  FMin,
  FMax,
};

/// The compare predicates eligible for FusedFCmpBr (Inst::Imm2), in
/// FCmpEQ..FCmpGE opcode order.
enum class FusedCmp : uint16_t {
  EQ,
  NE,
  LT,
  LE,
  GT,
  GE,
};

/// Fixed-width instruction. Dest/A/B/C are frame-register indices; Imm
/// and Imm2 are opcode-specific immediates (see Op). 16 bytes.
struct Inst {
  Op Opc = Op::RetVoid;
  uint16_t Dest = 0;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  uint16_t Imm2 = 0;
  int32_t Imm = 0;
};

static_assert(sizeof(Inst) <= 16, "keep the hot array cache-friendly");

/// One lowered function. When !Ok the function (and transitively its
/// callers) executes on the interpreter instead; Code is empty then.
struct CompiledFunction {
  const ir::Function *Source = nullptr;
  bool Ok = false;
  std::string RejectReason; ///< Why lowering refused (when !Ok).

  std::vector<Inst> Code;
  /// Raw bit patterns preloaded into registers [NumArgs,
  /// NumArgs + NumConsts) at frame entry (doubles, ints, and bools share
  /// the 64-bit slot).
  std::vector<uint64_t> ConstBits;
  unsigned NumArgs = 0;
  unsigned NumConsts = 0;
  unsigned FirstSlotReg = 0; ///< Register of alloca slot ordinal 0.
  unsigned NumSlots = 0;
  unsigned NumRegs = 0; ///< Total frame size in registers.
  ir::Type RetType = ir::Type::Void;

  /// Source condbr of Branches[Inst::Dest], for ExecObserver::onBranch.
  std::vector<const ir::Instruction *> Branches;
  /// Flattened per-call argument register lists (Call::Imm indexes here).
  std::vector<uint16_t> CallArgPool;
  /// Trap messages (Trap::Imm2 indexes here).
  std::vector<std::string> TrapMessages;
};

/// A whole lowered module. Function order matches the ir::Module, so
/// ExecContext's dense global indexing (module position) is shared.
struct CompiledModule {
  const ir::Module *M = nullptr;
  std::vector<CompiledFunction> Functions;
  std::unordered_map<const ir::Function *, unsigned> Index;

  const CompiledFunction *lookup(const ir::Function *F) const {
    auto It = Index.find(F);
    return It == Index.end() ? nullptr : &Functions[It->second];
  }
};

} // namespace wdm::vm

#endif // WDM_VM_BYTECODE_H
