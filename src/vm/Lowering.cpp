//===--- Lowering.cpp - ir::Module -> bytecode compiler --------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "vm/Lowering.h"

#include "obs/Telemetry.h"
#include "obs/Trace.h"
#include "support/Casting.h"
#include "support/FPUtils.h"
#include "vm/Verify.h"

#include <cassert>

using namespace wdm;
using namespace wdm::vm;
using namespace wdm::ir;

namespace {

/// Per-function lowering state.
class FunctionLowering {
public:
  FunctionLowering(const Function &F, const CompiledModule &CM,
                   const std::unordered_map<const GlobalVar *, unsigned>
                       &GlobalIdx,
                   const Limits &L)
      : F(F), CM(CM), GlobalIdx(GlobalIdx), L(L) {}

  CompiledFunction run();

private:
  bool assignRegisters(CompiledFunction &Out);
  bool emit(CompiledFunction &Out);
  uint16_t regOf(const Value *V) const;

  void reject(CompiledFunction &Out, std::string Why) {
    Out.Ok = false;
    Out.RejectReason = std::move(Why);
    Out.Code.clear();
  }

  const Function &F;
  const CompiledModule &CM;
  const std::unordered_map<const GlobalVar *, unsigned> &GlobalIdx;
  const Limits &L;

  std::unordered_map<const Value *, unsigned> Reg;
  std::unordered_map<const Instruction *, unsigned> SlotOrdinal;
};

bool FunctionLowering::assignRegisters(CompiledFunction &Out) {
  unsigned Next = 0;
  for (unsigned I = 0; I < F.numArgs(); ++I)
    Reg[F.arg(I)] = Next++;
  Out.NumArgs = Next;

  // Pool constants in first-use order; each gets a preloaded register.
  F.forEachInst([&](const Instruction *I) {
    // loadg/storeg name their global directly; load/store name a slot.
    // Neither evaluates that operand, so it never needs a register.
    unsigned FirstEvaluated = 0;
    if (I->opcode() == Opcode::Load || I->opcode() == Opcode::Store ||
        I->opcode() == Opcode::LoadGlobal ||
        I->opcode() == Opcode::StoreGlobal)
      FirstEvaluated = 1;
    for (unsigned K = FirstEvaluated; K < I->numOperands(); ++K) {
      const Value *V = I->operand(K);
      uint64_t Bits;
      if (const auto *CD = dyn_cast<ConstantDouble>(V))
        Bits = bitsOf(CD->value());
      else if (const auto *CI = dyn_cast<ConstantInt>(V))
        Bits = static_cast<uint64_t>(CI->value());
      else if (const auto *CB = dyn_cast<ConstantBool>(V))
        Bits = CB->value() ? 1 : 0;
      else
        continue;
      if (Reg.emplace(V, Next).second) {
        ++Next;
        Out.ConstBits.push_back(Bits);
      }
    }
  });
  Out.NumConsts = static_cast<unsigned>(Out.ConstBits.size());

  // Instruction results.
  F.forEachInst([&](const Instruction *I) {
    if (I->type() != Type::Void)
      Reg[I] = Next++;
  });

  // Alloca slots live in the frame too.
  Out.FirstSlotReg = Next;
  F.forEachInst([&](const Instruction *I) {
    if (I->opcode() == Opcode::Alloca) {
      SlotOrdinal[I] = Out.NumSlots++;
      ++Next;
    }
  });
  Out.NumRegs = Next;

  unsigned MaxRegs = std::min(L.MaxRegs, 65'535u);
  if (Out.NumRegs > MaxRegs) {
    reject(Out, "function '" + F.name() + "' needs " +
                    std::to_string(Out.NumRegs) + " registers (limit " +
                    std::to_string(MaxRegs) + ")");
    return false;
  }
  return true;
}

uint16_t FunctionLowering::regOf(const Value *V) const {
  auto It = Reg.find(V);
  assert(It != Reg.end() && "operand without a register");
  return static_cast<uint16_t>(It->second);
}

bool FunctionLowering::emit(CompiledFunction &Out) {
  struct Fixup {
    size_t InstIdx;
    const BasicBlock *Target;
    bool FalseArm; ///< Patch Imm2 instead of Imm.
  };
  std::vector<Fixup> Fixups;
  std::unordered_map<const BasicBlock *, size_t> BlockPc;

  unsigned MaxCode = std::min(L.MaxCode, 65'535u);

  for (size_t BI = 0; BI < F.numBlocks(); ++BI) {
    const BasicBlock *BB = F.block(BI);
    BlockPc[BB] = Out.Code.size();
    for (const auto &InstPtr : *BB) {
      const Instruction *I = InstPtr.get();
      Inst E;
      auto Bin = [&](Op O) {
        E.Opc = O;
        E.Dest = regOf(I);
        E.A = regOf(I->operand(0));
        E.B = regOf(I->operand(1));
      };
      auto Un = [&](Op O) {
        E.Opc = O;
        E.Dest = regOf(I);
        E.A = regOf(I->operand(0));
      };

      switch (I->opcode()) {
      case Opcode::FAdd:
        Bin(Op::FAdd);
        break;
      case Opcode::FSub:
        Bin(Op::FSub);
        break;
      case Opcode::FMul:
        Bin(Op::FMul);
        break;
      case Opcode::FDiv:
        Bin(Op::FDiv);
        break;
      case Opcode::FRem:
        Bin(Op::FRem);
        break;
      case Opcode::FNeg:
        Un(Op::FNeg);
        break;
      case Opcode::FAbs:
        Un(Op::FAbs);
        break;
      case Opcode::Sqrt:
        Un(Op::Sqrt);
        break;
      case Opcode::Sin:
        Un(Op::Sin);
        break;
      case Opcode::Cos:
        Un(Op::Cos);
        break;
      case Opcode::Tan:
        Un(Op::Tan);
        break;
      case Opcode::Exp:
        Un(Op::Exp);
        break;
      case Opcode::Log:
        Un(Op::Log);
        break;
      case Opcode::Pow:
        Bin(Op::Pow);
        break;
      case Opcode::FMin:
        Bin(Op::FMin);
        break;
      case Opcode::FMax:
        Bin(Op::FMax);
        break;
      case Opcode::Floor:
        Un(Op::Floor);
        break;
      case Opcode::FCmp:
        Bin(static_cast<Op>(static_cast<int>(Op::FCmpEQ) +
                            static_cast<int>(I->pred())));
        break;
      case Opcode::ICmp:
        Bin(static_cast<Op>(static_cast<int>(Op::ICmpEQ) +
                            static_cast<int>(I->pred())));
        break;
      case Opcode::IAdd:
        Bin(Op::IAdd);
        break;
      case Opcode::ISub:
        Bin(Op::ISub);
        break;
      case Opcode::IMul:
        Bin(Op::IMul);
        break;
      case Opcode::IAnd:
        Bin(Op::IAnd);
        break;
      case Opcode::IOr:
        Bin(Op::IOr);
        break;
      case Opcode::IXor:
        Bin(Op::IXor);
        break;
      case Opcode::IShl:
        Bin(Op::IShl);
        break;
      case Opcode::ILShr:
        Bin(Op::ILShr);
        break;
      case Opcode::BAnd:
        Bin(Op::BAnd);
        break;
      case Opcode::BOr:
        Bin(Op::BOr);
        break;
      case Opcode::BNot:
        Un(Op::BNot);
        break;
      case Opcode::SIToFP:
        Un(Op::SIToFP);
        break;
      case Opcode::FPToSI:
        Un(Op::FPToSI);
        break;
      case Opcode::HighWord:
        Un(Op::HighWord);
        break;
      case Opcode::UlpDiff:
        Bin(Op::UlpDiff);
        break;
      case Opcode::Select:
        E.Opc = Op::Select;
        E.Dest = regOf(I);
        E.A = regOf(I->operand(0));
        E.B = regOf(I->operand(1));
        E.C = regOf(I->operand(2));
        break;
      case Opcode::Alloca: {
        unsigned Ordinal = SlotOrdinal.at(I);
        E.Opc = Op::SlotAddr;
        E.Dest = regOf(I);
        E.Imm = static_cast<int32_t>(Ordinal);
        break;
      }
      case Opcode::Load: {
        const auto *Slot = cast<Instruction>(I->operand(0));
        E.Opc = Op::SlotLoad;
        E.Dest = regOf(I);
        E.Imm2 =
            static_cast<uint16_t>(Out.FirstSlotReg + SlotOrdinal.at(Slot));
        break;
      }
      case Opcode::Store: {
        const auto *Slot = cast<Instruction>(I->operand(0));
        E.Opc = Op::SlotStore;
        E.A = regOf(I->operand(1));
        E.Imm2 =
            static_cast<uint16_t>(Out.FirstSlotReg + SlotOrdinal.at(Slot));
        break;
      }
      case Opcode::LoadGlobal: {
        const auto *G = cast<GlobalVar>(I->operand(0));
        E.Opc = G->type() == Type::Double ? Op::GLoadD : Op::GLoadI;
        E.Dest = regOf(I);
        E.Imm = static_cast<int32_t>(GlobalIdx.at(G));
        break;
      }
      case Opcode::StoreGlobal: {
        const auto *G = cast<GlobalVar>(I->operand(0));
        E.Opc = G->type() == Type::Double ? Op::GStoreD : Op::GStoreI;
        E.A = regOf(I->operand(1));
        E.Imm = static_cast<int32_t>(GlobalIdx.at(G));
        break;
      }
      case Opcode::SiteEnabled:
        E.Opc = Op::SiteEnabled;
        E.Dest = regOf(I);
        E.Imm = I->id();
        break;
      case Opcode::Call: {
        auto CalleeIt = CM.Index.find(I->callee());
        assert(CalleeIt != CM.Index.end() && "callee outside the module");
        if (CalleeIt->second > 65'535) {
          reject(Out, "callee index of '" + I->callee()->name() +
                          "' exceeds the 16-bit encoding");
          return false;
        }
        E.Opc = Op::Call;
        E.Dest = I->type() != Type::Void ? regOf(I) : 0;
        E.Imm2 = static_cast<uint16_t>(CalleeIt->second);
        E.Imm = static_cast<int32_t>(Out.CallArgPool.size());
        for (unsigned K = 0; K < I->numOperands(); ++K)
          Out.CallArgPool.push_back(regOf(I->operand(K)));
        break;
      }
      case Opcode::Br:
        E.Opc = Op::Jmp;
        Fixups.push_back({Out.Code.size(), I->successor(0), false});
        break;
      case Opcode::CondBr:
        E.Opc = Op::CondBr;
        E.A = regOf(I->operand(0));
        E.Dest = static_cast<uint16_t>(Out.Branches.size());
        Out.Branches.push_back(I);
        Fixups.push_back({Out.Code.size(), I->successor(0), false});
        Fixups.push_back({Out.Code.size(), I->successor(1), true});
        break;
      case Opcode::Ret:
        if (I->numOperands() == 1) {
          switch (I->operand(0)->type()) {
          case Type::Double:
            E.Opc = Op::RetD;
            break;
          case Type::Int:
            E.Opc = Op::RetI;
            break;
          case Type::Bool:
            E.Opc = Op::RetB;
            break;
          case Type::Void:
            assert(false && "void-typed return operand");
            E.Opc = Op::RetVoid;
            break;
          }
          E.A = regOf(I->operand(0));
        } else {
          E.Opc = Op::RetVoid;
        }
        break;
      case Opcode::Trap:
        E.Opc = Op::Trap;
        E.Imm = I->id();
        E.Imm2 = static_cast<uint16_t>(Out.TrapMessages.size());
        Out.TrapMessages.push_back(I->annotation());
        break;
      }

      Out.Code.push_back(E);
      if (Out.Code.size() > MaxCode) {
        reject(Out, "function '" + F.name() + "' exceeds the code limit (" +
                        std::to_string(MaxCode) + " instructions)");
        return false;
      }
    }
    assert(BB->terminator() && "unterminated block reached the lowering");
  }

  for (const Fixup &Fx : Fixups) {
    size_t Pc = BlockPc.at(Fx.Target);
    if (Fx.FalseArm)
      Out.Code[Fx.InstIdx].Imm2 = static_cast<uint16_t>(Pc);
    else
      Out.Code[Fx.InstIdx].Imm = static_cast<int32_t>(Pc);
  }
  return true;
}

CompiledFunction FunctionLowering::run() {
  CompiledFunction Out;
  Out.Source = &F;
  Out.RetType = F.returnType();
  Out.Ok = true;
  if (!assignRegisters(Out))
    return Out;
  if (!emit(Out))
    return Out;
  return Out;
}

/// Peephole over the emitted code: fuse every adjacent triple
///   [i]   GLoadD  g -> t
///   [i+1] F{Add,Sub,Mul,Div,Min,Max}  a, b -> r
///   [i+2] GStoreD g <- r
/// into one FusedGRmwD at [i]. The two fused-away instructions are left
/// in place (never reached on the fallthrough path — the fused handler
/// skips them) so branch targets into the middle of the span keep their
/// original, unfused semantics, and no pc needs re-patching. The fused
/// handler performs all three effects — t and r are still written —
/// so later uses of either register see exactly the unfused values.
void fuseSuperinstructions(CompiledFunction &CF) {
  auto FusedKind = [](Op O, FusedFOp &Out) {
    switch (O) {
    case Op::FAdd:
      Out = FusedFOp::FAdd;
      return true;
    case Op::FSub:
      Out = FusedFOp::FSub;
      return true;
    case Op::FMul:
      Out = FusedFOp::FMul;
      return true;
    case Op::FDiv:
      Out = FusedFOp::FDiv;
      return true;
    case Op::FMin:
      Out = FusedFOp::FMin;
      return true;
    case Op::FMax:
      Out = FusedFOp::FMax;
      return true;
    default:
      return false;
    }
  };

  for (size_t I = 0; I + 2 < CF.Code.size(); ++I) {
    Inst &Load = CF.Code[I];
    const Inst &FOp = CF.Code[I + 1];
    const Inst &Store = CF.Code[I + 2];
    FusedFOp Kind;
    if (Load.Opc != Op::GLoadD || !FusedKind(FOp.Opc, Kind) ||
        Store.Opc != Op::GStoreD || Store.Imm != Load.Imm ||
        Store.A != FOp.Dest)
      continue;
    Inst Fused;
    Fused.Opc = Op::FusedGRmwD;
    Fused.Imm = Load.Imm;   // global slot
    Fused.Dest = Load.Dest; // t
    Fused.A = FOp.A;
    Fused.B = FOp.B;
    Fused.C = FOp.Dest; // r
    Fused.Imm2 = static_cast<uint16_t>(Kind);
    Load = Fused;
    I += 2; // the tail of this triple cannot start another one
  }
}

/// Second peephole, run after the RMW fusion: fuse every adjacent pair
///   [i]   FCmp{EQ,NE,LT,LE,GT,GE}  a, b -> r
///   [i+1] CondBr r, t, f
/// into one FusedFCmpBr at [i]. The CondBr is left in place — it is
/// both a potential branch target (with its original, unfused
/// semantics) and the fused handler's data carrier (Branches index and
/// pc targets are read from Code[pc+1]), so nothing needs re-patching.
void fuseCmpBranches(CompiledFunction &CF) {
  auto PredOf = [](Op O, FusedCmp &Out) {
    switch (O) {
    case Op::FCmpEQ:
      Out = FusedCmp::EQ;
      return true;
    case Op::FCmpNE:
      Out = FusedCmp::NE;
      return true;
    case Op::FCmpLT:
      Out = FusedCmp::LT;
      return true;
    case Op::FCmpLE:
      Out = FusedCmp::LE;
      return true;
    case Op::FCmpGT:
      Out = FusedCmp::GT;
      return true;
    case Op::FCmpGE:
      Out = FusedCmp::GE;
      return true;
    default:
      return false;
    }
  };

  for (size_t I = 0; I + 1 < CF.Code.size(); ++I) {
    Inst &Cmp = CF.Code[I];
    const Inst &Br = CF.Code[I + 1];
    FusedCmp Pred;
    if (!PredOf(Cmp.Opc, Pred) || Br.Opc != Op::CondBr || Br.A != Cmp.Dest)
      continue;
    Cmp.Opc = Op::FusedFCmpBr;
    Cmp.Imm2 = static_cast<uint16_t>(Pred);
    ++I; // the CondBr cannot start another pair
  }
}

} // namespace

CompiledModule wdm::vm::compile(const Module &M, const Limits &L) {
  obs::ScopedSpan Span("lowering");
  obs::count("vm.module_lowerings");
  CompiledModule CM;
  CM.M = &M;

  // Dense global indexing by module position — the ExecContext contract.
  std::unordered_map<const GlobalVar *, unsigned> GlobalIdx;
  for (size_t I = 0; I < M.numGlobals(); ++I)
    GlobalIdx[M.global(I)] = static_cast<unsigned>(I);

  unsigned Idx = 0;
  for (const auto &F : M)
    CM.Index[F.get()] = Idx++;
  CM.Functions.reserve(Idx);

  for (const auto &F : M)
    CM.Functions.push_back(FunctionLowering(*F, CM, GlobalIdx, L).run());

  if (L.Fuse)
    for (CompiledFunction &CF : CM.Functions)
      if (CF.Ok) {
        fuseSuperinstructions(CF);
        fuseCmpBranches(CF);
      }

  // A caller of a rejected function must fall back too: propagate
  // rejection through the call graph to a fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (CompiledFunction &CF : CM.Functions) {
      if (!CF.Ok)
        continue;
      for (const Inst &I : CF.Code) {
        if (I.Opc != Op::Call || CM.Functions[I.Imm2].Ok)
          continue;
        CF.Ok = false;
        CF.RejectReason = "calls '" +
                          CM.Functions[I.Imm2].Source->name() +
                          "', which the lowering rejected";
        CF.Code.clear();
        Changed = true;
        break;
      }
    }
  }
#ifndef NDEBUG
  {
    Status VS = verifyBytecode(CM);
    assert(VS.ok() && "lowering produced unverifiable bytecode");
    (void)VS;
  }
#endif
  return CM;
}
