//===--- Lowering.h - ir::Module -> bytecode compiler ----------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-pass lowering from the (instrumented) mini-IR to the flat bytecode
/// of Bytecode.h: registers are assigned in layout order, constants are
/// pooled and preloaded, branches become backpatched pc targets, and
/// loadg/storeg/site_enabled pre-resolve their ExecContext slot at
/// compile time. The lowering is total over today's opcode set; functions
/// that exceed the fixed-width encoding (more registers, code, or callees
/// than a 16-bit index can name) are rejected per-function — callers of a
/// rejected function reject transitively — and execute on the interpreter
/// via the factory fallback instead.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_VM_LOWERING_H
#define WDM_VM_LOWERING_H

#include "vm/Bytecode.h"

namespace wdm::vm {

/// Encoding capacity bounds. The defaults track the uint16 register/pc
/// fields; tests shrink them to force (and exercise) interpreter
/// fallback.
struct Limits {
  unsigned MaxRegs = 60'000;
  unsigned MaxCode = 60'000;
  /// Superinstruction fusion: the instrumentation read-modify-write
  /// idiom `loadg w; f{add,sub,mul,div,min,max}; storeg w` becomes one
  /// FusedGRmwD dispatch, and `fcmp.pred; condbr` pairs become one
  /// FusedFCmpBr. Semantics (including step accounting) are bit-for-bit
  /// the unfused ones; tests flip this off to diff the two encodings
  /// against each other.
  bool Fuse = true;
};

/// Lowers every function of \p M. \p M must outlive the result and must
/// not change structurally afterwards (instrument first, then compile) —
/// the same contract as exec::Engine.
CompiledModule compile(const ir::Module &M, const Limits &L = {});

} // namespace wdm::vm

#endif // WDM_VM_LOWERING_H
