//===--- Machine.cpp - Threaded-code VM for the compiled tier --------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
// This translation unit is compiled with -frounding-math (see CMakeLists)
// for exactly the same reason exec/Interpreter.cpp is: the compiler must
// not constant-fold or reorder FP operations across the fesetround calls
// that implement RoundingMode. Arithmetic here must stay bit-for-bit the
// interpreter's.
//
//===----------------------------------------------------------------------===//

#include "vm/Machine.h"

#include "support/FPUtils.h"

#include <cassert>
#include <cfenv>
#include <cmath>

using namespace wdm;
using namespace wdm::vm;
using namespace wdm::exec;

// Threaded dispatch (computed goto) on GNU-compatible compilers; the
// portable switch below compiles to an indirect jump table as well, just
// with one shared dispatch site instead of one per handler. Define
// WDM_VM_FORCE_SWITCH to build the portable path on any compiler.
#if (defined(__GNUC__) || defined(__clang__)) &&                          \
    !defined(WDM_VM_FORCE_SWITCH)
#define WDM_VM_THREADED 1
#endif

namespace {

int toFeRound(RoundingMode RM) {
  switch (RM) {
  case RoundingMode::NearestEven:
    return FE_TONEAREST;
  case RoundingMode::TowardZero:
    return FE_TOWARDZERO;
  case RoundingMode::Upward:
    return FE_UPWARD;
  case RoundingMode::Downward:
    return FE_DOWNWARD;
  }
  return FE_TONEAREST;
}

/// RAII: installs a rounding mode for the duration of a run (identical to
/// the interpreter's scope; duplicated because both live in anonymous
/// namespaces of -frounding-math TUs).
class RoundingScope {
public:
  explicit RoundingScope(RoundingMode RM) : Saved(fegetround()) {
    fesetround(toFeRound(RM));
  }
  ~RoundingScope() { fesetround(Saved); }

private:
  int Saved;
};

/// The interpreter's saturating double->int64 conversion, bit-for-bit.
int64_t saturatingFPToSI(double X) {
  if (std::isnan(X))
    return 0;
  constexpr double Lo = -9.223372036854775808e18;
  constexpr double Hi = 9.223372036854775807e18;
  if (X <= Lo)
    return INT64_MIN;
  if (X >= Hi)
    return INT64_MAX;
  return static_cast<int64_t>(X);
}

} // namespace

void Machine::initFrame(const CompiledFunction &F, size_t Base) {
  Reg *R = Stack.data() + Base;
  const uint64_t *CB = F.ConstBits.data();
  for (unsigned K = 0; K < F.NumConsts; ++K)
    R[F.NumArgs + K].U = CB[K];
  for (unsigned K = 0; K < F.NumSlots; ++K)
    R[F.FirstSlotReg + K].U = 0;
}

ExecResult Machine::run(const CompiledFunction &F, const double *Args,
                        size_t NumArgs, ExecContext &Ctx,
                        const ExecOptions &Opts) {
  assert(F.Ok && "running a rejected function");
  assert(NumArgs == F.NumArgs && "argument count mismatch");
  (void)NumArgs;
  RoundingScope Rounding(Opts.Rounding);
  if (Stack.size() < F.NumRegs)
    Stack.resize(std::max<size_t>(F.NumRegs, 256));
  for (unsigned I = 0; I < F.NumArgs; ++I)
    Stack[I].D = Args[I];
  initFrame(F, 0);
  uint64_t Steps = 0;
  return runFrame(F, 0, Ctx, Opts, Steps, 0);
}

ExecResult Machine::run(const CompiledFunction &F,
                        const std::vector<RTValue> &Args, ExecContext &Ctx,
                        const ExecOptions &Opts) {
  assert(F.Ok && "running a rejected function");
  assert(Args.size() == F.NumArgs && "argument count mismatch");
  RoundingScope Rounding(Opts.Rounding);
  if (Stack.size() < F.NumRegs)
    Stack.resize(std::max<size_t>(F.NumRegs, 256));
  for (unsigned I = 0; I < F.NumArgs; ++I) {
    switch (Args[I].type()) {
    case ir::Type::Double:
      Stack[I].D = Args[I].asDouble();
      break;
    case ir::Type::Int:
      Stack[I].I = Args[I].asInt();
      break;
    case ir::Type::Bool:
      Stack[I].I = Args[I].asBool() ? 1 : 0;
      break;
    case ir::Type::Void:
      assert(false && "void argument");
      Stack[I].U = 0;
      break;
    }
  }
  initFrame(F, 0);
  uint64_t Steps = 0;
  return runFrame(F, 0, Ctx, Opts, Steps, 0);
}

ExecResult Machine::runFrame(const CompiledFunction &F, size_t Base,
                             ExecContext &Ctx, const ExecOptions &Opts,
                             uint64_t &Steps, unsigned Depth) {
  Reg *R = Stack.data() + Base;
  const Inst *const Code = F.Code.data();
  const Inst *IP = Code;

  // Frame-hoisted context state: no hash lookups and no virtual calls on
  // the dispatch path. None of these move during a run.
  ExecObserver *const Obs = Ctx.observer();
  RTValue *const GS = Ctx.globalSlots();
  const uint8_t *const Dis = Ctx.siteDisabledTable().data();
  const int64_t NDis =
      static_cast<int64_t>(Ctx.siteDisabledTable().size());
  const uint64_t MaxSteps = Opts.MaxSteps;

  ExecResult Result;

#ifdef WDM_VM_THREADED
  // One label per Op, in exact enum order.
  static const void *const Lbl[] = {
      &&L_FAdd,   &&L_FSub,   &&L_FMul,   &&L_FDiv,   &&L_FRem,
      &&L_FNeg,   &&L_FAbs,   &&L_Sqrt,   &&L_Sin,    &&L_Cos,
      &&L_Tan,    &&L_Exp,    &&L_Log,    &&L_Pow,    &&L_FMin,
      &&L_FMax,   &&L_Floor,  &&L_FCmpEQ, &&L_FCmpNE, &&L_FCmpLT,
      &&L_FCmpLE, &&L_FCmpGT, &&L_FCmpGE, &&L_ICmpEQ, &&L_ICmpNE,
      &&L_ICmpLT, &&L_ICmpLE, &&L_ICmpGT, &&L_ICmpGE, &&L_IAdd,
      &&L_ISub,   &&L_IMul,   &&L_IAnd,   &&L_IOr,    &&L_IXor,
      &&L_IShl,   &&L_ILShr,  &&L_BAnd,   &&L_BOr,    &&L_BNot,
      &&L_SIToFP, &&L_FPToSI, &&L_HighWord, &&L_UlpDiff, &&L_Select,
      &&L_SlotAddr, &&L_SlotLoad, &&L_SlotStore, &&L_GLoadD,
      &&L_GLoadI, &&L_GStoreD, &&L_GStoreI, &&L_SiteEnabled, &&L_Call,
      &&L_Jmp,    &&L_CondBr, &&L_RetD,   &&L_RetI,   &&L_RetB,
      &&L_RetVoid, &&L_Trap,
  };
#define VM_CASE(op) L_##op:
#define VM_NEXT()                                                         \
  do {                                                                    \
    ++IP;                                                                 \
    if (++Steps > MaxSteps)                                               \
      goto L_StepLimit;                                                   \
    goto *Lbl[static_cast<uint8_t>(IP->Opc)];                             \
  } while (0)
#define VM_JUMP(pc)                                                       \
  do {                                                                    \
    IP = Code + (pc);                                                     \
    if (++Steps > MaxSteps)                                               \
      goto L_StepLimit;                                                   \
    goto *Lbl[static_cast<uint8_t>(IP->Opc)];                             \
  } while (0)

  if (++Steps > MaxSteps)
    goto L_StepLimit;
  goto *Lbl[static_cast<uint8_t>(IP->Opc)];
#else
#define VM_CASE(op) case Op::op:
#define VM_NEXT()                                                         \
  {                                                                       \
    ++IP;                                                                 \
    break;                                                                \
  }
#define VM_JUMP(pc)                                                       \
  {                                                                       \
    IP = Code + (pc);                                                     \
    break;                                                                \
  }
  for (;;) {
    if (++Steps > MaxSteps)
      goto L_StepLimit;
    switch (IP->Opc) {
#endif

  VM_CASE(FAdd) {
    R[IP->Dest].D = canonicalizeNaN(R[IP->A].D + R[IP->B].D);
    VM_NEXT();
  }
  VM_CASE(FSub) {
    R[IP->Dest].D = canonicalizeNaN(R[IP->A].D - R[IP->B].D);
    VM_NEXT();
  }
  VM_CASE(FMul) {
    R[IP->Dest].D = canonicalizeNaN(R[IP->A].D * R[IP->B].D);
    VM_NEXT();
  }
  VM_CASE(FDiv) {
    R[IP->Dest].D = canonicalizeNaN(R[IP->A].D / R[IP->B].D);
    VM_NEXT();
  }
  VM_CASE(FRem) {
    R[IP->Dest].D = canonicalizeNaN(std::fmod(R[IP->A].D, R[IP->B].D));
    VM_NEXT();
  }
  VM_CASE(FNeg) {
    R[IP->Dest].D = canonicalizeNaN(-R[IP->A].D);
    VM_NEXT();
  }
  VM_CASE(FAbs) {
    R[IP->Dest].D = canonicalizeNaN(std::fabs(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(Sqrt) {
    R[IP->Dest].D = canonicalizeNaN(std::sqrt(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(Sin) {
    R[IP->Dest].D = canonicalizeNaN(std::sin(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(Cos) {
    R[IP->Dest].D = canonicalizeNaN(std::cos(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(Tan) {
    R[IP->Dest].D = canonicalizeNaN(std::tan(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(Exp) {
    R[IP->Dest].D = canonicalizeNaN(std::exp(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(Log) {
    R[IP->Dest].D = canonicalizeNaN(std::log(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(Pow) {
    R[IP->Dest].D = canonicalizeNaN(std::pow(R[IP->A].D, R[IP->B].D));
    VM_NEXT();
  }
  VM_CASE(FMin) {
    R[IP->Dest].D = canonicalizeNaN(std::fmin(R[IP->A].D, R[IP->B].D));
    VM_NEXT();
  }
  VM_CASE(FMax) {
    R[IP->Dest].D = canonicalizeNaN(std::fmax(R[IP->A].D, R[IP->B].D));
    VM_NEXT();
  }
  VM_CASE(Floor) {
    R[IP->Dest].D = canonicalizeNaN(std::floor(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(FCmpEQ) {
    R[IP->Dest].I = R[IP->A].D == R[IP->B].D;
    VM_NEXT();
  }
  VM_CASE(FCmpNE) {
    R[IP->Dest].I = R[IP->A].D != R[IP->B].D;
    VM_NEXT();
  }
  VM_CASE(FCmpLT) {
    R[IP->Dest].I = R[IP->A].D < R[IP->B].D;
    VM_NEXT();
  }
  VM_CASE(FCmpLE) {
    R[IP->Dest].I = R[IP->A].D <= R[IP->B].D;
    VM_NEXT();
  }
  VM_CASE(FCmpGT) {
    R[IP->Dest].I = R[IP->A].D > R[IP->B].D;
    VM_NEXT();
  }
  VM_CASE(FCmpGE) {
    R[IP->Dest].I = R[IP->A].D >= R[IP->B].D;
    VM_NEXT();
  }
  VM_CASE(ICmpEQ) {
    R[IP->Dest].I = R[IP->A].I == R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(ICmpNE) {
    R[IP->Dest].I = R[IP->A].I != R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(ICmpLT) {
    R[IP->Dest].I = R[IP->A].I < R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(ICmpLE) {
    R[IP->Dest].I = R[IP->A].I <= R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(ICmpGT) {
    R[IP->Dest].I = R[IP->A].I > R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(ICmpGE) {
    R[IP->Dest].I = R[IP->A].I >= R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(IAdd) {
    R[IP->Dest].I = static_cast<int64_t>(R[IP->A].U + R[IP->B].U);
    VM_NEXT();
  }
  VM_CASE(ISub) {
    R[IP->Dest].I = static_cast<int64_t>(R[IP->A].U - R[IP->B].U);
    VM_NEXT();
  }
  VM_CASE(IMul) {
    R[IP->Dest].I = static_cast<int64_t>(R[IP->A].U * R[IP->B].U);
    VM_NEXT();
  }
  VM_CASE(IAnd) {
    R[IP->Dest].I = R[IP->A].I & R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(IOr) {
    R[IP->Dest].I = R[IP->A].I | R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(IXor) {
    R[IP->Dest].I = R[IP->A].I ^ R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(IShl) {
    R[IP->Dest].I =
        static_cast<int64_t>(R[IP->A].U << (R[IP->B].U & 63));
    VM_NEXT();
  }
  VM_CASE(ILShr) {
    R[IP->Dest].I =
        static_cast<int64_t>(R[IP->A].U >> (R[IP->B].U & 63));
    VM_NEXT();
  }
  VM_CASE(BAnd) {
    R[IP->Dest].I = R[IP->A].I & R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(BOr) {
    R[IP->Dest].I = R[IP->A].I | R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(BNot) {
    R[IP->Dest].I = R[IP->A].I ^ 1;
    VM_NEXT();
  }
  VM_CASE(SIToFP) {
    R[IP->Dest].D = static_cast<double>(R[IP->A].I);
    VM_NEXT();
  }
  VM_CASE(FPToSI) {
    R[IP->Dest].I = saturatingFPToSI(R[IP->A].D);
    VM_NEXT();
  }
  VM_CASE(HighWord) {
    R[IP->Dest].I = static_cast<int64_t>(highWord(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(UlpDiff) {
    R[IP->Dest].D = ulpDistanceAsDouble(R[IP->A].D, R[IP->B].D);
    VM_NEXT();
  }
  VM_CASE(Select) {
    R[IP->Dest].U = R[IP->A].I ? R[IP->B].U : R[IP->C].U;
    VM_NEXT();
  }
  VM_CASE(SlotAddr) {
    R[IP->Dest].I = IP->Imm;
    VM_NEXT();
  }
  VM_CASE(SlotLoad) {
    R[IP->Dest].U = R[IP->Imm2].U;
    VM_NEXT();
  }
  VM_CASE(SlotStore) {
    R[IP->Imm2].U = R[IP->A].U;
    VM_NEXT();
  }
  VM_CASE(GLoadD) {
    R[IP->Dest].D = GS[IP->Imm].asDouble();
    VM_NEXT();
  }
  VM_CASE(GLoadI) {
    R[IP->Dest].I = GS[IP->Imm].asInt();
    VM_NEXT();
  }
  VM_CASE(GStoreD) {
    GS[IP->Imm] = RTValue::ofDouble(R[IP->A].D);
    VM_NEXT();
  }
  VM_CASE(GStoreI) {
    GS[IP->Imm] = RTValue::ofInt(R[IP->A].I);
    VM_NEXT();
  }
  VM_CASE(SiteEnabled) {
    const int64_t Id = IP->Imm;
    R[IP->Dest].I = (Id < 0 || Id >= NDis) ? 1 : (Dis[Id] ? 0 : 1);
    VM_NEXT();
  }
  VM_CASE(Call) {
    const CompiledFunction &Callee = CM.Functions[IP->Imm2];
    if (Depth + 1 >= Opts.MaxCallDepth) {
      Result.Kind = ExecResult::Outcome::StepLimitExceeded;
      Result.Steps = Steps;
      return Result;
    }
    const size_t CalleeBase = Base + F.NumRegs;
    if (Stack.size() < CalleeBase + Callee.NumRegs) {
      Stack.resize(
          std::max<size_t>(CalleeBase + Callee.NumRegs, Stack.size() * 2));
      R = Stack.data() + Base;
    }
    const uint16_t *ArgRegs = F.CallArgPool.data() + IP->Imm;
    for (unsigned K = 0; K < Callee.NumArgs; ++K)
      Stack[CalleeBase + K].U = R[ArgRegs[K]].U;
    initFrame(Callee, CalleeBase);
    ExecResult Sub =
        runFrame(Callee, CalleeBase, Ctx, Opts, Steps, Depth + 1);
    R = Stack.data() + Base; // The callee may have grown the stack.
    if (!Sub.ok()) {
      Sub.Steps = Steps;
      return Sub;
    }
    switch (Callee.RetType) {
    case ir::Type::Double:
      R[IP->Dest].D = Sub.ReturnValue.asDouble();
      break;
    case ir::Type::Int:
      R[IP->Dest].I = Sub.ReturnValue.asInt();
      break;
    case ir::Type::Bool:
      R[IP->Dest].I = Sub.ReturnValue.asBool() ? 1 : 0;
      break;
    case ir::Type::Void:
      break;
    }
    VM_NEXT();
  }
  VM_CASE(Jmp) { VM_JUMP(IP->Imm); }
  VM_CASE(CondBr) {
    const bool Taken = R[IP->A].I != 0;
    if (Obs)
      Obs->onBranch(F.Branches[IP->Dest], Taken);
    VM_JUMP(Taken ? IP->Imm : IP->Imm2);
  }
  VM_CASE(RetD) {
    Result.Kind = ExecResult::Outcome::Ok;
    Result.ReturnValue = RTValue::ofDouble(R[IP->A].D);
    Result.Steps = Steps;
    return Result;
  }
  VM_CASE(RetI) {
    Result.Kind = ExecResult::Outcome::Ok;
    Result.ReturnValue = RTValue::ofInt(R[IP->A].I);
    Result.Steps = Steps;
    return Result;
  }
  VM_CASE(RetB) {
    Result.Kind = ExecResult::Outcome::Ok;
    Result.ReturnValue = RTValue::ofBool(R[IP->A].I != 0);
    Result.Steps = Steps;
    return Result;
  }
  VM_CASE(RetVoid) {
    Result.Kind = ExecResult::Outcome::Ok;
    Result.Steps = Steps;
    return Result;
  }
  VM_CASE(Trap) {
    Result.Kind = ExecResult::Outcome::Trapped;
    Result.TrapId = IP->Imm;
    Result.TrapMessage = F.TrapMessages[IP->Imm2];
    Result.Steps = Steps;
    return Result;
  }

#ifndef WDM_VM_THREADED
    }
  }
#endif

L_StepLimit:
  Result.Kind = ExecResult::Outcome::StepLimitExceeded;
  Result.Steps = Steps;
  return Result;

#undef VM_CASE
#undef VM_NEXT
#undef VM_JUMP
}
