//===--- Machine.cpp - Threaded-code VM for the compiled tier --------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
// This translation unit is compiled with -frounding-math (see CMakeLists)
// for exactly the same reason exec/Interpreter.cpp is: the compiler must
// not constant-fold or reorder FP operations across the fesetround calls
// that implement RoundingMode. Arithmetic here must stay bit-for-bit the
// interpreter's.
//
//===----------------------------------------------------------------------===//

#include "vm/Machine.h"

#include "support/FPUtils.h"

#include <cassert>
#include <cfenv>
#include <cmath>

using namespace wdm;
using namespace wdm::vm;
using namespace wdm::exec;

// Threaded dispatch (computed goto) on GNU-compatible compilers; the
// portable switch below compiles to an indirect jump table as well, just
// with one shared dispatch site instead of one per handler. Define
// WDM_VM_FORCE_SWITCH to build the portable path on any compiler.
#if (defined(__GNUC__) || defined(__clang__)) &&                          \
    !defined(WDM_VM_FORCE_SWITCH)
#define WDM_VM_THREADED 1
#endif

namespace {

int toFeRound(RoundingMode RM) {
  switch (RM) {
  case RoundingMode::NearestEven:
    return FE_TONEAREST;
  case RoundingMode::TowardZero:
    return FE_TOWARDZERO;
  case RoundingMode::Upward:
    return FE_UPWARD;
  case RoundingMode::Downward:
    return FE_DOWNWARD;
  }
  return FE_TONEAREST;
}

/// RAII: installs a rounding mode for the duration of a run (identical to
/// the interpreter's scope; duplicated because both live in anonymous
/// namespaces of -frounding-math TUs).
class RoundingScope {
public:
  explicit RoundingScope(RoundingMode RM) : Saved(fegetround()) {
    // fesetround rewrites both the x87 control word and MXCSR — tens of
    // ns per eval. In the dominant case (ambient and requested mode are
    // both to-nearest) both writes are skippable.
    if (Saved != toFeRound(RM))
      fesetround(toFeRound(RM));
    else
      Saved = -1;
  }
  ~RoundingScope() {
    if (Saved != -1)
      fesetround(Saved);
  }

private:
  int Saved;
};

/// The arithmetic of a FusedGRmwD superinstruction — exactly the fused
/// source opcode's (this TU is -frounding-math, like the unfused path).
inline double fusedEval(FusedFOp Kind, double X, double Y) {
  switch (Kind) {
  case FusedFOp::FAdd:
    return X + Y;
  case FusedFOp::FSub:
    return X - Y;
  case FusedFOp::FMul:
    return X * Y;
  case FusedFOp::FDiv:
    return X / Y;
  case FusedFOp::FMin:
    return std::fmin(X, Y);
  case FusedFOp::FMax:
    return std::fmax(X, Y);
  }
  return 0;
}

/// The compare of a FusedFCmpBr superinstruction — exactly the fused
/// FCmp opcode's (NaN makes every ordered predicate false and NE true,
/// like the C operators the unfused handlers use).
inline int64_t fusedCmpEval(FusedCmp Pred, double X, double Y) {
  switch (Pred) {
  case FusedCmp::EQ:
    return X == Y;
  case FusedCmp::NE:
    return X != Y;
  case FusedCmp::LT:
    return X < Y;
  case FusedCmp::LE:
    return X <= Y;
  case FusedCmp::GT:
    return X > Y;
  case FusedCmp::GE:
    return X >= Y;
  }
  return 0;
}

/// The interpreter's saturating double->int64 conversion, bit-for-bit.
int64_t saturatingFPToSI(double X) {
  if (std::isnan(X))
    return 0;
  constexpr double Lo = -9.223372036854775808e18;
  constexpr double Hi = 9.223372036854775807e18;
  if (X <= Lo)
    return INT64_MIN;
  if (X >= Hi)
    return INT64_MAX;
  return static_cast<int64_t>(X);
}

} // namespace

void Machine::initFrame(const CompiledFunction &F, size_t Base) {
  Reg *R = Stack.data() + Base;
  const uint64_t *CB = F.ConstBits.data();
  for (unsigned K = 0; K < F.NumConsts; ++K)
    R[F.NumArgs + K].U = CB[K];
  for (unsigned K = 0; K < F.NumSlots; ++K)
    R[F.FirstSlotReg + K].U = 0;
}

ExecResult Machine::run(const CompiledFunction &F, const double *Args,
                        size_t NumArgs, ExecContext &Ctx,
                        const ExecOptions &Opts) {
  assert(F.Ok && "running a rejected function");
  assert(NumArgs == F.NumArgs && "argument count mismatch");
  (void)NumArgs;
  RoundingScope Rounding(Opts.Rounding);
  if (Stack.size() < F.NumRegs)
    Stack.resize(std::max<size_t>(F.NumRegs, 256));
  for (unsigned I = 0; I < F.NumArgs; ++I)
    Stack[I].D = Args[I];
  initFrame(F, 0);
  uint64_t Steps = 0;
  return runFrame(F, 0, Ctx, Opts, Steps, 0);
}

ExecResult Machine::run(const CompiledFunction &F,
                        const std::vector<RTValue> &Args, ExecContext &Ctx,
                        const ExecOptions &Opts) {
  assert(F.Ok && "running a rejected function");
  assert(Args.size() == F.NumArgs && "argument count mismatch");
  RoundingScope Rounding(Opts.Rounding);
  if (Stack.size() < F.NumRegs)
    Stack.resize(std::max<size_t>(F.NumRegs, 256));
  for (unsigned I = 0; I < F.NumArgs; ++I) {
    switch (Args[I].type()) {
    case ir::Type::Double:
      Stack[I].D = Args[I].asDouble();
      break;
    case ir::Type::Int:
      Stack[I].I = Args[I].asInt();
      break;
    case ir::Type::Bool:
      Stack[I].I = Args[I].asBool() ? 1 : 0;
      break;
    case ir::Type::Void:
      assert(false && "void argument");
      Stack[I].U = 0;
      break;
    }
  }
  initFrame(F, 0);
  uint64_t Steps = 0;
  return runFrame(F, 0, Ctx, Opts, Steps, 0);
}

ExecResult Machine::runFrame(const CompiledFunction &F, size_t Base,
                             ExecContext &Ctx, const ExecOptions &Opts,
                             uint64_t &Steps, unsigned Depth) {
  Reg *R = Stack.data() + Base;
  const Inst *const Code = F.Code.data();
  const Inst *IP = Code;

  // Frame-hoisted context state: no hash lookups and no virtual calls on
  // the dispatch path. None of these move during a run.
  ExecObserver *const Obs = Ctx.observer();
  RTValue *const GS = Ctx.globalSlots();
  const uint8_t *const Dis = Ctx.siteDisabledTable().data();
  const int64_t NDis =
      static_cast<int64_t>(Ctx.siteDisabledTable().size());
  const uint64_t MaxSteps = Opts.MaxSteps;

  ExecResult Result;

#ifdef WDM_VM_THREADED
  // One label per Op, in exact enum order.
  static const void *const Lbl[] = {
      &&L_FAdd,   &&L_FSub,   &&L_FMul,   &&L_FDiv,   &&L_FRem,
      &&L_FNeg,   &&L_FAbs,   &&L_Sqrt,   &&L_Sin,    &&L_Cos,
      &&L_Tan,    &&L_Exp,    &&L_Log,    &&L_Pow,    &&L_FMin,
      &&L_FMax,   &&L_Floor,  &&L_FCmpEQ, &&L_FCmpNE, &&L_FCmpLT,
      &&L_FCmpLE, &&L_FCmpGT, &&L_FCmpGE, &&L_ICmpEQ, &&L_ICmpNE,
      &&L_ICmpLT, &&L_ICmpLE, &&L_ICmpGT, &&L_ICmpGE, &&L_IAdd,
      &&L_ISub,   &&L_IMul,   &&L_IAnd,   &&L_IOr,    &&L_IXor,
      &&L_IShl,   &&L_ILShr,  &&L_BAnd,   &&L_BOr,    &&L_BNot,
      &&L_SIToFP, &&L_FPToSI, &&L_HighWord, &&L_UlpDiff, &&L_Select,
      &&L_SlotAddr, &&L_SlotLoad, &&L_SlotStore, &&L_GLoadD,
      &&L_GLoadI, &&L_GStoreD, &&L_GStoreI, &&L_SiteEnabled, &&L_Call,
      &&L_Jmp,    &&L_CondBr, &&L_RetD,   &&L_RetI,   &&L_RetB,
      &&L_RetVoid, &&L_Trap,  &&L_FusedGRmwD, &&L_FusedFCmpBr,
  };
#define VM_CASE(op) L_##op:
#define VM_NEXT()                                                         \
  do {                                                                    \
    ++IP;                                                                 \
    if (++Steps > MaxSteps)                                               \
      goto L_StepLimit;                                                   \
    goto *Lbl[static_cast<uint8_t>(IP->Opc)];                             \
  } while (0)
#define VM_JUMP(pc)                                                       \
  do {                                                                    \
    IP = Code + (pc);                                                     \
    if (++Steps > MaxSteps)                                               \
      goto L_StepLimit;                                                   \
    goto *Lbl[static_cast<uint8_t>(IP->Opc)];                             \
  } while (0)

  if (++Steps > MaxSteps)
    goto L_StepLimit;
  goto *Lbl[static_cast<uint8_t>(IP->Opc)];
#else
#define VM_CASE(op) case Op::op:
#define VM_NEXT()                                                         \
  {                                                                       \
    ++IP;                                                                 \
    break;                                                                \
  }
#define VM_JUMP(pc)                                                       \
  {                                                                       \
    IP = Code + (pc);                                                     \
    break;                                                                \
  }
  for (;;) {
    if (++Steps > MaxSteps)
      goto L_StepLimit;
    switch (IP->Opc) {
#endif

  VM_CASE(FAdd) {
    R[IP->Dest].D = canonicalizeNaN(R[IP->A].D + R[IP->B].D);
    VM_NEXT();
  }
  VM_CASE(FSub) {
    R[IP->Dest].D = canonicalizeNaN(R[IP->A].D - R[IP->B].D);
    VM_NEXT();
  }
  VM_CASE(FMul) {
    R[IP->Dest].D = canonicalizeNaN(R[IP->A].D * R[IP->B].D);
    VM_NEXT();
  }
  VM_CASE(FDiv) {
    R[IP->Dest].D = canonicalizeNaN(R[IP->A].D / R[IP->B].D);
    VM_NEXT();
  }
  VM_CASE(FRem) {
    R[IP->Dest].D = canonicalizeNaN(std::fmod(R[IP->A].D, R[IP->B].D));
    VM_NEXT();
  }
  VM_CASE(FNeg) {
    R[IP->Dest].D = canonicalizeNaN(-R[IP->A].D);
    VM_NEXT();
  }
  VM_CASE(FAbs) {
    R[IP->Dest].D = canonicalizeNaN(std::fabs(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(Sqrt) {
    R[IP->Dest].D = canonicalizeNaN(std::sqrt(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(Sin) {
    R[IP->Dest].D = canonicalizeNaN(std::sin(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(Cos) {
    R[IP->Dest].D = canonicalizeNaN(std::cos(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(Tan) {
    R[IP->Dest].D = canonicalizeNaN(std::tan(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(Exp) {
    R[IP->Dest].D = canonicalizeNaN(std::exp(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(Log) {
    R[IP->Dest].D = canonicalizeNaN(std::log(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(Pow) {
    R[IP->Dest].D = canonicalizeNaN(std::pow(R[IP->A].D, R[IP->B].D));
    VM_NEXT();
  }
  VM_CASE(FMin) {
    R[IP->Dest].D = canonicalizeNaN(std::fmin(R[IP->A].D, R[IP->B].D));
    VM_NEXT();
  }
  VM_CASE(FMax) {
    R[IP->Dest].D = canonicalizeNaN(std::fmax(R[IP->A].D, R[IP->B].D));
    VM_NEXT();
  }
  VM_CASE(Floor) {
    R[IP->Dest].D = canonicalizeNaN(std::floor(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(FCmpEQ) {
    R[IP->Dest].I = R[IP->A].D == R[IP->B].D;
    VM_NEXT();
  }
  VM_CASE(FCmpNE) {
    R[IP->Dest].I = R[IP->A].D != R[IP->B].D;
    VM_NEXT();
  }
  VM_CASE(FCmpLT) {
    R[IP->Dest].I = R[IP->A].D < R[IP->B].D;
    VM_NEXT();
  }
  VM_CASE(FCmpLE) {
    R[IP->Dest].I = R[IP->A].D <= R[IP->B].D;
    VM_NEXT();
  }
  VM_CASE(FCmpGT) {
    R[IP->Dest].I = R[IP->A].D > R[IP->B].D;
    VM_NEXT();
  }
  VM_CASE(FCmpGE) {
    R[IP->Dest].I = R[IP->A].D >= R[IP->B].D;
    VM_NEXT();
  }
  VM_CASE(ICmpEQ) {
    R[IP->Dest].I = R[IP->A].I == R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(ICmpNE) {
    R[IP->Dest].I = R[IP->A].I != R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(ICmpLT) {
    R[IP->Dest].I = R[IP->A].I < R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(ICmpLE) {
    R[IP->Dest].I = R[IP->A].I <= R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(ICmpGT) {
    R[IP->Dest].I = R[IP->A].I > R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(ICmpGE) {
    R[IP->Dest].I = R[IP->A].I >= R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(IAdd) {
    R[IP->Dest].I = static_cast<int64_t>(R[IP->A].U + R[IP->B].U);
    VM_NEXT();
  }
  VM_CASE(ISub) {
    R[IP->Dest].I = static_cast<int64_t>(R[IP->A].U - R[IP->B].U);
    VM_NEXT();
  }
  VM_CASE(IMul) {
    R[IP->Dest].I = static_cast<int64_t>(R[IP->A].U * R[IP->B].U);
    VM_NEXT();
  }
  VM_CASE(IAnd) {
    R[IP->Dest].I = R[IP->A].I & R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(IOr) {
    R[IP->Dest].I = R[IP->A].I | R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(IXor) {
    R[IP->Dest].I = R[IP->A].I ^ R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(IShl) {
    R[IP->Dest].I =
        static_cast<int64_t>(R[IP->A].U << (R[IP->B].U & 63));
    VM_NEXT();
  }
  VM_CASE(ILShr) {
    R[IP->Dest].I =
        static_cast<int64_t>(R[IP->A].U >> (R[IP->B].U & 63));
    VM_NEXT();
  }
  VM_CASE(BAnd) {
    R[IP->Dest].I = R[IP->A].I & R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(BOr) {
    R[IP->Dest].I = R[IP->A].I | R[IP->B].I;
    VM_NEXT();
  }
  VM_CASE(BNot) {
    R[IP->Dest].I = R[IP->A].I ^ 1;
    VM_NEXT();
  }
  VM_CASE(SIToFP) {
    R[IP->Dest].D = static_cast<double>(R[IP->A].I);
    VM_NEXT();
  }
  VM_CASE(FPToSI) {
    R[IP->Dest].I = saturatingFPToSI(R[IP->A].D);
    VM_NEXT();
  }
  VM_CASE(HighWord) {
    R[IP->Dest].I = static_cast<int64_t>(highWord(R[IP->A].D));
    VM_NEXT();
  }
  VM_CASE(UlpDiff) {
    R[IP->Dest].D = ulpDistanceAsDouble(R[IP->A].D, R[IP->B].D);
    VM_NEXT();
  }
  VM_CASE(Select) {
    R[IP->Dest].U = R[IP->A].I ? R[IP->B].U : R[IP->C].U;
    VM_NEXT();
  }
  VM_CASE(SlotAddr) {
    R[IP->Dest].I = IP->Imm;
    VM_NEXT();
  }
  VM_CASE(SlotLoad) {
    R[IP->Dest].U = R[IP->Imm2].U;
    VM_NEXT();
  }
  VM_CASE(SlotStore) {
    R[IP->Imm2].U = R[IP->A].U;
    VM_NEXT();
  }
  VM_CASE(GLoadD) {
    R[IP->Dest].D = GS[IP->Imm].asDouble();
    VM_NEXT();
  }
  VM_CASE(GLoadI) {
    R[IP->Dest].I = GS[IP->Imm].asInt();
    VM_NEXT();
  }
  VM_CASE(GStoreD) {
    GS[IP->Imm] = RTValue::ofDouble(R[IP->A].D);
    VM_NEXT();
  }
  VM_CASE(GStoreI) {
    GS[IP->Imm] = RTValue::ofInt(R[IP->A].I);
    VM_NEXT();
  }
  VM_CASE(SiteEnabled) {
    const int64_t Id = IP->Imm;
    R[IP->Dest].I = (Id < 0 || Id >= NDis) ? 1 : (Dis[Id] ? 0 : 1);
    VM_NEXT();
  }
  VM_CASE(Call) {
    const CompiledFunction &Callee = CM.Functions[IP->Imm2];
    if (Depth + 1 >= Opts.MaxCallDepth) {
      Result.Kind = ExecResult::Outcome::StepLimitExceeded;
      Result.Steps = Steps;
      return Result;
    }
    const size_t CalleeBase = Base + F.NumRegs;
    if (Stack.size() < CalleeBase + Callee.NumRegs) {
      Stack.resize(
          std::max<size_t>(CalleeBase + Callee.NumRegs, Stack.size() * 2));
      R = Stack.data() + Base;
    }
    const uint16_t *ArgRegs = F.CallArgPool.data() + IP->Imm;
    for (unsigned K = 0; K < Callee.NumArgs; ++K)
      Stack[CalleeBase + K].U = R[ArgRegs[K]].U;
    initFrame(Callee, CalleeBase);
    ExecResult Sub =
        runFrame(Callee, CalleeBase, Ctx, Opts, Steps, Depth + 1);
    R = Stack.data() + Base; // The callee may have grown the stack.
    if (!Sub.ok()) {
      Sub.Steps = Steps;
      return Sub;
    }
    switch (Callee.RetType) {
    case ir::Type::Double:
      R[IP->Dest].D = Sub.ReturnValue.asDouble();
      break;
    case ir::Type::Int:
      R[IP->Dest].I = Sub.ReturnValue.asInt();
      break;
    case ir::Type::Bool:
      R[IP->Dest].I = Sub.ReturnValue.asBool() ? 1 : 0;
      break;
    case ir::Type::Void:
      break;
    }
    VM_NEXT();
  }
  VM_CASE(Jmp) { VM_JUMP(IP->Imm); }
  VM_CASE(CondBr) {
    const bool Taken = R[IP->A].I != 0;
    if (Obs)
      Obs->onBranch(F.Branches[IP->Dest], Taken);
    VM_JUMP(Taken ? IP->Imm : IP->Imm2);
  }
  VM_CASE(RetD) {
    Result.Kind = ExecResult::Outcome::Ok;
    Result.ReturnValue = RTValue::ofDouble(R[IP->A].D);
    Result.Steps = Steps;
    return Result;
  }
  VM_CASE(RetI) {
    Result.Kind = ExecResult::Outcome::Ok;
    Result.ReturnValue = RTValue::ofInt(R[IP->A].I);
    Result.Steps = Steps;
    return Result;
  }
  VM_CASE(RetB) {
    Result.Kind = ExecResult::Outcome::Ok;
    Result.ReturnValue = RTValue::ofBool(R[IP->A].I != 0);
    Result.Steps = Steps;
    return Result;
  }
  VM_CASE(RetVoid) {
    Result.Kind = ExecResult::Outcome::Ok;
    Result.Steps = Steps;
    return Result;
  }
  VM_CASE(Trap) {
    Result.Kind = ExecResult::Outcome::Trapped;
    Result.TrapId = IP->Imm;
    Result.TrapMessage = F.TrapMessages[IP->Imm2];
    Result.Steps = Steps;
    return Result;
  }
  VM_CASE(FusedGRmwD) {
    // The dispatch step covered the fused loadg; the fop and the storeg
    // cost one step each, with the limit checked at every virtual
    // instruction boundary — bit-for-bit the unfused accounting. The
    // global is only written once all three steps fit (an unfused run
    // crossing the limit mid-triple never reached its storeg either).
    if (Steps + 2 > MaxSteps) {
      Steps = (Steps + 1 > MaxSteps) ? Steps + 1 : Steps + 2;
      goto L_StepLimit;
    }
    Steps += 2;
    const double T = GS[IP->Imm].asDouble();
    R[IP->Dest].D = T; // the loadg result may have later uses
    const double V = canonicalizeNaN(fusedEval(
        static_cast<FusedFOp>(IP->Imm2), R[IP->A].D, R[IP->B].D));
    R[IP->C].D = V;
    GS[IP->Imm] = RTValue::ofDouble(V);
    IP += 2; // skip the fused-away fop and storeg
    VM_NEXT();
  }
  VM_CASE(FusedFCmpBr) {
    // The dispatch step covered the compare; the condbr costs one more,
    // checked at its virtual boundary before the observer fires (an
    // unfused run crossing the limit there never reached the condbr
    // either — but had already written the compare result).
    const int64_t T = fusedCmpEval(static_cast<FusedCmp>(IP->Imm2),
                                   R[IP->A].D, R[IP->B].D);
    R[IP->Dest].I = T; // the compare result may have later uses
    if (++Steps > MaxSteps)
      goto L_StepLimit;
    const Inst &Br = IP[1]; // the fused-away condbr carries the targets
    const bool Taken = T != 0;
    if (Obs)
      Obs->onBranch(F.Branches[Br.Dest], Taken);
    VM_JUMP(Taken ? Br.Imm : Br.Imm2);
  }

#ifndef WDM_VM_THREADED
    }
  }
#endif

L_StepLimit:
  Result.Kind = ExecResult::Outcome::StepLimitExceeded;
  Result.Steps = Steps;
  return Result;

#undef VM_CASE
#undef VM_NEXT
#undef VM_JUMP
}

//===----------------------------------------------------------------------===//
// Batched (lockstep) execution
//===----------------------------------------------------------------------===//

void Machine::runBatch(const CompiledFunction &F, const double *Xs,
                       size_t K, unsigned WatchSlot, double WatchInit,
                       ExecContext &Ctx, const ExecOptions &Opts,
                       LaneOutcome *Out) {
  assert(F.Ok && "batch-running a rejected function");
  assert(!Ctx.observer() &&
         "batched runs are observer-free; observed callers run scalar");
  if (K == 0)
    return;
  // One rounding-mode switch for the whole block — the per-evaluation
  // fesetround pair is part of what batching amortizes away.
  RoundingScope Rounding(Opts.Rounding);

  // Per-lane global columns, seeded from the context's reset state. The
  // declared type of each slot is fixed (the lowering specializes
  // GLoadD/GLoadI by it), so the columns hold raw 64-bit payloads.
  Ctx.resetGlobals();
  RTValue *const GS = Ctx.globalSlots();
  const size_t NG = Ctx.module().numGlobals();
  assert(WatchSlot < NG && "watched slot outside the module's globals");
  BGlobType.resize(NG);
  BGlob.resize(NG * K);
  for (size_t G = 0; G < NG; ++G) {
    BGlobType[G] = GS[G].type();
    Reg R0;
    R0.U = 0;
    switch (GS[G].type()) {
    case ir::Type::Double:
      R0.D = GS[G].asDouble();
      break;
    case ir::Type::Int:
      R0.I = GS[G].asInt();
      break;
    case ir::Type::Bool:
      R0.I = GS[G].asBool() ? 1 : 0;
      break;
    case ir::Type::Void:
      break;
    }
    for (size_t L = 0; L < K; ++L)
      BGlob[G * K + L] = R0;
  }
  for (size_t L = 0; L < K; ++L)
    BGlob[static_cast<size_t>(WatchSlot) * K + L].D = WatchInit;

  // The struct-of-arrays frame: [args][consts][results][slots] columns,
  // K lanes wide. Zero-fill covers the alloca slot registers.
  Reg Zero;
  Zero.U = 0;
  BStack.assign(static_cast<size_t>(F.NumRegs) * K, Zero);
  for (unsigned A = 0; A < F.NumArgs; ++A)
    for (size_t L = 0; L < K; ++L)
      BStack[static_cast<size_t>(A) * K + L].D = Xs[L * F.NumArgs + A];
  for (unsigned C = 0; C < F.NumConsts; ++C) {
    Reg V;
    V.U = F.ConstBits[C];
    for (size_t L = 0; L < K; ++L)
      BStack[static_cast<size_t>(F.NumArgs + C) * K + L] = V;
  }

  BSteps.assign(K, 0);
  BLanes.resize(K);
  for (size_t L = 0; L < K; ++L)
    BLanes[L] = static_cast<uint32_t>(L);
  BScratch.resize(K);

  const uint64_t MaxSteps = Opts.MaxSteps;
  const uint8_t *const Dis = Ctx.siteDisabledTable().data();
  const int64_t NDis =
      static_cast<int64_t>(Ctx.siteDisabledTable().size());
  const Inst *const Code = F.Code.data();
  Reg *const BS = BStack.data();

  auto Retire = [&](size_t L, ExecResult::Outcome Kind, double W) {
    Out[L].Kind = Kind;
    Out[L].Steps = BSteps[L];
    Out[L].Watched = W;
  };

  // Typed sync of one lane's global column into / out of the context —
  // the bridge to the scalar paths (per-lane calls, divergence finish).
  auto PushGlobals = [&](size_t L) {
    for (size_t G = 0; G < NG; ++G) {
      const Reg V = BGlob[G * K + L];
      switch (BGlobType[G]) {
      case ir::Type::Double:
        GS[G] = RTValue::ofDouble(V.D);
        break;
      case ir::Type::Int:
        GS[G] = RTValue::ofInt(V.I);
        break;
      case ir::Type::Bool:
        GS[G] = RTValue::ofBool(V.I != 0);
        break;
      case ir::Type::Void:
        break;
      }
    }
  };
  auto PullGlobals = [&](size_t L) {
    for (size_t G = 0; G < NG; ++G) {
      Reg &V = BGlob[G * K + L];
      switch (BGlobType[G]) {
      case ir::Type::Double:
        V.D = GS[G].asDouble();
        break;
      case ir::Type::Int:
        V.I = GS[G].asInt();
        break;
      case ir::Type::Bool:
        V.I = GS[G].asBool() ? 1 : 0;
        break;
      case ir::Type::Void:
        break;
      }
    }
  };

// Per-lane register / global column accessors. FOR_GROUP iterates the
// current group's contiguous span [B, E) of BLanes; LANE is the lane id
// at the loop position.
#define FOR_GROUP for (uint32_t J = B; J < E; ++J)
#define LANE (BLanes[J])
#define BREG(Idx) BS[static_cast<size_t>(Idx) * K + LANE]
#define BGLOB(Slot) BGlob[static_cast<size_t>(Slot) * K + LANE]

  // Group scheduler: each group is a span of BLanes sharing one pc.
  // Divergent branches split the span in place (taken lanes first) and
  // queue the not-taken half; queued groups are disjoint spans, so the
  // stack never exceeds K-1 entries and nothing is copied but lane ids.
  struct Seg {
    size_t Pc;
    uint32_t Begin, End;
  };
  std::vector<Seg> Work;

  size_t Pc = 0;
  uint32_t B = 0, E = static_cast<uint32_t>(K);
  for (;;) {
    while (B < E) {
    const Inst &I = Code[Pc];

    // One step per lane per executed instruction, checked before
    // execution — the scalar accounting, lanewise. Lanes that hit the
    // limit retire and the span compacts around them.
    {
      uint32_t W = B;
      FOR_GROUP {
        const uint32_t L = LANE;
        if (++BSteps[L] > MaxSteps)
          Retire(L, ExecResult::Outcome::StepLimitExceeded, 0);
        else
          BLanes[W++] = L;
      }
      E = W;
      if (B == E)
        break;
    }

    switch (I.Opc) {
    case Op::FAdd:
      FOR_GROUP BREG(I.Dest).D =
          canonicalizeNaN(BREG(I.A).D + BREG(I.B).D);
      ++Pc;
      break;
    case Op::FSub:
      FOR_GROUP BREG(I.Dest).D =
          canonicalizeNaN(BREG(I.A).D - BREG(I.B).D);
      ++Pc;
      break;
    case Op::FMul:
      FOR_GROUP BREG(I.Dest).D =
          canonicalizeNaN(BREG(I.A).D * BREG(I.B).D);
      ++Pc;
      break;
    case Op::FDiv:
      FOR_GROUP BREG(I.Dest).D =
          canonicalizeNaN(BREG(I.A).D / BREG(I.B).D);
      ++Pc;
      break;
    case Op::FRem:
      FOR_GROUP BREG(I.Dest).D =
          canonicalizeNaN(std::fmod(BREG(I.A).D, BREG(I.B).D));
      ++Pc;
      break;
    case Op::FNeg:
      FOR_GROUP BREG(I.Dest).D = canonicalizeNaN(-BREG(I.A).D);
      ++Pc;
      break;
    case Op::FAbs:
      FOR_GROUP BREG(I.Dest).D = canonicalizeNaN(std::fabs(BREG(I.A).D));
      ++Pc;
      break;
    case Op::Sqrt:
      FOR_GROUP BREG(I.Dest).D = canonicalizeNaN(std::sqrt(BREG(I.A).D));
      ++Pc;
      break;
    case Op::Sin:
      FOR_GROUP BREG(I.Dest).D = canonicalizeNaN(std::sin(BREG(I.A).D));
      ++Pc;
      break;
    case Op::Cos:
      FOR_GROUP BREG(I.Dest).D = canonicalizeNaN(std::cos(BREG(I.A).D));
      ++Pc;
      break;
    case Op::Tan:
      FOR_GROUP BREG(I.Dest).D = canonicalizeNaN(std::tan(BREG(I.A).D));
      ++Pc;
      break;
    case Op::Exp:
      FOR_GROUP BREG(I.Dest).D = canonicalizeNaN(std::exp(BREG(I.A).D));
      ++Pc;
      break;
    case Op::Log:
      FOR_GROUP BREG(I.Dest).D = canonicalizeNaN(std::log(BREG(I.A).D));
      ++Pc;
      break;
    case Op::Pow:
      FOR_GROUP BREG(I.Dest).D =
          canonicalizeNaN(std::pow(BREG(I.A).D, BREG(I.B).D));
      ++Pc;
      break;
    case Op::FMin:
      FOR_GROUP BREG(I.Dest).D =
          canonicalizeNaN(std::fmin(BREG(I.A).D, BREG(I.B).D));
      ++Pc;
      break;
    case Op::FMax:
      FOR_GROUP BREG(I.Dest).D =
          canonicalizeNaN(std::fmax(BREG(I.A).D, BREG(I.B).D));
      ++Pc;
      break;
    case Op::Floor:
      FOR_GROUP BREG(I.Dest).D = canonicalizeNaN(std::floor(BREG(I.A).D));
      ++Pc;
      break;
    case Op::FCmpEQ:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).D == BREG(I.B).D;
      ++Pc;
      break;
    case Op::FCmpNE:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).D != BREG(I.B).D;
      ++Pc;
      break;
    case Op::FCmpLT:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).D < BREG(I.B).D;
      ++Pc;
      break;
    case Op::FCmpLE:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).D <= BREG(I.B).D;
      ++Pc;
      break;
    case Op::FCmpGT:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).D > BREG(I.B).D;
      ++Pc;
      break;
    case Op::FCmpGE:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).D >= BREG(I.B).D;
      ++Pc;
      break;
    case Op::ICmpEQ:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).I == BREG(I.B).I;
      ++Pc;
      break;
    case Op::ICmpNE:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).I != BREG(I.B).I;
      ++Pc;
      break;
    case Op::ICmpLT:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).I < BREG(I.B).I;
      ++Pc;
      break;
    case Op::ICmpLE:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).I <= BREG(I.B).I;
      ++Pc;
      break;
    case Op::ICmpGT:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).I > BREG(I.B).I;
      ++Pc;
      break;
    case Op::ICmpGE:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).I >= BREG(I.B).I;
      ++Pc;
      break;
    case Op::IAdd:
      FOR_GROUP BREG(I.Dest).I =
          static_cast<int64_t>(BREG(I.A).U + BREG(I.B).U);
      ++Pc;
      break;
    case Op::ISub:
      FOR_GROUP BREG(I.Dest).I =
          static_cast<int64_t>(BREG(I.A).U - BREG(I.B).U);
      ++Pc;
      break;
    case Op::IMul:
      FOR_GROUP BREG(I.Dest).I =
          static_cast<int64_t>(BREG(I.A).U * BREG(I.B).U);
      ++Pc;
      break;
    case Op::IAnd:
    case Op::BAnd:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).I & BREG(I.B).I;
      ++Pc;
      break;
    case Op::IOr:
    case Op::BOr:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).I | BREG(I.B).I;
      ++Pc;
      break;
    case Op::IXor:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).I ^ BREG(I.B).I;
      ++Pc;
      break;
    case Op::IShl:
      FOR_GROUP BREG(I.Dest).I =
          static_cast<int64_t>(BREG(I.A).U << (BREG(I.B).U & 63));
      ++Pc;
      break;
    case Op::ILShr:
      FOR_GROUP BREG(I.Dest).I =
          static_cast<int64_t>(BREG(I.A).U >> (BREG(I.B).U & 63));
      ++Pc;
      break;
    case Op::BNot:
      FOR_GROUP BREG(I.Dest).I = BREG(I.A).I ^ 1;
      ++Pc;
      break;
    case Op::SIToFP:
      FOR_GROUP BREG(I.Dest).D = static_cast<double>(BREG(I.A).I);
      ++Pc;
      break;
    case Op::FPToSI:
      FOR_GROUP BREG(I.Dest).I = saturatingFPToSI(BREG(I.A).D);
      ++Pc;
      break;
    case Op::HighWord:
      FOR_GROUP BREG(I.Dest).I =
          static_cast<int64_t>(highWord(BREG(I.A).D));
      ++Pc;
      break;
    case Op::UlpDiff:
      FOR_GROUP BREG(I.Dest).D =
          ulpDistanceAsDouble(BREG(I.A).D, BREG(I.B).D);
      ++Pc;
      break;
    case Op::Select:
      FOR_GROUP BREG(I.Dest).U =
          BREG(I.A).I ? BREG(I.B).U : BREG(I.C).U;
      ++Pc;
      break;
    case Op::SlotAddr:
      FOR_GROUP BREG(I.Dest).I = I.Imm;
      ++Pc;
      break;
    case Op::SlotLoad:
      FOR_GROUP BREG(I.Dest).U = BREG(I.Imm2).U;
      ++Pc;
      break;
    case Op::SlotStore:
      FOR_GROUP BREG(I.Imm2).U = BREG(I.A).U;
      ++Pc;
      break;
    case Op::GLoadD:
      FOR_GROUP BREG(I.Dest).D = BGLOB(I.Imm).D;
      ++Pc;
      break;
    case Op::GLoadI:
      FOR_GROUP BREG(I.Dest).I = BGLOB(I.Imm).I;
      ++Pc;
      break;
    case Op::GStoreD:
      FOR_GROUP BGLOB(I.Imm).D = BREG(I.A).D;
      ++Pc;
      break;
    case Op::GStoreI:
      FOR_GROUP BGLOB(I.Imm).I = BREG(I.A).I;
      ++Pc;
      break;
    case Op::SiteEnabled: {
      const int64_t Id = I.Imm;
      const int64_t En = (Id < 0 || Id >= NDis) ? 1 : (Dis[Id] ? 0 : 1);
      FOR_GROUP BREG(I.Dest).I = En;
      ++Pc;
      break;
    }
    case Op::FusedGRmwD: {
      uint32_t W = B;
      FOR_GROUP {
        const uint32_t L = LANE;
        if (BSteps[L] + 2 > MaxSteps) {
          BSteps[L] += (BSteps[L] + 1 > MaxSteps) ? 1 : 2;
          Retire(L, ExecResult::Outcome::StepLimitExceeded, 0);
          continue;
        }
        BSteps[L] += 2;
        Reg &GW = BGLOB(I.Imm);
        BREG(I.Dest).D = GW.D;
        const double V = canonicalizeNaN(fusedEval(
            static_cast<FusedFOp>(I.Imm2), BREG(I.A).D, BREG(I.B).D));
        BREG(I.C).D = V;
        GW.D = V;
        BLanes[W++] = L;
      }
      E = W;
      Pc += 3;
      break;
    }
    case Op::FusedFCmpBr: {
      // The generic lane-step charge above covered the compare; the
      // condbr costs one more per lane, checked at its own virtual
      // boundary (over-limit lanes retire with the compare result
      // already written, exactly like an unfused run).
      FOR_GROUP BREG(I.Dest).I = fusedCmpEval(
          static_cast<FusedCmp>(I.Imm2), BREG(I.A).D, BREG(I.B).D);
      {
        uint32_t W = B;
        FOR_GROUP {
          const uint32_t L = LANE;
          if (++BSteps[L] > MaxSteps)
            Retire(L, ExecResult::Outcome::StepLimitExceeded, 0);
          else
            BLanes[W++] = L;
        }
        E = W;
        if (B == E)
          break;
      }
      // Then the CondBr partition, reading the just-written compare
      // result; the fused-away condbr at pc+1 carries the targets.
      const Inst &Br = Code[Pc + 1];
      uint32_t W = B, NumNot = 0;
      FOR_GROUP {
        const uint32_t L = LANE;
        if (BS[static_cast<size_t>(I.Dest) * K + L].I != 0)
          BLanes[W++] = L;
        else
          BScratch[NumNot++] = L;
      }
      const uint32_t NumTaken = W - B;
      for (uint32_t N = 0; N < NumNot; ++N)
        BLanes[W++] = BScratch[N];
      if (NumNot == 0) {
        Pc = static_cast<size_t>(Br.Imm);
        break;
      }
      if (NumTaken == 0) {
        Pc = static_cast<size_t>(Br.Imm2);
        break;
      }
      Work.push_back({static_cast<size_t>(Br.Imm2), B + NumTaken, E});
      E = B + NumTaken;
      Pc = static_cast<size_t>(Br.Imm);
      break;
    }
    case Op::Call: {
      // Calls leave lockstep lane by lane: each lane of the group runs
      // the callee on the scalar stack against its own global column.
      const CompiledFunction &Callee = CM.Functions[I.Imm2];
      const uint16_t *ArgRegs = F.CallArgPool.data() + I.Imm;
      uint32_t W = B;
      FOR_GROUP {
        const uint32_t L = LANE;
        if (1 >= Opts.MaxCallDepth) {
          Retire(L, ExecResult::Outcome::StepLimitExceeded, 0);
          continue;
        }
        PushGlobals(L);
        if (Stack.size() < Callee.NumRegs)
          Stack.resize(std::max<size_t>(Callee.NumRegs, 256));
        for (unsigned A = 0; A < Callee.NumArgs; ++A)
          Stack[A].U = BREG(ArgRegs[A]).U;
        initFrame(Callee, 0);
        ExecResult Sub = runFrame(Callee, 0, Ctx, Opts, BSteps[L], 1);
        PullGlobals(L); // the callee may have stored globals
        if (!Sub.ok()) {
          Retire(L, Sub.Kind,
                 Sub.Kind == ExecResult::Outcome::Trapped
                     ? BGLOB(WatchSlot).D
                     : 0);
          continue;
        }
        switch (Callee.RetType) {
        case ir::Type::Double:
          BREG(I.Dest).D = Sub.ReturnValue.asDouble();
          break;
        case ir::Type::Int:
          BREG(I.Dest).I = Sub.ReturnValue.asInt();
          break;
        case ir::Type::Bool:
          BREG(I.Dest).I = Sub.ReturnValue.asBool() ? 1 : 0;
          break;
        case ir::Type::Void:
          break;
        }
        BLanes[W++] = L;
      }
      E = W;
      ++Pc;
      break;
    }
    case Op::Jmp:
      Pc = static_cast<size_t>(I.Imm);
      break;
    case Op::CondBr: {
      // Stable in-place partition: taken lanes keep the front of the
      // span, not-taken lanes stage through the scratch buffer.
      uint32_t W = B, NumNot = 0;
      FOR_GROUP {
        const uint32_t L = LANE;
        if (BS[static_cast<size_t>(I.A) * K + L].I != 0)
          BLanes[W++] = L;
        else
          BScratch[NumNot++] = L;
      }
      const uint32_t NumTaken = W - B;
      for (uint32_t N = 0; N < NumNot; ++N)
        BLanes[W++] = BScratch[N];
      if (NumNot == 0) {
        Pc = static_cast<size_t>(I.Imm);
        break;
      }
      if (NumTaken == 0) {
        Pc = static_cast<size_t>(I.Imm2);
        break;
      }
      // Divergence: the not-taken half resumes in lockstep later.
      Work.push_back(
          {static_cast<size_t>(I.Imm2), B + NumTaken, E});
      E = B + NumTaken;
      Pc = static_cast<size_t>(I.Imm);
      break;
    }
    case Op::RetD:
    case Op::RetI:
    case Op::RetB:
    case Op::RetVoid:
      FOR_GROUP Retire(LANE, ExecResult::Outcome::Ok, BGLOB(WatchSlot).D);
      E = B; // the whole group is done
      break;
    case Op::Trap:
      // Traps leave w meaningful — same policy as the scalar driver.
      FOR_GROUP Retire(LANE, ExecResult::Outcome::Trapped,
                       BGLOB(WatchSlot).D);
      E = B;
      break;
    }
    }

    if (Work.empty())
      break;
    const Seg S = Work.back();
    Work.pop_back();
    Pc = S.Pc;
    B = S.Begin;
    E = S.End;
  }

#undef BREG
#undef BGLOB
#undef LANE
#undef FOR_GROUP
}
