//===--- Machine.h - Threaded-code VM for the compiled tier ----*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution engine of the compiled tier: runs Bytecode.h programs
/// with computed-goto threaded dispatch (a portable switch fallback is
/// kept for non-GNU compilers) over untyped 64-bit registers. Semantics
/// are bit-for-bit the interpreter's — genuine IEEE-754 binary64 machine
/// arithmetic, the same fesetround rounding-mode switching (this TU is
/// compiled with -frounding-math), the same step-budget and call-depth
/// accounting (one step per executed instruction, checked before
/// execution), and the same ExecContext global/site state.
///
/// Differences from exec::Engine, by design:
///  - no per-instruction virtual calls or hash lookups — operands were
///    pre-resolved by the lowering;
///  - ExecObserver::onBranch is delivered (one predictable null check per
///    conditional branch), but onInstruction is NOT: the VM is the
///    no-observer fast tier, and every instruction-observing caller
///    (probe replay, root-cause forensics) runs on the interpreter.
///
/// A Machine owns a reusable frame stack and is therefore stateful but
/// cheap; SearchEngine workers each mint their own (one Machine per
/// minted vm::VMWeakDistance).
///
//===----------------------------------------------------------------------===//

#ifndef WDM_VM_MACHINE_H
#define WDM_VM_MACHINE_H

#include "exec/ExecContext.h"
#include "exec/Interpreter.h"
#include "vm/Bytecode.h"

#include <vector>

namespace wdm::vm {

/// One lane's outcome of a batched run (Machine::runBatch): the result
/// kind, the lane's exact step count (bit-for-bit the scalar run's), and
/// the value of the watched global slot at lane end (meaningful for Ok
/// and Trapped lanes — the weak-distance policy; unspecified on step
/// limit, where the caller substitutes +inf anyway).
struct LaneOutcome {
  exec::ExecResult::Outcome Kind = exec::ExecResult::Outcome::Ok;
  uint64_t Steps = 0;
  double Watched = 0;
};

class Machine {
public:
  /// \p CM must outlive the machine (the factory owns it).
  explicit Machine(const CompiledModule &CM) : CM(CM) {}

  const CompiledModule &compiled() const { return CM; }

  /// Runs \p F (which must be Ok) on \p Args within \p Ctx. Mirrors
  /// exec::Engine::run, including the returned ExecResult's Steps.
  exec::ExecResult run(const CompiledFunction &F,
                       const std::vector<exec::RTValue> &Args,
                       exec::ExecContext &Ctx,
                       const exec::ExecOptions &Opts = {});

  /// All-double fast path: the weak-distance evaluation signature.
  exec::ExecResult run(const CompiledFunction &F, const double *Args,
                       size_t NumArgs, exec::ExecContext &Ctx,
                       const exec::ExecOptions &Opts = {});

  /// Batched weak-distance driver: executes \p F once per lane over the
  /// K packed input rows (row-major K x NumArgs doubles), each lane
  /// observationally identical to
  ///   Ctx.resetGlobals();
  ///   Ctx.globalSlots()[WatchSlot] = WatchInit;
  ///   run(F, row l);
  ///   Out[l].Watched = globalSlots()[WatchSlot];
  /// but executed in lockstep: one struct-of-arrays frame holds all K
  /// lanes (per-lane register and global columns), and each straight-line
  /// opcode dispatches once and iterates the lanes of the current group.
  /// Lanes fall out of lockstep only where they must — a step-limited
  /// lane retires in place, a call runs per lane on the scalar stack,
  /// and a *divergent* conditional branch splits the group in two: the
  /// taken lanes continue in lockstep immediately, the others are queued
  /// and resume in lockstep from their own target (degrading, in the
  /// worst case, to per-lane stepping through the same engine). Requires
  /// Ctx.observer() == null (callers fall back to scalar evaluation for
  /// observed runs — batch lane interleaving would reorder observer
  /// events); leaves Ctx's global values unspecified (some lane's end
  /// state).
  void runBatch(const CompiledFunction &F, const double *Xs, size_t K,
                unsigned WatchSlot, double WatchInit,
                exec::ExecContext &Ctx, const exec::ExecOptions &Opts,
                LaneOutcome *Out);

private:
  /// One untyped 64-bit frame register.
  union Reg {
    double D;
    int64_t I;
    uint64_t U;
  };

  exec::ExecResult runFrame(const CompiledFunction &F, size_t Base,
                            exec::ExecContext &Ctx,
                            const exec::ExecOptions &Opts, uint64_t &Steps,
                            unsigned Depth);

  /// Loads constants and zeroes slot registers of a freshly carved frame.
  void initFrame(const CompiledFunction &F, size_t Base);

  const CompiledModule &CM;
  std::vector<Reg> Stack;

  // Batch-mode state, member-owned so repeated runBatch calls reuse the
  // allocations. BStack/BGlob are column-major over lanes:
  // BStack[reg * K + lane], BGlob[slot * K + lane]. BLanes holds the
  // lane ids of every in-flight group as disjoint contiguous spans
  // (groups split in place at divergent branches, via BScratch).
  std::vector<Reg> BStack;
  std::vector<Reg> BGlob;
  std::vector<ir::Type> BGlobType;
  std::vector<uint64_t> BSteps;
  std::vector<uint32_t> BLanes;
  std::vector<uint32_t> BScratch;
};

} // namespace wdm::vm

#endif // WDM_VM_MACHINE_H
