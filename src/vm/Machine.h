//===--- Machine.h - Threaded-code VM for the compiled tier ----*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution engine of the compiled tier: runs Bytecode.h programs
/// with computed-goto threaded dispatch (a portable switch fallback is
/// kept for non-GNU compilers) over untyped 64-bit registers. Semantics
/// are bit-for-bit the interpreter's — genuine IEEE-754 binary64 machine
/// arithmetic, the same fesetround rounding-mode switching (this TU is
/// compiled with -frounding-math), the same step-budget and call-depth
/// accounting (one step per executed instruction, checked before
/// execution), and the same ExecContext global/site state.
///
/// Differences from exec::Engine, by design:
///  - no per-instruction virtual calls or hash lookups — operands were
///    pre-resolved by the lowering;
///  - ExecObserver::onBranch is delivered (one predictable null check per
///    conditional branch), but onInstruction is NOT: the VM is the
///    no-observer fast tier, and every instruction-observing caller
///    (probe replay, root-cause forensics) runs on the interpreter.
///
/// A Machine owns a reusable frame stack and is therefore stateful but
/// cheap; SearchEngine workers each mint their own (one Machine per
/// minted vm::VMWeakDistance).
///
//===----------------------------------------------------------------------===//

#ifndef WDM_VM_MACHINE_H
#define WDM_VM_MACHINE_H

#include "exec/ExecContext.h"
#include "exec/Interpreter.h"
#include "vm/Bytecode.h"

#include <vector>

namespace wdm::vm {

class Machine {
public:
  /// \p CM must outlive the machine (the factory owns it).
  explicit Machine(const CompiledModule &CM) : CM(CM) {}

  const CompiledModule &compiled() const { return CM; }

  /// Runs \p F (which must be Ok) on \p Args within \p Ctx. Mirrors
  /// exec::Engine::run, including the returned ExecResult's Steps.
  exec::ExecResult run(const CompiledFunction &F,
                       const std::vector<exec::RTValue> &Args,
                       exec::ExecContext &Ctx,
                       const exec::ExecOptions &Opts = {});

  /// All-double fast path: the weak-distance evaluation signature.
  exec::ExecResult run(const CompiledFunction &F, const double *Args,
                       size_t NumArgs, exec::ExecContext &Ctx,
                       const exec::ExecOptions &Opts = {});

private:
  /// One untyped 64-bit frame register.
  union Reg {
    double D;
    int64_t I;
    uint64_t U;
  };

  exec::ExecResult runFrame(const CompiledFunction &F, size_t Base,
                            exec::ExecContext &Ctx,
                            const exec::ExecOptions &Opts, uint64_t &Steps,
                            unsigned Depth);

  /// Loads constants and zeroes slot registers of a freshly carved frame.
  void initFrame(const CompiledFunction &F, size_t Base);

  const CompiledModule &CM;
  std::vector<Reg> Stack;
};

} // namespace wdm::vm

#endif // WDM_VM_MACHINE_H
