//===--- VMWeakDistance.cpp - Compiled-tier weak distance ------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "vm/VMWeakDistance.h"

#include <cassert>
#include <limits>

using namespace wdm;
using namespace wdm::vm;
using namespace wdm::exec;
using namespace wdm::ir;

const char *wdm::vm::engineKindName(EngineKind K) {
  switch (K) {
  case EngineKind::Interp:
    return "interp";
  case EngineKind::VM:
    return "vm";
  case EngineKind::JIT:
    return "jit";
  }
  return "?";
}

bool wdm::vm::engineKindByName(const std::string &Name, EngineKind &Out) {
  if (Name == "interp") {
    Out = EngineKind::Interp;
    return true;
  }
  if (Name == "vm") {
    Out = EngineKind::VM;
    return true;
  }
  if (Name == "jit") {
    Out = EngineKind::JIT;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// VMWeakDistance
//===----------------------------------------------------------------------===//

VMWeakDistance::VMWeakDistance(const CompiledModule &CM,
                               const CompiledFunction &F, unsigned WIdx,
                               double WInit, const ExecContext &Parent,
                               ExecOptions Opts)
    : F(F), WIdx(WIdx), WInit(WInit), Ctx(*CM.M), Mach(CM), Opts(Opts) {
  assert(F.Ok && "minting a VM evaluator for a rejected function");
  Ctx.adoptSiteState(Parent);
}

double VMWeakDistance::operator()(const std::vector<double> &X) {
  assert(X.size() == F.NumArgs && "input dimension mismatch");
  Ctx.resetGlobals();
  Ctx.globalSlots()[WIdx] = RTValue::ofDouble(WInit);

  Last = Mach.run(F, X.data(), X.size(), Ctx, Opts);
  if (Last.Kind == ExecResult::Outcome::StepLimitExceeded)
    return std::numeric_limits<double>::infinity();
  // Normal returns and traps both leave w meaningful (same policy as
  // instr::IRWeakDistance).
  return Ctx.globalSlots()[WIdx].asDouble();
}

void VMWeakDistance::evalBatch(const double *Xs, std::size_t K,
                               double *Fs) {
  if (Ctx.observer()) {
    // Observed runs must see events in scalar evaluation order.
    core::WeakDistance::evalBatch(Xs, K, Fs);
    return;
  }
  Lanes.resize(K);
  Mach.runBatch(F, Xs, K, WIdx, WInit, Ctx, Opts, Lanes.data());
  for (std::size_t L = 0; L < K; ++L)
    Fs[L] = Lanes[L].Kind == ExecResult::Outcome::StepLimitExceeded
                ? std::numeric_limits<double>::infinity()
                : Lanes[L].Watched;
  if (K) {
    Last = ExecResult();
    Last.Kind = Lanes[K - 1].Kind;
    Last.Steps = Lanes[K - 1].Steps;
  }
}

//===----------------------------------------------------------------------===//
// VMWeakDistanceFactory
//===----------------------------------------------------------------------===//

VMWeakDistanceFactory::VMWeakDistanceFactory(
    const Engine &E, const Function *F, const GlobalVar *WVar,
    double WInit, const ExecContext &Parent, ExecOptions Opts,
    const Limits &L)
    : F(F), WVar(WVar), WInit(WInit), Parent(Parent), Opts(Opts),
      Compiled(compile(E.module(), L)),
      InterpFallback(E, F, WVar, WInit, Parent, Opts) {
  const CompiledFunction *CF = Compiled.lookup(F);
  assert(CF && "subject function outside the engine's module");
  if (CF->Ok) {
    Target = CF;
    WIdx = Parent.globalIndexOf(WVar);
  } else {
    Reason = CF->RejectReason;
  }
}

std::unique_ptr<core::WeakDistance> VMWeakDistanceFactory::make() {
  if (!Target)
    return InterpFallback.make();
  return std::make_unique<VMWeakDistance>(Compiled, *Target, WIdx, WInit,
                                          Parent, Opts);
}

// makeWeakDistanceFactory is defined in src/jit/JITWeakDistance.cpp so
// the EngineKind::JIT case can mint jit factories without this layer
// depending on the jit one.
