//===--- VMWeakDistance.h - Compiled-tier weak distance --------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled counterpart of instr::IRWeakDistance — the paper's W
/// driver (reset globals, seed w, run Prog_w, read w back) executed on
/// the vm::Machine instead of the tree-walking interpreter. The factory
/// is a drop-in for instr::IRWeakDistanceFactory: same constructor shape,
/// same thread-local minting contract (each make() owns a private
/// ExecContext snapshotting the parent's site state, plus its own
/// Machine), and **automatic interpreter fallback** — when the lowering
/// rejects the subject (or one of its callees), minted evaluators run on
/// the interpreter instead and fallbackReason() says why. Results are
/// bit-for-bit identical either way; only throughput changes.
///
/// EngineKind names the two execution tiers; api::SearchConfig's `engine`
/// field and every analysis constructor select by it (VM is the default
/// tier everywhere).
///
//===----------------------------------------------------------------------===//

#ifndef WDM_VM_VMWEAKDISTANCE_H
#define WDM_VM_VMWEAKDISTANCE_H

#include "instrument/IRWeakDistance.h"
#include "vm/Lowering.h"
#include "vm/Machine.h"

#include <memory>
#include <string>

namespace wdm::vm {

/// The execution tiers behind every weak-distance evaluation.
enum class EngineKind : uint8_t {
  Interp, ///< exec::Engine, the tree-walking interpreter.
  VM,     ///< vm::Machine over lowered bytecode (the default).
  JIT,    ///< jit:: native code compiled from the lowered bytecode.
};

const char *engineKindName(EngineKind K);
/// Parses "interp" / "vm" / "jit"; false on anything else. "jit" parses
/// on every platform — availability is a factory concern (unavailable
/// hosts fall back to the VM and report it via FactoryBundle).
bool engineKindByName(const std::string &Name, EngineKind &Out);

/// One compiled weak-distance evaluator: owns its ExecContext and its
/// Machine, so SearchEngine workers never share mutable state.
class VMWeakDistance : public core::WeakDistance {
public:
  /// \p CM/\p F must outlive the evaluator (the factory owns them).
  /// \p WIdx is the dense slot of the accumulator global `w`.
  VMWeakDistance(const CompiledModule &CM, const CompiledFunction &F,
                 unsigned WIdx, double WInit,
                 const exec::ExecContext &Parent, exec::ExecOptions Opts);

  unsigned dim() const override { return F.NumArgs; }
  double operator()(const std::vector<double> &X) override;

  /// Compiled batch mode: the whole block runs through the Machine's
  /// lockstep tier (one frame of K lanes, one rounding-mode switch, one
  /// dispatch per opcode). Values are bit-for-bit the scalar ones; when
  /// an observer is attached to the context the call quietly degrades
  /// to the scalar loop so observer event order is preserved.
  void evalBatch(const double *Xs, std::size_t K, double *Fs) override;

  /// The compiled tier's sweet spot (search.batch = auto resolves here).
  unsigned preferredBatch() const override { return 32; }

  std::string name() const override { return F.Source->name(); }

  /// State of the most recent evaluation. After evalBatch this carries
  /// the last lane's outcome kind and step count (no trap details — the
  /// batch tier does not materialize messages).
  const exec::ExecResult &lastResult() const { return Last; }
  exec::ExecContext &context() { return Ctx; }

private:
  const CompiledFunction &F;
  unsigned WIdx;
  double WInit;
  exec::ExecContext Ctx;
  Machine Mach;
  exec::ExecOptions Opts;
  exec::ExecResult Last;
  std::vector<LaneOutcome> Lanes; ///< Reused across evalBatch calls.
};

/// Drop-in replacement for instr::IRWeakDistanceFactory that mints
/// compiled evaluators, falling back to interpreter-backed ones when the
/// lowering rejected the subject function (or a callee).
class VMWeakDistanceFactory : public core::WeakDistanceFactory {
public:
  VMWeakDistanceFactory(const exec::Engine &E, const ir::Function *F,
                        const ir::GlobalVar *WVar, double WInit,
                        const exec::ExecContext &Parent,
                        exec::ExecOptions Opts = {},
                        const Limits &L = {});

  unsigned dim() const override { return F->numArgs(); }
  std::unique_ptr<core::WeakDistance> make() override;

  /// True when minted evaluators execute compiled code.
  bool usingVM() const { return Target != nullptr; }
  /// Why the lowering refused (empty when usingVM()).
  const std::string &fallbackReason() const { return Reason; }
  const CompiledModule &compiled() const { return Compiled; }

private:
  const ir::Function *F;
  const ir::GlobalVar *WVar;
  double WInit;
  const exec::ExecContext &Parent;
  exec::ExecOptions Opts;

  CompiledModule Compiled;
  const CompiledFunction *Target = nullptr; ///< Null => fallback.
  unsigned WIdx = 0;
  instr::IRWeakDistanceFactory InterpFallback;
  std::string Reason;
};

/// An engine-selected factory plus what actually got used — the unit the
/// analyses store and the Report's `engine` / `engine_fallback` fields
/// are filled from.
struct FactoryBundle {
  std::unique_ptr<core::WeakDistanceFactory> Factory;
  EngineKind Requested = EngineKind::VM;
  EngineKind Effective = EngineKind::Interp;
  /// Set when the effective tier is below the requested one (the
  /// lowering rejected the subject, or the JIT is unavailable / refused
  /// and fell through to the VM or further).
  std::string FallbackReason;

  const char *effectiveName() const { return engineKindName(Effective); }
  core::WeakDistanceFactory &operator*() const { return *Factory; }
};

/// Builds the factory for \p Requested: the interpreter factory as-is,
/// a VMWeakDistanceFactory whose effective tier reflects lowering
/// success, or a jit::JITWeakDistanceFactory degrading through the full
/// jit -> vm -> interp chain. Argument shape matches
/// instr::IRWeakDistanceFactory. (Defined in src/jit/ so the JIT tier
/// can be selected without the vm layer depending on it.)
FactoryBundle makeWeakDistanceFactory(EngineKind Requested,
                                      const exec::Engine &E,
                                      const ir::Function *F,
                                      const ir::GlobalVar *WVar,
                                      double WInit,
                                      const exec::ExecContext &Parent,
                                      exec::ExecOptions Opts = {},
                                      const Limits &L = {});

} // namespace wdm::vm

#endif // WDM_VM_VMWEAKDISTANCE_H
