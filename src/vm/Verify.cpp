//===--- Verify.cpp - Bytecode static checker ------------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "vm/Verify.h"

#include "ir/Module.h"
#include "ir/Value.h"

#include <sstream>

using namespace wdm;
using namespace wdm::vm;

namespace {

bool isTerminator(Op O) {
  switch (O) {
  case Op::Jmp:
  case Op::CondBr:
  case Op::RetD:
  case Op::RetI:
  case Op::RetB:
  case Op::RetVoid:
  case Op::Trap:
    return true;
  default:
    return false;
  }
}

Op fusedFOpOpcode(FusedFOp K) {
  switch (K) {
  case FusedFOp::FAdd:
    return Op::FAdd;
  case FusedFOp::FSub:
    return Op::FSub;
  case FusedFOp::FMul:
    return Op::FMul;
  case FusedFOp::FDiv:
    return Op::FDiv;
  case FusedFOp::FMin:
    return Op::FMin;
  case FusedFOp::FMax:
    return Op::FMax;
  }
  return Op::FAdd;
}

class FunctionVerifier {
public:
  FunctionVerifier(const CompiledModule &CM, const CompiledFunction &CF)
      : CM(CM), CF(CF) {}

  Status run() {
    if (!CF.Ok)
      return Status::success();
    if (!CF.Source)
      return fail(0, "compiled function has no source");
    if (Status S = checkFrame(); !S.ok())
      return S;
    if (CF.Code.empty())
      return fail(0, "empty code for an Ok function");
    if (!isTerminator(CF.Code.back().Opc))
      return fail(CF.Code.size() - 1, "code does not end in a terminator");
    for (size_t PC = 0; PC < CF.Code.size(); ++PC)
      if (Status S = checkInst(PC); !S.ok())
        return S;
    return Status::success();
  }

private:
  Status fail(size_t PC, const std::string &Msg) {
    std::ostringstream OS;
    OS << "bytecode verifier: " << CF.Source->name() << "@" << PC << ": "
       << Msg;
    return Status::error(OS.str());
  }

  Status checkFrame() {
    if (CF.NumArgs != CF.Source->numArgs())
      return fail(0, "NumArgs does not match the source signature");
    if (CF.RetType != CF.Source->returnType())
      return fail(0, "RetType does not match the source signature");
    if (CF.ConstBits.size() != CF.NumConsts)
      return fail(0, "ConstBits size does not match NumConsts");
    if (CF.NumArgs + CF.NumConsts > CF.FirstSlotReg)
      return fail(0, "argument/constant registers overlap the slot region");
    if (CF.FirstSlotReg + CF.NumSlots != CF.NumRegs)
      return fail(0, "FirstSlotReg + NumSlots != NumRegs");
    if (CF.NumRegs > 65536)
      return fail(0, "frame exceeds the 16-bit register address space");
    return Status::success();
  }

  Status reg(size_t PC, uint16_t R, const char *What) {
    if (R >= CF.NumRegs)
      return fail(PC, std::string(What) + " register out of range");
    return Status::success();
  }

  Status slotReg(size_t PC, uint16_t R) {
    if (R < CF.FirstSlotReg || R >= CF.FirstSlotReg + CF.NumSlots)
      return fail(PC, "slot register outside the slot region");
    return Status::success();
  }

  Status target(size_t PC, int32_t T) {
    if (T < 0 || static_cast<size_t>(T) >= CF.Code.size())
      return fail(PC, "branch target out of range");
    if (T != 0 && !isTerminator(CF.Code[T - 1].Opc))
      return fail(PC, "branch target is not a leader");
    return Status::success();
  }

  Status global(size_t PC, int32_t Slot, ir::Type Want) {
    if (Slot < 0 || static_cast<size_t>(Slot) >= CM.M->numGlobals())
      return fail(PC, "global slot out of range");
    if (CM.M->global(Slot)->type() != Want)
      return fail(PC, "global access type mismatch");
    return Status::success();
  }

  Status checkInst(size_t PC) {
    const Inst &I = CF.Code[PC];
    auto DAB = [&]() -> Status {
      if (Status S = reg(PC, I.Dest, "dest"); !S.ok())
        return S;
      if (Status S = reg(PC, I.A, "A"); !S.ok())
        return S;
      return reg(PC, I.B, "B");
    };
    auto DA = [&]() -> Status {
      if (Status S = reg(PC, I.Dest, "dest"); !S.ok())
        return S;
      return reg(PC, I.A, "A");
    };
    switch (I.Opc) {
    case Op::FAdd:
    case Op::FSub:
    case Op::FMul:
    case Op::FDiv:
    case Op::FRem:
    case Op::Pow:
    case Op::FMin:
    case Op::FMax:
    case Op::FCmpEQ:
    case Op::FCmpNE:
    case Op::FCmpLT:
    case Op::FCmpLE:
    case Op::FCmpGT:
    case Op::FCmpGE:
    case Op::ICmpEQ:
    case Op::ICmpNE:
    case Op::ICmpLT:
    case Op::ICmpLE:
    case Op::ICmpGT:
    case Op::ICmpGE:
    case Op::IAdd:
    case Op::ISub:
    case Op::IMul:
    case Op::IAnd:
    case Op::IOr:
    case Op::IXor:
    case Op::IShl:
    case Op::ILShr:
    case Op::BAnd:
    case Op::BOr:
    case Op::UlpDiff:
      return DAB();
    case Op::FNeg:
    case Op::FAbs:
    case Op::Sqrt:
    case Op::Sin:
    case Op::Cos:
    case Op::Tan:
    case Op::Exp:
    case Op::Log:
    case Op::Floor:
    case Op::BNot:
    case Op::SIToFP:
    case Op::FPToSI:
    case Op::HighWord:
      return DA();
    case Op::Select: {
      if (Status S = DAB(); !S.ok())
        return S;
      return reg(PC, I.C, "C");
    }
    case Op::SlotAddr: {
      // Dest receives the slot *ordinal* (the interpreter-visible
      // value); the slot's storage register is FirstSlotReg + Imm.
      if (Status S = reg(PC, I.Dest, "dest"); !S.ok())
        return S;
      if (I.Imm < 0 || static_cast<unsigned>(I.Imm) >= CF.NumSlots)
        return fail(PC, "alloca ordinal out of range");
      return Status::success();
    }
    case Op::SlotLoad: {
      if (Status S = reg(PC, I.Dest, "dest"); !S.ok())
        return S;
      return slotReg(PC, I.Imm2);
    }
    case Op::SlotStore: {
      if (Status S = reg(PC, I.A, "A"); !S.ok())
        return S;
      return slotReg(PC, I.Imm2);
    }
    case Op::GLoadD: {
      if (Status S = reg(PC, I.Dest, "dest"); !S.ok())
        return S;
      return global(PC, I.Imm, ir::Type::Double);
    }
    case Op::GLoadI: {
      if (Status S = reg(PC, I.Dest, "dest"); !S.ok())
        return S;
      return global(PC, I.Imm, ir::Type::Int);
    }
    case Op::GStoreD: {
      if (Status S = reg(PC, I.A, "A"); !S.ok())
        return S;
      return global(PC, I.Imm, ir::Type::Double);
    }
    case Op::GStoreI: {
      if (Status S = reg(PC, I.A, "A"); !S.ok())
        return S;
      return global(PC, I.Imm, ir::Type::Int);
    }
    case Op::SiteEnabled:
      // Imm (the site id) is intentionally unchecked: beyond-range ids
      // read as enabled by contract.
      return reg(PC, I.Dest, "dest");
    case Op::Call: {
      if (I.Imm2 >= CM.Functions.size())
        return fail(PC, "call target index out of range");
      const CompiledFunction &Callee = CM.Functions[I.Imm2];
      if (!Callee.Source)
        return fail(PC, "call target has no source");
      unsigned NA = Callee.Source->numArgs();
      if (I.Imm < 0 ||
          static_cast<size_t>(I.Imm) + NA > CF.CallArgPool.size())
        return fail(PC, "call argument pool slice out of range");
      for (unsigned K = 0; K < NA; ++K)
        if (Status S = reg(PC, CF.CallArgPool[I.Imm + K], "pooled arg");
            !S.ok())
          return S;
      if (Callee.Source->returnType() != ir::Type::Void)
        return reg(PC, I.Dest, "dest");
      return Status::success();
    }
    case Op::Jmp:
      return target(PC, I.Imm);
    case Op::CondBr: {
      if (Status S = reg(PC, I.A, "A"); !S.ok())
        return S;
      if (I.Dest >= CF.Branches.size())
        return fail(PC, "condbr observer index out of range");
      if (Status S = target(PC, I.Imm); !S.ok())
        return S;
      return target(PC, I.Imm2);
    }
    case Op::RetD:
      if (CF.RetType != ir::Type::Double)
        return fail(PC, "ret opcode does not match the return type");
      return reg(PC, I.A, "A");
    case Op::RetI:
      if (CF.RetType != ir::Type::Int)
        return fail(PC, "ret opcode does not match the return type");
      return reg(PC, I.A, "A");
    case Op::RetB:
      if (CF.RetType != ir::Type::Bool)
        return fail(PC, "ret opcode does not match the return type");
      return reg(PC, I.A, "A");
    case Op::RetVoid:
      if (CF.RetType != ir::Type::Void)
        return fail(PC, "ret opcode does not match the return type");
      return Status::success();
    case Op::Trap:
      if (I.Imm2 >= CF.TrapMessages.size())
        return fail(PC, "trap message index out of range");
      return Status::success();
    case Op::FusedGRmwD: {
      if (Status S = DAB(); !S.ok())
        return S;
      if (Status S = reg(PC, I.C, "C"); !S.ok())
        return S;
      if (Status S = global(PC, I.Imm, ir::Type::Double); !S.ok())
        return S;
      if (I.Imm2 > static_cast<uint16_t>(FusedFOp::FMax))
        return fail(PC, "fused F-op kind out of range");
      if (PC + 2 >= CF.Code.size())
        return fail(PC, "fused RMW triple truncated");
      const Inst &FOp = CF.Code[PC + 1];
      const Inst &Store = CF.Code[PC + 2];
      if (FOp.Opc != fusedFOpOpcode(static_cast<FusedFOp>(I.Imm2)) ||
          FOp.A != I.A || FOp.B != I.B || FOp.Dest != I.C)
        return fail(PC, "fused RMW F-op carrier mismatch");
      if (Store.Opc != Op::GStoreD || Store.Imm != I.Imm || Store.A != I.C)
        return fail(PC, "fused RMW store carrier mismatch");
      return Status::success();
    }
    case Op::FusedFCmpBr: {
      if (Status S = DAB(); !S.ok())
        return S;
      if (I.Imm2 > static_cast<uint16_t>(FusedCmp::GE))
        return fail(PC, "fused compare predicate out of range");
      if (PC + 1 >= CF.Code.size())
        return fail(PC, "fused compare-branch pair truncated");
      const Inst &Br = CF.Code[PC + 1];
      if (Br.Opc != Op::CondBr || Br.A != I.Dest)
        return fail(PC, "fused compare-branch carrier mismatch");
      return Status::success();
    }
    }
    return fail(PC, "unknown opcode");
  }

  const CompiledModule &CM;
  const CompiledFunction &CF;
};

} // namespace

Status vm::verifyFunction(const CompiledModule &CM,
                          const CompiledFunction &CF) {
  return FunctionVerifier(CM, CF).run();
}

Status vm::verifyBytecode(const CompiledModule &CM) {
  if (!CM.M)
    return Status::error("bytecode verifier: module has no source");
  for (const CompiledFunction &CF : CM.Functions)
    if (Status S = verifyFunction(CM, CF); !S.ok())
      return S;
  return Status::success();
}
