//===--- Verify.h - Bytecode static checker ---------------------*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static verification of lowered bytecode, the VM-tier counterpart of
/// ir::verifyModule: every register field addresses the frame, every
/// branch target is a leader, the fusion peepholes left consistent
/// instruction pairs/triples behind, and the frame layout matches the
/// source signature. Run after every lowering in debug builds (assert at
/// the end of vm::compile) and unconditionally by the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_VM_VERIFY_H
#define WDM_VM_VERIFY_H

#include "support/Error.h"
#include "vm/Bytecode.h"

namespace wdm::vm {

/// Checks one lowered function (no-op success when !CF.Ok):
///  - frame accounting: NumArgs + NumConsts <= FirstSlotReg,
///    FirstSlotReg + NumSlots == NumRegs, ConstBits.size() == NumConsts,
///    NumArgs and RetType match the source signature;
///  - every register field used by an opcode is < NumRegs; slot-addressed
///    registers lie in [FirstSlotReg, FirstSlotReg + NumSlots);
///  - branch targets are in range and are leaders (index 0 or preceded by
///    a terminator — fused-away instructions stay in place, so this
///    survives the peepholes); CondBr observer indices are in range;
///  - global accesses address existing module globals of the right type;
///  - calls index real functions with fully-pooled argument lists;
///  - FusedGRmwD is followed by its matching F-op and GStoreD carriers,
///    FusedFCmpBr by its CondBr data carrier;
///  - the ret opcode matches RetType and the code ends in a terminator.
/// SiteEnabled ids are deliberately not range-checked: the runtime
/// treats beyond-range sites as enabled and tests rely on that.
Status verifyFunction(const CompiledModule &CM, const CompiledFunction &CF);

/// Verifies every Ok function in the module.
Status verifyBytecode(const CompiledModule &CM);

} // namespace wdm::vm

#endif // WDM_VM_VERIFY_H
