//===--- AbsIntTests.cpp - Interval abstract interpretation tests --------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
// The static pre-pass's contract is *soundness under every runtime
// rounding mode*: every concrete value the interpreter produces must lie
// inside the static interval the analysis certified for that
// instruction. The fuzz half of this file enforces exactly that over
// randomized forward-CFG modules; the unit half pins the precision the
// pruning consumers rely on (infeasible edges, impossible equalities,
// proved-finite ranges, start-box shrinking).
//
//===----------------------------------------------------------------------===//

#include "absint/AbsInt.h"
#include "exec/Interpreter.h"
#include "instrument/Sites.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/FPUtils.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cmath>

#include "RandomModule.h"

using namespace wdm;

namespace {

//===----------------------------------------------------------------------===//
// Soundness fuzz: concrete execution inside static intervals
//===----------------------------------------------------------------------===//

/// Asserts every value-producing instruction's concrete result lies in
/// the interval the analysis certified for it. A bottom fact on an
/// executed instruction is itself a soundness bug (the analysis claimed
/// the instruction unreachable).
class SoundnessObserver : public exec::ExecObserver {
public:
  explicit SoundnessObserver(const absint::FunctionAnalysis &FA)
      : FA(FA) {}

  std::string Where;
  unsigned Checked = 0;

  void onInstruction(const ir::Instruction *I, const exec::RTValue *Ops,
                     unsigned NumOps,
                     const exec::RTValue &Result) override {
    (void)Ops;
    (void)NumOps;
    if (I->type() == ir::Type::Void)
      return;
    absint::AbstractValue Fact = FA.factFor(I);
    ASSERT_EQ(static_cast<int>(Fact.Ty),
              static_cast<int>(Result.type()))
        << Where << " inst %" << I->id();
    ++Checked;
    switch (Result.type()) {
    case ir::Type::Double: {
      double V = Result.asDouble();
      EXPECT_TRUE(Fact.D.contains(V))
          << Where << " inst %" << I->id() << ": concrete " << V
          << " outside [" << Fact.D.Lo << ", " << Fact.D.Hi
          << "] maynan=" << Fact.D.MayNaN;
      break;
    }
    case ir::Type::Int:
      EXPECT_TRUE(Fact.I.contains(Result.asInt()))
          << Where << " inst %" << I->id() << ": concrete "
          << Result.asInt() << " outside [" << Fact.I.Lo << ", "
          << Fact.I.Hi << "]";
      break;
    case ir::Type::Bool:
      EXPECT_TRUE(Fact.B.contains(Result.asBool()))
          << Where << " inst %" << I->id() << ": concrete "
          << Result.asBool();
      break;
    case ir::Type::Void:
      break;
    }
  }

private:
  const absint::FunctionAnalysis &FA;
};

/// One fuzz round: analyze \p F once, then run the interpreter on
/// \p NumInputs inputs under all four rounding modes and check every
/// intermediate value against the static facts.
void fuzzFunction(const ir::Module &M, const ir::Function *F,
                  uint64_t Seed, unsigned NumInputs,
                  const absint::AnalysisOptions &AOpts,
                  bool RestrictedInputs) {
  absint::FunctionAnalysis FA(*F, AOpts);
  exec::Engine E(M);
  exec::ExecContext Ctx(M);
  SoundnessObserver Obs(FA);
  Ctx.setObserver(&Obs);
  RNG Rand(Seed);

  for (exec::RoundingMode RM :
       {exec::RoundingMode::NearestEven, exec::RoundingMode::TowardZero,
        exec::RoundingMode::Upward, exec::RoundingMode::Downward}) {
    exec::ExecOptions Opts;
    Opts.Rounding = RM;
    for (unsigned K = 0; K < NumInputs; ++K) {
      std::vector<double> X;
      if (RestrictedInputs) {
        X.resize(F->numArgs());
        for (unsigned D = 0; D < F->numArgs(); ++D)
          X[D] = Rand.uniform(AOpts.ArgRanges[D].Lo,
                              AOpts.ArgRanges[D].Hi);
      } else {
        X = testutil::drawInput(Rand, F->numArgs());
      }
      std::vector<exec::RTValue> Args;
      for (double V : X)
        Args.push_back(exec::RTValue::ofDouble(V));
      Obs.Where = M.name() + "::" + F->name() + " rm=" +
                  std::to_string(static_cast<int>(RM)) + " input #" +
                  std::to_string(K);
      Ctx.resetGlobals();
      E.run(F, Args, Ctx, Opts);
    }
  }
  EXPECT_GT(Obs.Checked, 0u);
}

TEST(AbsIntSoundnessFuzz, RandomModulesAllRoundingModes) {
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    ir::Module M("absfuzz" + std::to_string(Seed));
    RNG Rand(Seed * 0xab51);
    testutil::buildRandomModule(M, Rand);
    Status S = ir::verifyModule(M);
    ASSERT_TRUE(S.ok()) << "seed " << Seed << ": " << S.message();
    const ir::Function *F = M.functionByName("f");
    ASSERT_NE(F, nullptr);
    fuzzFunction(M, F, Seed * 31 + 7, 8, {}, false);
  }
}

TEST(AbsIntSoundnessFuzz, RestrictedArgRangesStaySound) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    ir::Module M("absfuzzr" + std::to_string(Seed));
    RNG Rand(Seed * 0x517b);
    testutil::buildRandomModule(M, Rand);
    const ir::Function *F = M.functionByName("f");
    ASSERT_NE(F, nullptr);
    absint::AnalysisOptions AOpts;
    for (unsigned D = 0; D < F->numArgs(); ++D)
      AOpts.ArgRanges.push_back(absint::FPInterval::range(-50.0, 50.0));
    fuzzFunction(M, F, Seed * 131 + 3, 6, AOpts, true);
  }
}

TEST(AbsIntSoundnessFuzz, SitesDisabledStillSound) {
  // SiteEnabled is modeled as an unknown bool, so the facts must hold
  // for any disabled-site table.
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    ir::Module M("absfuzzd" + std::to_string(Seed));
    RNG Rand(Seed * 0xd15ab1ed);
    testutil::buildRandomModule(M, Rand);
    const ir::Function *F = M.functionByName("f");
    ASSERT_NE(F, nullptr);
    absint::FunctionAnalysis FA(*F);
    exec::Engine E(M);
    exec::ExecContext Ctx(M);
    for (int Id = 0; Id < M.numSiteIds(); Id += 2)
      Ctx.setSiteEnabled(Id, false);
    SoundnessObserver Obs(FA);
    Ctx.setObserver(&Obs);
    RNG In(Seed * 77 + 5);
    for (unsigned K = 0; K < 10; ++K) {
      std::vector<double> X = testutil::drawInput(In, F->numArgs());
      std::vector<exec::RTValue> Args;
      for (double V : X)
        Args.push_back(exec::RTValue::ofDouble(V));
      Obs.Where = M.name() + " input #" + std::to_string(K);
      Ctx.resetGlobals();
      E.run(F, Args, Ctx, {});
    }
  }
}

//===----------------------------------------------------------------------===//
// Precision units: the facts the pruning consumers need
//===----------------------------------------------------------------------===//

/// f(x) = if (x*x < 0.0) then sin(x) else x*x + 1.0 — the true edge is
/// infeasible (a square is never negative and NaN compares false), and
/// the else-result can never equal zero.
struct SquareSubject {
  ir::Module M{"square"};
  ir::Function *F = nullptr;
  ir::Instruction *Cmp = nullptr;
  ir::Instruction *Br = nullptr;
  ir::Instruction *PlusOne = nullptr;
  ir::Instruction *ZeroCheck = nullptr;

  SquareSubject() {
    ir::IRBuilder B(M);
    F = M.addFunction("f", ir::Type::Double);
    ir::Argument *X = F->addArg(ir::Type::Double, "x");
    ir::BasicBlock *Entry = F->addBlock("entry");
    ir::BasicBlock *Then = F->addBlock("then");
    ir::BasicBlock *Else = F->addBlock("else");
    B.setInsertAppend(Entry);
    ir::Instruction *Sq = B.fmul(X, X);
    Cmp = B.fcmp(ir::CmpPred::LT, Sq, B.lit(0.0));
    Br = B.condbr(Cmp, Then, Else);
    B.setInsertAppend(Then);
    B.ret(B.sin(X));
    B.setInsertAppend(Else);
    PlusOne = B.fadd(Sq, B.lit(1.0));
    ZeroCheck = B.fcmp(ir::CmpPred::EQ, PlusOne, B.lit(0.0));
    B.ret(B.select(ZeroCheck, B.lit(0.0), PlusOne));
  }
};

TEST(AbsIntPrecisionTest, SquareBranchInfeasible) {
  SquareSubject S;
  absint::FunctionAnalysis FA(*S.F);
  ASSERT_TRUE(FA.complete());
  EXPECT_FALSE(FA.edgeFeasible(S.Br, /*TakenTrue=*/true));
  EXPECT_TRUE(FA.edgeFeasible(S.Br, /*TakenTrue=*/false));
}

TEST(AbsIntPrecisionTest, SquarePlusOneEqualityImpossible) {
  SquareSubject S;
  absint::FunctionAnalysis FA(*S.F);
  ASSERT_TRUE(FA.complete());
  // x*x + 1 is >= 1 or NaN; neither can equal 0.0.
  EXPECT_FALSE(FA.cmpEqualityPossible(S.ZeroCheck));
  // The guard itself (x*x < 0) can have equal operands: x == 0.
  EXPECT_TRUE(FA.cmpEqualityPossible(S.Cmp));
}

TEST(AbsIntPrecisionTest, SiteClassification) {
  SquareSubject S;
  absint::FunctionAnalysis FA(*S.F);
  ASSERT_TRUE(FA.complete());

  instr::Site Unreach;
  Unreach.Id = 0;
  Unreach.Kind = instr::SiteKind::BranchTrue;
  Unreach.Inst = S.Br;
  EXPECT_EQ(absint::classifySite(FA, Unreach),
            absint::SiteVerdict::Unreachable);

  instr::Site Safe;
  Safe.Id = 1;
  Safe.Kind = instr::SiteKind::Comparison;
  Safe.Inst = S.ZeroCheck;
  EXPECT_EQ(absint::classifySite(FA, Safe),
            absint::SiteVerdict::ProvedSafe);

  instr::Site Open;
  Open.Id = 2;
  Open.Kind = instr::SiteKind::Comparison;
  Open.Inst = S.Cmp;
  EXPECT_EQ(absint::classifySite(FA, Open),
            absint::SiteVerdict::Unknown);
}

TEST(AbsIntPrecisionTest, BoundedArgsProveFiniteRanges) {
  ir::Module M("bounded");
  ir::IRBuilder B(M);
  ir::Function *F = M.addFunction("f", ir::Type::Double);
  ir::Argument *X = F->addArg(ir::Type::Double, "x");
  B.setInsertAppend(F->addBlock("entry"));
  ir::Instruction *R = B.fadd(B.fmul(X, X), B.lit(1.0));
  B.ret(R);

  absint::AnalysisOptions AOpts;
  AOpts.ArgRanges.push_back(absint::FPInterval::range(-10.0, 10.0));
  absint::FunctionAnalysis FA(*F, AOpts);
  ASSERT_TRUE(FA.complete());
  absint::AbstractValue Fact = FA.factFor(R);
  EXPECT_FALSE(Fact.D.MayNaN);
  EXPECT_GE(Fact.D.Lo, 1.0 - 1e-9);
  EXPECT_LE(Fact.D.Hi, 102.0);

  instr::Site Op;
  Op.Id = 0;
  Op.Kind = instr::SiteKind::FPOp;
  Op.Inst = R;
  EXPECT_EQ(absint::classifySite(FA, Op), absint::SiteVerdict::ProvedSafe);
}

TEST(AbsIntPrecisionTest, ShrinkStartBoxKeepsFeasibleSlices) {
  // The guard x >= 90 gates the only interesting site; slices of
  // [-100, 100] below 90 cannot take it, so the shrunk box must
  // concentrate at the top while still covering the threshold.
  ir::Module M("gate");
  ir::IRBuilder B(M);
  ir::Function *F = M.addFunction("f", ir::Type::Double);
  ir::Argument *X = F->addArg(ir::Type::Double, "x");
  ir::BasicBlock *Entry = F->addBlock("entry");
  ir::BasicBlock *Then = F->addBlock("then");
  ir::BasicBlock *Else = F->addBlock("else");
  B.setInsertAppend(Entry);
  ir::Instruction *C = B.fcmp(ir::CmpPred::GE, X, B.lit(90.0));
  ir::Instruction *Br = B.condbr(C, Then, Else);
  B.setInsertAppend(Then);
  B.ret(B.fmul(X, X));
  B.setInsertAppend(Else);
  B.ret(B.lit(0.0));

  absint::BoxShrinkResult R = absint::shrinkStartBox(
      *F, -100.0, 100.0, {},
      [&](const absint::FunctionAnalysis &FA) {
        return FA.edgeFeasible(Br, /*TakenTrue=*/true);
      });
  EXPECT_TRUE(R.Changed);
  EXPECT_GT(R.Lo, -100.0);
  EXPECT_LE(R.Lo, 90.0);
  EXPECT_EQ(R.Hi, 100.0);
}

TEST(AbsIntPrecisionTest, ClassifySitesReportsAssignedTables) {
  SquareSubject S;
  instr::SiteTable T = instr::assignComparisonSites(*S.F);
  ASSERT_EQ(T.size(), 2u);
  absint::FunctionAnalysis FA(*S.F);
  std::vector<absint::SiteReport> Reports = absint::classifySites(FA, T);
  ASSERT_EQ(Reports.size(), 2u);
  unsigned Safe = 0, Open = 0;
  for (const absint::SiteReport &R : Reports) {
    Safe += R.Verdict == absint::SiteVerdict::ProvedSafe;
    Open += R.Verdict == absint::SiteVerdict::Unknown;
    if (R.Verdict != absint::SiteVerdict::Unknown)
      EXPECT_FALSE(R.Reason.empty());
  }
  EXPECT_EQ(Safe, 1u);
  EXPECT_EQ(Open, 1u);
}

} // namespace
