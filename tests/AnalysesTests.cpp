//===--- AnalysesTests.cpp - End-to-end analysis tests -----------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "analyses/BoundaryAnalysis.h"
#include "analyses/BranchCoverage.h"
#include "analyses/Inconsistency.h"
#include "analyses/OverflowDetector.h"
#include "analyses/PathReachability.h"
#include "gsl/Airy.h"
#include "gsl/Bessel.h"
#include "ir/Verifier.h"
#include "opt/BasinHopping.h"
#include "subjects/Fig1.h"
#include "subjects/Fig2.h"
#include "subjects/SinModel.h"
#include "subjects/TestPrograms.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace wdm;
using namespace wdm::analyses;
using namespace wdm::subjects;

namespace {

TEST(BoundaryAnalysisTest, Fig2FindsABoundaryValue) {
  ir::Module M("fig2");
  Fig2 Prog = buildFig2(M);
  BoundaryAnalysis BVA(M, *Prog.F);
  ASSERT_TRUE(ir::verifyModule(M).ok()) << ir::verifyModule(M).message();

  opt::BasinHopping Backend;
  core::ReductionOptions Opts;
  Opts.Seed = 42;
  Opts.MaxEvals = 40'000;
  core::ReductionResult R = BVA.findOne(Backend, Opts);
  ASSERT_TRUE(R.Found);
  // The witness must trigger a boundary condition on the original.
  EXPECT_FALSE(BVA.hitsFor(R.Witness).empty());
  EXPECT_EQ(R.UnsoundCandidates, 0u);
}

TEST(BoundaryAnalysisTest, Fig2KnownBoundaryValuesAreZeros) {
  ir::Module M("fig2");
  Fig2 Prog = buildFig2(M);
  BoundaryAnalysis BVA(M, *Prog.F);
  // The three boundary values the paper names, plus its surprise find.
  for (double X : {1.0, 2.0, -3.0, 0.9999999999999999}) {
    EXPECT_EQ(BVA.weak()({X}), 0.0) << "at x = " << X;
    EXPECT_FALSE(BVA.hitsFor({X}).empty()) << "at x = " << X;
  }
  // Non-boundary points have strictly positive weak distance.
  for (double X : {0.5, 3.7, -10.0})
    EXPECT_GT(BVA.weak()({X}), 0.0) << "at x = " << X;
}

TEST(PathReachabilityTest, Fig2BothBranches) {
  ir::Module M("fig2");
  Fig2 Prog = buildFig2(M);
  instr::PathSpec Spec;
  Spec.Legs.push_back({Prog.Branch1, true});
  Spec.Legs.push_back({Prog.Branch2, true});
  PathReachability PR(M, *Prog.F, Spec);
  ASSERT_TRUE(ir::verifyModule(M).ok()) << ir::verifyModule(M).message();

  // The paper's solution space is [-3, 1].
  EXPECT_EQ(PR.weak()({0.0}), 0.0);
  EXPECT_EQ(PR.weak()({-3.0}), 0.0);
  EXPECT_EQ(PR.weak()({1.0}), 0.0);
  EXPECT_GT(PR.weak()({1.5}), 0.0);
  EXPECT_GT(PR.weak()({-3.5}), 0.0);
  EXPECT_TRUE(PR.follows({0.5}));
  EXPECT_FALSE(PR.follows({2.5}));

  opt::BasinHopping Backend;
  core::ReductionOptions Opts;
  Opts.Seed = 7;
  Opts.MaxEvals = 20'000;
  core::ReductionResult R = PR.findOne(Backend, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_GE(R.Witness[0], -3.0);
  EXPECT_LE(R.Witness[0], 1.0);
}

TEST(PathReachabilityTest, Fig1aAssertionViolation) {
  ir::Module M("fig1");
  Fig1 Prog = buildFig1a(M);
  // Reach: guard true, assert-condition false (the trap).
  instr::PathSpec Spec;
  Spec.Legs.push_back({Prog.GuardBranch, true});
  Spec.Legs.push_back({Prog.AssertBranch, false});
  PathReachability PR(M, *Prog.F, Spec);

  // The paper's example: x = 0.9999999999999999 fails the assert under
  // round-to-nearest.
  EXPECT_EQ(PR.weak()({0.9999999999999999}), 0.0);
  EXPECT_TRUE(PR.follows({0.9999999999999999}));
  EXPECT_FALSE(PR.follows({0.5}));

  opt::BasinHopping Backend;
  core::ReductionOptions Opts;
  Opts.Seed = 11;
  Opts.MaxEvals = 60'000;
  core::ReductionResult R = PR.findOne(Backend, Opts);
  ASSERT_TRUE(R.Found);
  // Only the maximal double below 1 triggers the violation.
  EXPECT_EQ(R.Witness[0], 0.9999999999999999);
}

TEST(BranchCoverageTest, ClassifierFullCoverage) {
  ir::Module M("classifier");
  ir::Function *F = buildClassifier(M);
  BranchCoverage Cov(M, *F);
  ASSERT_TRUE(ir::verifyModule(M).ok()) << ir::verifyModule(M).message();

  opt::BasinHopping Backend;
  BranchCoverage::Options Opts;
  Opts.Reduce.Seed = 3;
  Opts.Reduce.MaxEvals = 30'000;
  CoverageReport R = Cov.run(Backend, Opts);
  // 4 branches -> 8 directions, all reachable (including x == 42.0).
  EXPECT_EQ(R.Total, 8u);
  EXPECT_EQ(R.Covered, 8u) << "coverage ratio " << R.ratio();
}

TEST(OverflowDetectorTest, BesselFindsMostOverflows) {
  ir::Module M("bessel");
  gsl::SfFunction Bessel = gsl::buildBesselKnuScaledAsympx(M);
  OverflowDetector Det(M, *Bessel.F);
  ASSERT_TRUE(ir::verifyModule(M).ok()) << ir::verifyModule(M).message();
  ASSERT_EQ(Det.sites().size(), gsl::BesselNumFPOps);

  OverflowDetector::Options Opts;
  Opts.Seed = 1234;
  OverflowReport R = Det.run(Opts);
  // Paper: 21 of 23 (2.0*EPSILON is structurally impossible). Allow some
  // slack for the stochastic backend but require the bulk.
  EXPECT_GE(R.numOverflows(), 18u);
  EXPECT_LE(R.numOverflows(), 22u);
  // Every reported overflow must replay on the original program.
  for (const OverflowFinding &F : R.Findings) {
    if (F.Found) {
      EXPECT_TRUE(Det.overflowsAt(F.SiteId, F.Input))
          << "site " << F.SiteId << " (" << F.Description << ")";
    }
  }
}

TEST(InconsistencyTest, AiryBugSignatures) {
  ir::Module M("airy");
  gsl::AiryModel Airy = gsl::buildAiryAi(M);
  ASSERT_TRUE(ir::verifyModule(M).ok()) << ir::verifyModule(M).message();
  InconsistencyChecker Check(M, Airy.Airy);

  // Bug 1: division by the vanished Chebyshev modulus, at the exact
  // double where the series cancels to 0.0.
  InconsistencyFinding Bug1 = Check.check({gsl::AiryBug1Input});
  EXPECT_TRUE(Bug1.Inconsistent)
      << "status " << Bug1.Status << " val " << Bug1.Val;
  EXPECT_EQ(Bug1.RootCause, "division by zero");
  EXPECT_TRUE(Bug1.LooksLikeBug);

  // Bug 2: phase-error blowup inside cos_err.
  InconsistencyFinding Bug2 = Check.check({-1.14e57});
  EXPECT_TRUE(Bug2.Inconsistent)
      << "status " << Bug2.Status << " val " << Bug2.Val;
  EXPECT_EQ(Bug2.RootCause, "Inaccurate cosine");
  EXPECT_TRUE(Bug2.LooksLikeBug);

  // The paper: "the exception disappears if one slightly disturbs the
  // input" — one ulp away the run is consistent again.
  InconsistencyFinding Near =
      Check.check({std::nextafter(gsl::AiryBug1Input, 0.0)});
  EXPECT_FALSE(Near.Inconsistent);

  // A benign oscillatory input stays consistent.
  InconsistencyFinding Fine = Check.check({-5.0});
  EXPECT_FALSE(Fine.Inconsistent);
  EXPECT_EQ(Fine.Status, gsl::GSL_SUCCESS);
}

TEST(BoundaryAnalysisTest, SinModelRefBoundariesAreZeros) {
  ir::Module M("sin");
  SinModel Sin = buildSinModel(M);
  BoundaryAnalysis BVA(M, *Sin.F);
  ASSERT_TRUE(ir::verifyModule(M).ok()) << ir::verifyModule(M).message();
  // Exactly the five dispatch comparisons are boundary sites.
  EXPECT_EQ(BVA.sites().size(), 5u);

  // The developer-suggested thresholds are boundary values (both signs),
  // except the unreachable 2^1024 one.
  for (unsigned I = 0; I < 4; ++I) {
    double Ref = Sin.refBoundary(I);
    EXPECT_EQ(BVA.weak()({Ref}), 0.0) << "threshold " << I;
    EXPECT_EQ(BVA.weak()({-Ref}), 0.0) << "threshold -" << I;
    EXPECT_FALSE(BVA.hitsFor({Ref}).empty());
  }
}

} // namespace
