//===--- ApiTests.cpp - wdm::api spec/analyzer/report tests ---------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "analyses/BoundaryAnalysis.h"
#include "analyses/OverflowDetector.h"
#include "api/Analyzer.h"
#include "api/Backends.h"
#include "api/Subjects.h"
#include "api/TaskRegistry.h"
#include "gsl/Bessel.h"
#include "ir/Parser.h"
#include "opt/BasinHopping.h"
#include "support/Json.h"
#include "vm/VMWeakDistance.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>

using namespace wdm;
using namespace wdm::api;

namespace {

const char *QuickstartIr = R"(
module "quickstart"
func @prog(%x: double) -> double {
entry:
  %xs = alloca double
  store %xs, %x
  %c1 = fcmp.le %x, 1.0
  condbr %c1, inc, mid
inc:
  %x1 = fadd %x, 1.0
  store %xs, %x1
  br mid
mid:
  %xv = load %xs
  %y = fmul %xv, %xv
  %c2 = fcmp.le %y, 4.0
  condbr %c2, dec, done
dec:
  %x2 = fsub %xv, 1.0
  store %xs, %x2
  br done
done:
  %r = load %xs
  ret %r
}
)";

//===----------------------------------------------------------------------===//
// JSON layer
//===----------------------------------------------------------------------===//

TEST(JsonTest, EscapingRoundTrip) {
  // Control chars, quotes, backslashes — the bytes instruction source
  // annotations can contain.
  std::string Nasty = "a\"b\\c\nd\te\x01f/g";
  json::Value Doc = json::Value::object().set(
      "s", json::Value::string(Nasty));
  std::string Text = Doc.dump();
  // The serialized form must not contain raw control characters.
  for (char C : Text)
    EXPECT_GE(static_cast<unsigned char>(C), 0x20u) << Text;

  auto Back = json::Value::parse(Text);
  ASSERT_TRUE(Back.hasValue()) << Back.error();
  EXPECT_EQ(Back->find("s")->asString(), Nasty);
}

TEST(JsonTest, NonFiniteDoublesAsStrings) {
  double Inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(json::numberToJson(Inf), "\"inf\"");
  EXPECT_EQ(json::numberToJson(-Inf), "\"-inf\"");
  EXPECT_EQ(json::numberToJson(std::nan("")), "\"nan\"");

  json::Value Doc = json::Value::object().set(
      "v", json::Value::number(Inf));
  auto Back = json::Value::parse(Doc.dump());
  ASSERT_TRUE(Back.hasValue()) << Back.error();
  EXPECT_EQ(Back->find("v")->asDouble(), Inf);
}

TEST(JsonTest, Uint64RoundTrip) {
  uint64_t Seed = 0xdeadbeefcafef00dULL; // Not representable as double.
  json::Value Doc =
      json::Value::object().set("seed", json::Value::number(Seed));
  auto Back = json::Value::parse(Doc.dump());
  ASSERT_TRUE(Back.hasValue()) << Back.error();
  EXPECT_EQ(Back->find("seed")->asUint(), Seed);
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(json::Value::parse("{").hasValue());
  EXPECT_FALSE(json::Value::parse("{\"a\": }").hasValue());
  EXPECT_FALSE(json::Value::parse("[1, 2,]").hasValue());
  EXPECT_FALSE(json::Value::parse("{} trailing").hasValue());
  EXPECT_TRUE(json::Value::parse(" {\"a\": [1, -2.5e3, true, null]} ")
                  .hasValue());
}

//===----------------------------------------------------------------------===//
// Spec round trip
//===----------------------------------------------------------------------===//

TEST(SpecTest, JsonRoundTripAllFields) {
  AnalysisSpec Spec;
  Spec.Task = TaskKind::Path;
  Spec.Module = ModuleSource::builtin("fig1a");
  Spec.Function = "fig1a";
  Spec.Path = {{0, true}, {1, false}};
  Spec.BoundaryForm = "minulp";
  Spec.OverflowMetric = "absgap";
  Spec.NFP = 7;
  Spec.MaxStall = 5;
  Spec.Probes = {{1.5, -2.25}, {3.0}};
  Spec.ValGlobal = "v";
  Spec.ErrGlobal = "e";
  Spec.Search.MaxEvals = 12345;
  Spec.Search.Starts = 9;
  Spec.Search.Seed = 0xdeadbeefcafef00dULL;
  Spec.Search.StartLo = -42.5;
  Spec.Search.StartHi = 17.25;
  Spec.Search.WildStartProb = 0.375;
  Spec.Search.Threads = 3;
  Spec.Search.Batch = 16;
  Spec.Search.Backends = {"basinhopping", "de"};
  Spec.Search.Engine = "interp";
  Spec.Search.Prune = "sites+box";

  std::string Text = Spec.toJsonText();
  Expected<AnalysisSpec> Back = AnalysisSpec::parse(Text);
  ASSERT_TRUE(Back.hasValue()) << Back.error();

  EXPECT_EQ(Back->Task, Spec.Task);
  EXPECT_EQ(static_cast<int>(Back->Module.K),
            static_cast<int>(Spec.Module.K));
  EXPECT_EQ(Back->Module.Text, Spec.Module.Text);
  EXPECT_EQ(Back->Function, Spec.Function);
  ASSERT_EQ(Back->Path.size(), 2u);
  EXPECT_EQ(Back->Path[0].Branch, 0u);
  EXPECT_TRUE(Back->Path[0].Taken);
  EXPECT_EQ(Back->Path[1].Branch, 1u);
  EXPECT_FALSE(Back->Path[1].Taken);
  EXPECT_EQ(Back->BoundaryForm, Spec.BoundaryForm);
  EXPECT_EQ(Back->OverflowMetric, Spec.OverflowMetric);
  EXPECT_EQ(Back->NFP, Spec.NFP);
  EXPECT_EQ(Back->MaxStall, Spec.MaxStall);
  EXPECT_EQ(Back->Probes, Spec.Probes);
  EXPECT_EQ(Back->ValGlobal, Spec.ValGlobal);
  EXPECT_EQ(Back->ErrGlobal, Spec.ErrGlobal);
  EXPECT_EQ(Back->Search.MaxEvals, Spec.Search.MaxEvals);
  EXPECT_EQ(Back->Search.Starts, Spec.Search.Starts);
  EXPECT_EQ(Back->Search.Seed, Spec.Search.Seed);
  EXPECT_EQ(Back->Search.StartLo, Spec.Search.StartLo);
  EXPECT_EQ(Back->Search.StartHi, Spec.Search.StartHi);
  EXPECT_EQ(Back->Search.WildStartProb, Spec.Search.WildStartProb);
  EXPECT_EQ(Back->Search.Threads, Spec.Search.Threads);
  EXPECT_EQ(Back->Search.Batch, Spec.Search.Batch);
  EXPECT_EQ(Back->Search.Backends, Spec.Search.Backends);
  EXPECT_EQ(Back->Search.Engine, Spec.Search.Engine);
  EXPECT_EQ(Back->Search.Prune, Spec.Search.Prune);

  // Serialize -> parse -> serialize is a fixed point.
  EXPECT_EQ(Back->toJsonText(), Text);
}

TEST(SpecTest, EngineFieldDefaultsAndValidation) {
  // Unset engine resolves to the compiled tier and stays unset in JSON.
  Expected<AnalysisSpec> Unset = AnalysisSpec::parse(
      R"({"task": "boundary", "module": {"builtin": "fig2"}})");
  ASSERT_TRUE(Unset.hasValue()) << Unset.error();
  EXPECT_TRUE(Unset->Search.Engine.empty());
  EXPECT_EQ(Unset->Search.engineKind(), vm::EngineKind::VM);
  EXPECT_EQ(Unset->toJsonText().find("\"engine\""), std::string::npos);

  // All three tier spellings parse ("jit" on every platform — hosts
  // without the native tier degrade at factory time, not parse time).
  for (const char *Name : {"interp", "vm", "jit"}) {
    Expected<AnalysisSpec> Ok = AnalysisSpec::parse(
        std::string(R"({"task": "boundary", "module": {"builtin": "fig2"},
                        "search": {"engine": ")") +
        Name + R"("}})");
    ASSERT_TRUE(Ok.hasValue()) << Name << ": " << Ok.error();
    EXPECT_EQ(Ok->Search.Engine, Name);
  }

  // Unknown values are strict validation errors, not silent defaults,
  // and the message lists the valid names.
  Expected<AnalysisSpec> Bad = AnalysisSpec::parse(
      R"({"task": "boundary", "module": {"builtin": "fig2"},
          "search": {"engine": "llvm"}})");
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_NE(Bad.error().find("engine"), std::string::npos);
  EXPECT_NE(Bad.error().find("'jit'"), std::string::npos);

  // Wrong type is an error too.
  EXPECT_FALSE(AnalysisSpec::parse(
                   R"({"task": "boundary", "module": {"builtin": "fig2"},
                       "search": {"engine": 3}})")
                   .hasValue());

  // Programmatically built specs (which bypass the JSON parser) hit the
  // same strict validation inside the Analyzer.
  AnalysisSpec Direct;
  Direct.Task = TaskKind::Boundary;
  Direct.Module = ModuleSource::builtin("fig2");
  Direct.Search.Engine = "native";
  Expected<Report> R = Analyzer::analyze(Direct);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.error().find("engine"), std::string::npos);
}

TEST(SpecTest, UnsetSearchFieldsStayUnset) {
  Expected<AnalysisSpec> Spec = AnalysisSpec::parse(
      R"({"task": "boundary", "module": {"builtin": "fig2"},
          "search": {"seed": 7}})");
  ASSERT_TRUE(Spec.hasValue()) << Spec.error();
  EXPECT_TRUE(Spec->Search.Seed.has_value());
  EXPECT_FALSE(Spec->Search.MaxEvals.has_value());
  EXPECT_FALSE(Spec->Search.Starts.has_value());
  EXPECT_FALSE(Spec->Search.Threads.has_value());
}

TEST(SpecTest, ErrorPaths) {
  // Unknown task.
  auto R1 = AnalysisSpec::parse(
      R"({"task": "frobnicate", "module": {"builtin": "fig2"}})");
  ASSERT_FALSE(R1.hasValue());
  EXPECT_NE(R1.error().find("unknown task"), std::string::npos);

  // Malformed JSON.
  EXPECT_FALSE(AnalysisSpec::parse("{\"task\": ").hasValue());

  // Missing module for a module-needing task.
  EXPECT_FALSE(AnalysisSpec::parse(R"({"task": "boundary"})").hasValue());

  // fpsat requires a constraint.
  EXPECT_FALSE(AnalysisSpec::parse(R"({"task": "fpsat"})").hasValue());

  // path requires legs.
  EXPECT_FALSE(AnalysisSpec::parse(
                   R"({"task": "path", "module": {"builtin": "fig1a"}})")
                   .hasValue());

  // Bad enum vocabulary.
  EXPECT_FALSE(
      AnalysisSpec::parse(
          R"({"task": "boundary", "module": {"builtin": "fig2"},
              "boundary_form": "quadratic"})")
          .hasValue());
}

TEST(SpecTest, AnalyzerRejectsBadSpecs) {
  // Unknown builtin.
  AnalysisSpec Spec;
  Spec.Task = TaskKind::Boundary;
  Spec.Module = ModuleSource::builtin("no_such_subject");
  EXPECT_FALSE(Analyzer::analyze(Spec).hasValue());

  // Unknown function in a parsed module.
  Spec.Module = ModuleSource::inlineText(QuickstartIr);
  Spec.Function = "missing";
  EXPECT_FALSE(Analyzer::analyze(Spec).hasValue());

  // Unknown backend name.
  Spec.Function.clear();
  Spec.Search.Backends = {"gradient_descent"};
  Expected<Report> R = Analyzer::analyze(Spec);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.error().find("unknown backend"), std::string::npos);

  // Unreadable module file.
  AnalysisSpec FileSpec;
  FileSpec.Task = TaskKind::Boundary;
  FileSpec.Module = ModuleSource::file("/nonexistent/path.wir");
  EXPECT_FALSE(Analyzer::analyze(FileSpec).hasValue());

  // Module parse error.
  AnalysisSpec BadIr;
  BadIr.Task = TaskKind::Boundary;
  BadIr.Module = ModuleSource::inlineText("not ir at all");
  EXPECT_FALSE(Analyzer::analyze(BadIr).hasValue());

  // Path leg out of range.
  AnalysisSpec PathSpec;
  PathSpec.Task = TaskKind::Path;
  PathSpec.Module = ModuleSource::inlineText(QuickstartIr);
  PathSpec.Path = {{99, true}};
  EXPECT_FALSE(Analyzer::analyze(PathSpec).hasValue());

  // Inconsistency needs result slots.
  AnalysisSpec Inc;
  Inc.Task = TaskKind::Inconsistency;
  Inc.Module = ModuleSource::inlineText(QuickstartIr);
  EXPECT_FALSE(Analyzer::analyze(Inc).hasValue());
}

TEST(RegistryTest, AllSixTasksRegistered) {
  registerBuiltinTasks();
  for (TaskKind K :
       {TaskKind::Boundary, TaskKind::Path, TaskKind::Coverage,
        TaskKind::Overflow, TaskKind::Inconsistency, TaskKind::FpSat})
    EXPECT_TRUE(static_cast<bool>(findTask(K))) << taskKindName(K);
}

TEST(BackendsTest, EveryNameConstructs) {
  for (const std::string &Name : backendNames()) {
    auto B = makeBackend(Name);
    ASSERT_TRUE(B.hasValue()) << Name;
    EXPECT_NE(*B, nullptr);
  }
  EXPECT_FALSE(makeBackend("simulated_annealing").hasValue());
}

TEST(SubjectsTest, EveryBuiltinBuilds) {
  for (const BuiltinInfo &Info : builtinSubjects()) {
    ir::Module M;
    auto Sub = buildBuiltinSubject(M, Info.Name);
    ASSERT_TRUE(Sub.hasValue()) << Info.Name;
    ASSERT_NE(Sub->F, nullptr) << Info.Name;
    EXPECT_EQ(Sub->F->name(), Info.Function) << Info.Name;
  }
}

//===----------------------------------------------------------------------===//
// Analyzer-vs-direct-class equivalence
//===----------------------------------------------------------------------===//

TEST(EquivalenceTest, BoundaryMatchesDirectOnQuickstart) {
  // Direct fine-grained path.
  auto Parsed = ir::parseModule(QuickstartIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  analyses::BoundaryAnalysis BVA(M, *M.functionByName("prog"));
  opt::BasinHopping Backend;
  core::ReductionOptions Opts;
  Opts.Seed = 2019;
  Opts.MaxEvals = 40'000;
  core::ReductionResult Direct = BVA.findOne(Backend, Opts);
  ASSERT_TRUE(Direct.Found);

  // Declarative path with the same knobs.
  AnalysisSpec Spec;
  Spec.Task = TaskKind::Boundary;
  Spec.Module = ModuleSource::inlineText(QuickstartIr);
  Spec.Search.Seed = 2019;
  Spec.Search.MaxEvals = 40'000;
  Expected<Report> R = Analyzer::analyze(Spec);
  ASSERT_TRUE(R.hasValue()) << R.error();

  ASSERT_TRUE(R->Success);
  const Finding *F = R->first("boundary");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Input, Direct.Witness);
  EXPECT_EQ(R->Evals, Direct.Evals);
  EXPECT_EQ(R->StartsUsed, Direct.StartsUsed);
  EXPECT_EQ(R->UnsoundCandidates, Direct.UnsoundCandidates);
}

TEST(EquivalenceTest, OverflowMatchesDirectOnBessel) {
  // Direct fine-grained path on the GSL Bessel model.
  analyses::OverflowDetector::Options DirectOpts;
  DirectOpts.Seed = 0xbe55;
  DirectOpts.EvalsPerRound = 3'000;
  DirectOpts.StartsPerRound = 2;
  analyses::OverflowReport Direct = [&] {
    ir::Module M;
    gsl::SfFunction Bessel = gsl::buildBesselKnuScaledAsympx(M);
    analyses::OverflowDetector Det(M, *Bessel.F);
    return Det.run(DirectOpts);
  }();

  // Declarative path with the same knobs.
  AnalysisSpec Spec;
  Spec.Task = TaskKind::Overflow;
  Spec.Module = ModuleSource::builtin("bessel");
  Spec.Search.Seed = 0xbe55;
  Spec.Search.MaxEvals = 3'000; // per-round budget for Algorithm 3
  Spec.Search.Starts = 2;
  Expected<Report> R = Analyzer::analyze(Spec);
  ASSERT_TRUE(R.hasValue()) << R.error();

  // Same findings count, same per-site witnesses, same eval total.
  EXPECT_EQ(R->Extra.find("num_ops")->asUint(), Direct.NumOps);
  EXPECT_EQ(R->Extra.find("num_overflows")->asUint(),
            Direct.numOverflows());
  EXPECT_EQ(R->Evals, Direct.Evals);
  std::vector<const analyses::OverflowFinding *> Found;
  for (const analyses::OverflowFinding &F : Direct.Findings)
    if (F.Found)
      Found.push_back(&F);
  ASSERT_EQ(R->count("overflow"), Found.size());
  size_t I = 0;
  for (const Finding &F : R->Findings) {
    if (F.Kind != "overflow")
      continue;
    EXPECT_EQ(F.SiteId, Found[I]->SiteId);
    EXPECT_EQ(F.Input, Found[I]->Input);
    ++I;
  }
}

TEST(EquivalenceTest, NfpLimitsRounds) {
  AnalysisSpec Spec;
  Spec.Task = TaskKind::Overflow;
  Spec.Module = ModuleSource::builtin("bessel");
  Spec.Search.Seed = 0xbe55;
  Spec.Search.MaxEvals = 2'000;
  Spec.NFP = 3; // At most 3 Algorithm 3 rounds -> at most 3 findings.
  Expected<Report> R = Analyzer::analyze(Spec);
  ASSERT_TRUE(R.hasValue()) << R.error();
  EXPECT_LE(R->count("overflow"), 3u);
}

TEST(EquivalenceTest, EnginesProduceIdenticalReports) {
  // The compiled tier's bar: engine=vm and engine=interp agree
  // bit-for-bit through the whole declarative pipeline.
  auto Run = [&](const char *Engine) {
    AnalysisSpec Spec;
    Spec.Task = TaskKind::Boundary;
    Spec.Module = ModuleSource::inlineText(QuickstartIr);
    Spec.Search.Seed = 2019;
    Spec.Search.MaxEvals = 40'000;
    Spec.Search.Engine = Engine;
    Expected<Report> R = Analyzer::analyze(Spec);
    if (!R.hasValue()) {
      ADD_FAILURE() << R.error();
      return Report{};
    }
    return R.take();
  };
  Report RV = Run("vm");
  Report RI = Run("interp");

  EXPECT_EQ(RV.Engine, "vm");
  EXPECT_TRUE(RV.EngineFallback.empty()) << RV.EngineFallback;
  EXPECT_EQ(RI.Engine, "interp");

  ASSERT_EQ(RV.Success, RI.Success);
  ASSERT_EQ(RV.Findings.size(), RI.Findings.size());
  for (size_t K = 0; K < RV.Findings.size(); ++K) {
    EXPECT_EQ(RV.Findings[K].Input, RI.Findings[K].Input);
    EXPECT_EQ(RV.Findings[K].SiteId, RI.Findings[K].SiteId);
  }
  EXPECT_EQ(RV.Evals, RI.Evals);
  EXPECT_EQ(RV.StartsUsed, RI.StartsUsed);
  EXPECT_EQ(RV.UnsoundCandidates, RI.UnsoundCandidates);

  // An unset engine is the vm default.
  AnalysisSpec Default;
  Default.Task = TaskKind::Boundary;
  Default.Module = ModuleSource::inlineText(QuickstartIr);
  Default.Search.Seed = 2019;
  Default.Search.MaxEvals = 40'000;
  Expected<Report> RD = Analyzer::analyze(Default);
  ASSERT_TRUE(RD.hasValue()) << RD.error();
  EXPECT_EQ(RD->Engine, "vm");
  EXPECT_EQ(RD->Evals, RV.Evals);
}

TEST(EquivalenceTest, FpSatReportsNativeEngine) {
  AnalysisSpec Spec;
  Spec.Task = TaskKind::FpSat;
  Spec.Constraint = "(= x 1.5)";
  Spec.Search.Seed = 7;
  Spec.Search.MaxEvals = 20'000;
  Spec.Search.Engine = "vm"; // Accepted, but fpsat is native code.
  Expected<Report> R = Analyzer::analyze(Spec);
  ASSERT_TRUE(R.hasValue()) << R.error();
  EXPECT_EQ(R->Engine, "native");
}

//===----------------------------------------------------------------------===//
// Report serialization
//===----------------------------------------------------------------------===//

TEST(ReportTest, JsonSerializesAndParses) {
  AnalysisSpec Spec;
  Spec.Task = TaskKind::Coverage;
  Spec.Module = ModuleSource::builtin("classifier");
  Spec.Search.Seed = 0xc0;
  Spec.Search.MaxEvals = 30'000;
  Expected<Report> R = Analyzer::analyze(Spec);
  ASSERT_TRUE(R.hasValue()) << R.error();

  auto Doc = json::Value::parse(R->toJsonText());
  ASSERT_TRUE(Doc.hasValue()) << Doc.error();
  EXPECT_EQ(Doc->find("task")->asString(), "coverage");
  EXPECT_EQ(Doc->find("function")->asString(), "classifier");
  EXPECT_EQ(Doc->find("success")->asBool(), R->Success);
  EXPECT_EQ(Doc->find("findings")->size(), R->Findings.size());
  EXPECT_EQ(Doc->find("evals")->asUint(), R->Evals);
  ASSERT_NE(Doc->find("engine"), nullptr);
  EXPECT_EQ(Doc->find("engine")->asString(), "vm");
  EXPECT_EQ(Doc->find("extra")->find("total")->asUint(),
            R->Extra.find("total")->asUint());
}

//===----------------------------------------------------------------------===//
// Static pre-pass: spec field, report section, findings identity
//===----------------------------------------------------------------------===//

TEST(SpecTest, PruneFieldDefaultsAndValidation) {
  // Unset prune means no pre-pass and stays unset in JSON.
  Expected<AnalysisSpec> Unset = AnalysisSpec::parse(
      R"({"task": "boundary", "module": {"builtin": "fig2"}})");
  ASSERT_TRUE(Unset.hasValue()) << Unset.error();
  EXPECT_TRUE(Unset->Search.Prune.empty());
  EXPECT_EQ(Unset->Search.pruneMode(), PruneMode::Off);
  EXPECT_EQ(Unset->toJsonText().find("\"prune\""), std::string::npos);

  // All three spellings parse and resolve.
  const std::pair<const char *, PruneMode> Modes[] = {
      {"off", PruneMode::Off},
      {"sites", PruneMode::Sites},
      {"sites+box", PruneMode::SitesBox},
  };
  for (const auto &[Name, Mode] : Modes) {
    Expected<AnalysisSpec> Ok = AnalysisSpec::parse(
        std::string(R"({"task": "boundary", "module": {"builtin": "fig2"},
                        "search": {"prune": ")") +
        Name + R"("}})");
    ASSERT_TRUE(Ok.hasValue()) << Name << ": " << Ok.error();
    EXPECT_EQ(Ok->Search.Prune, Name);
    EXPECT_EQ(Ok->Search.pruneMode(), Mode);
  }

  // Unknown values are strict validation errors listing the names.
  Expected<AnalysisSpec> Bad = AnalysisSpec::parse(
      R"({"task": "boundary", "module": {"builtin": "fig2"},
          "search": {"prune": "aggressive"}})");
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_NE(Bad.error().find("prune"), std::string::npos);
  EXPECT_NE(Bad.error().find("sites+box"), std::string::npos);

  // Wrong type is an error too.
  EXPECT_FALSE(AnalysisSpec::parse(
                   R"({"task": "boundary", "module": {"builtin": "fig2"},
                       "search": {"prune": true}})")
                   .hasValue());

  // Programmatically built specs hit the same validation in the
  // Analyzer, like the engine field.
  AnalysisSpec Direct;
  Direct.Task = TaskKind::Boundary;
  Direct.Module = ModuleSource::builtin("fig2");
  Direct.Search.Prune = "boxes";
  Expected<Report> R = Analyzer::analyze(Direct);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.error().find("prune"), std::string::npos);
}

TEST(SpecTest, AnalyzerVerifiesParsedModules) {
  // The parser accepts this shape (%v is in scope by parse order), but
  // its definition does not dominate the use — the Analyzer must run
  // ir::verifyModule and reject it as a spec error instead of letting
  // downstream passes trip over it.
  AnalysisSpec Spec;
  Spec.Task = TaskKind::Boundary;
  Spec.Module = ModuleSource::inlineText(R"(
module "bad"
func @f(%x: double) -> double {
entry:
  %c = fcmp.lt %x, 0.0
  condbr %c, a, join
a:
  %v = fadd %x, 1.0
  br join
join:
  ret %v
}
)");
  Spec.Function = "f";
  Expected<Report> R = Analyzer::analyze(Spec);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.error().find("verification"), std::string::npos)
      << R.error();

  // A well-formed inline module still analyzes.
  Spec.Module = ModuleSource::inlineText(R"(
module "good"
func @f(%x: double) -> double {
entry:
  %y = fmul %x, %x
  ret %y
}
)");
  Spec.Search.MaxEvals = 200;
  Expected<Report> Ok = Analyzer::analyze(Spec);
  EXPECT_TRUE(Ok.hasValue()) << Ok.error();
}

TEST(ReportTest, StaticSectionRoundTrip) {
  AnalysisSpec Spec;
  Spec.Task = TaskKind::Overflow;
  Spec.Module = ModuleSource::builtin("bessel");
  Spec.Search.Seed = 0x5a;
  Spec.Search.MaxEvals = 3000;
  Spec.Search.Prune = "sites+box";
  Expected<Report> R = Analyzer::analyze(Spec);
  ASSERT_TRUE(R.hasValue()) << R.error();
  ASSERT_TRUE(R->Static.Ran);
  EXPECT_EQ(R->Static.Mode, "sites+box");
  EXPECT_GT(R->Static.SitesTotal, 0u);

  // toJson -> fromJson -> toJson is byte-identical, section included.
  std::string Text = R->toJsonText();
  Expected<Report> Back = Report::parse(Text);
  ASSERT_TRUE(Back.hasValue()) << Back.error();
  EXPECT_TRUE(Back->Static.Ran);
  EXPECT_EQ(Back->Static.Mode, R->Static.Mode);
  EXPECT_EQ(Back->Static.SitesTotal, R->Static.SitesTotal);
  EXPECT_EQ(Back->Static.SitesPruned, R->Static.SitesPruned);
  EXPECT_EQ(Back->Static.SitesProvedSafe, R->Static.SitesProvedSafe);
  EXPECT_EQ(Back->Static.BoxShrunk, R->Static.BoxShrunk);
  EXPECT_EQ(Back->Static.Items.size(), R->Static.Items.size());
  EXPECT_EQ(Back->toJsonText(), Text);

  // The deterministic form strips the pre-pass wall clock (and only it).
  auto Doc = json::Value::parse(Text);
  ASSERT_TRUE(Doc.hasValue());
  json::Value Det = deterministicReportJson(*Doc);
  const json::Value *St = Det.find("static");
  ASSERT_NE(St, nullptr);
  EXPECT_EQ(St->find("seconds"), nullptr);
  EXPECT_NE(St->find("mode"), nullptr);
}

TEST(ReportTest, StaticSectionAbsentFromOlderLogs) {
  // Reports serialized before the pre-pass existed (or with prune off)
  // have no "static" key: they parse with Ran == false and re-serialize
  // without the section.
  AnalysisSpec Spec;
  Spec.Task = TaskKind::Boundary;
  Spec.Module = ModuleSource::builtin("fig2");
  Spec.Search.Seed = 1;
  Spec.Search.MaxEvals = 2000;
  Expected<Report> R = Analyzer::analyze(Spec);
  ASSERT_TRUE(R.hasValue()) << R.error();
  EXPECT_FALSE(R->Static.Ran);
  std::string Text = R->toJsonText();
  EXPECT_EQ(Text.find("\"static\""), std::string::npos);
  Expected<Report> Back = Report::parse(Text);
  ASSERT_TRUE(Back.hasValue()) << Back.error();
  EXPECT_FALSE(Back->Static.Ran);
  EXPECT_EQ(Back->toJsonText(), Text);
}

TEST(EquivalenceTest, PruneModesPreserveFindings) {
  // The pre-pass only redirects the eval budget; the set of (kind, site)
  // findings must be identical across prune modes.
  auto SiteSet = [](const Report &R) {
    std::set<std::pair<std::string, int>> S;
    for (const Finding &F : R.Findings)
      S.insert({F.Kind, F.SiteId});
    return S;
  };
  for (const char *Builtin : {"bessel", "fig2"}) {
    AnalysisSpec Spec;
    Spec.Task = TaskKind::Overflow;
    Spec.Module = ModuleSource::builtin(Builtin);
    Spec.Search.Seed = 0xf1;
    Spec.Search.MaxEvals = 4000;
    Spec.Search.Prune = "off";
    Expected<Report> Off = Analyzer::analyze(Spec);
    ASSERT_TRUE(Off.hasValue()) << Off.error();
    Spec.Search.Prune = "sites+box";
    Expected<Report> On = Analyzer::analyze(Spec);
    ASSERT_TRUE(On.hasValue()) << On.error();
    EXPECT_EQ(SiteSet(*Off), SiteSet(*On)) << Builtin;
    // Every dropped site is a proof: it must not appear among the
    // prune-off findings either.
    for (const StaticItem &It : On->Static.Items)
      for (const Finding &F : Off->Findings)
        EXPECT_NE(F.SiteId, It.SiteId) << Builtin << ": proved-safe site "
                                       << It.SiteId << " fired";
  }
}

} // namespace
