//===--- BatchEvalTests.cpp - Batched evaluation equivalence ----------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
// The batching contract is *bit-for-bit* scalar equivalence: pushing
// candidate blocks through Objective::evalBatch / the execution tiers'
// batch modes must leave every observable — numEvals, the recorder
// stream, best-so-far bits, the winning start, branch traces — exactly
// where a scalar evaluation loop would have left it, at every block size
// and at every budget/target clip boundary. Superinstruction fusion
// carries the same bar (identical values *and* identical step accounting,
// including partial step-limit crossings inside a fused triple).
//
//===----------------------------------------------------------------------===//

#include "analyses/BoundaryAnalysis.h"
#include "instrument/IRWeakDistance.h"
#include "instrument/Observers.h"
#include "ir/Parser.h"
#include "opt/BasinHopping.h"
#include "opt/DifferentialEvolution.h"
#include "opt/NelderMead.h"
#include "opt/Powell.h"
#include "opt/RandomSearch.h"
#include "opt/UlpSearch.h"
#include "support/FPUtils.h"
#include "support/RNG.h"
#include "vm/Lowering.h"
#include "vm/Machine.h"
#include "vm/VMWeakDistance.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

using namespace wdm;

namespace {

//===----------------------------------------------------------------------===//
// Objective::evalBatch bookkeeping
//===----------------------------------------------------------------------===//

double rosen1d(double X) { return std::fabs(X - 3.0) + 0.25; }

TEST(ObjectiveBatchTest, BudgetClipsExactlyLikeScalar) {
  // 10-eval budget, pushed as 7 + 7: the second block must clip to 3.
  std::vector<double> Xs(14), Fs(14);
  for (int I = 0; I < 14; ++I)
    Xs[I] = static_cast<double>(I);

  opt::Objective Batched(
      [](const std::vector<double> &X) { return rosen1d(X[0]); }, 1);
  Batched.MaxEvals = 10;
  EXPECT_EQ(Batched.evalBatch(Xs.data(), 7, Fs.data()), 7u);
  EXPECT_EQ(Batched.evalBatch(Xs.data() + 7, 7, Fs.data() + 7), 3u);
  EXPECT_EQ(Batched.evalBatch(Xs.data(), 7, Fs.data()), 0u);
  EXPECT_EQ(Batched.numEvals(), 10u);

  opt::Objective Scalar(
      [](const std::vector<double> &X) { return rosen1d(X[0]); }, 1);
  Scalar.MaxEvals = 10;
  for (int I = 0; I < 14 && !Scalar.done(); ++I)
    Scalar.eval({Xs[I]});
  EXPECT_EQ(Scalar.numEvals(), Batched.numEvals());
  EXPECT_EQ(bitsOf(Scalar.bestF()), bitsOf(Batched.bestF()));
  EXPECT_EQ(Scalar.bestX(), Batched.bestX());
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(bitsOf(Fs[I]), bitsOf(rosen1d(Xs[I]))) << I;
}

TEST(ObjectiveBatchTest, TargetStopsMidBatchWithBatchFn) {
  // Candidate 4 hits the target: the block is computed whole (that is
  // the batch tier's nature) but only candidates 0..4 may count.
  auto F = [](double X) { return X == 4.0 ? 0.0 : 1.0 + X; };
  std::vector<double> Xs(8), Vals(8);
  for (int I = 0; I < 8; ++I)
    Xs[I] = static_cast<double>(I);

  unsigned RawCalls = 0;
  opt::VectorRecorder Rec;
  opt::Objective Obj(
      [&](const std::vector<double> &X) { return F(X[0]); }, 1);
  Obj.setBatchFn([&](const double *Block, std::size_t K, double *Out) {
    ++RawCalls;
    for (std::size_t I = 0; I < K; ++I)
      Out[I] = F(Block[I]);
  });
  Obj.setRecorder(&Rec);
  EXPECT_EQ(Obj.evalBatch(Xs.data(), 8, Vals.data()), 5u);
  EXPECT_EQ(RawCalls, 1u);
  EXPECT_EQ(Obj.numEvals(), 5u);
  EXPECT_TRUE(Obj.reachedTarget());
  EXPECT_EQ(Obj.bestX()[0], 4.0);
  // The recorder saw exactly the consumed prefix, in order.
  ASSERT_EQ(Rec.Samples.size(), 5u);
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(Rec.Samples[I].X[0], Xs[I]);
  // Once done, further batches are rejected outright.
  EXPECT_EQ(Obj.evalBatch(Xs.data(), 8, Vals.data()), 0u);
}

TEST(ObjectiveBatchTest, NanLanesMapToInf) {
  opt::Objective Obj(
      [](const std::vector<double> &X) {
        return X[0] < 0 ? std::nan("") : X[0];
      },
      1);
  double Xs[3] = {-1.0, 2.0, -5.0};
  double Fs[3];
  EXPECT_EQ(Obj.evalBatch(Xs, 3, Fs), 3u);
  EXPECT_TRUE(std::isinf(Fs[0]));
  EXPECT_EQ(Fs[1], 2.0);
  EXPECT_TRUE(std::isinf(Fs[2]));
  EXPECT_EQ(Obj.bestF(), 2.0);
}

//===----------------------------------------------------------------------===//
// Backend block-size invariance
//===----------------------------------------------------------------------===//

/// A rugged 2-D objective with exact zeros, shared by the invariance
/// sweep. The BatchFn twin lets the test prove that installing a raw
/// batch evaluator changes nothing either.
double rugged(const double *X) {
  return std::fabs(X[0] - 1.25) * std::fabs(X[1] + 2.0) +
         0.125 * std::fabs(std::sin(X[0] * 3.0));
}

opt::MinimizeResult runBackend(opt::Optimizer &Backend, unsigned Batch,
                               bool WithBatchFn, opt::LocalMethod Local) {
  opt::Objective Obj(
      [](const std::vector<double> &X) { return rugged(X.data()); }, 2);
  Obj.MaxEvals = 4'000;
  if (WithBatchFn)
    Obj.setBatchFn([](const double *Xs, std::size_t K, double *Fs) {
      for (std::size_t I = 0; I < K; ++I)
        Fs[I] = rugged(Xs + 2 * I);
    });
  RNG Rand(0xbea7);
  opt::MinimizeOptions Opts;
  Opts.Batch = Batch;
  Opts.Local = Local;
  Opts.Lo = -50.0;
  Opts.Hi = 50.0;
  return Backend.minimize(Obj, {30.0, -40.0}, Rand, Opts);
}

TEST(BackendBatchInvarianceTest, AllBackendsBitIdenticalAcrossBlockSizes) {
  std::unique_ptr<opt::Optimizer> Backends[] = {
      std::make_unique<opt::BasinHopping>(),
      std::make_unique<opt::DifferentialEvolution>(),
      std::make_unique<opt::RandomSearch>(),
      std::make_unique<opt::NelderMead>(),
      std::make_unique<opt::Powell>(),
      std::make_unique<opt::UlpPatternSearch>(),
  };
  for (auto &Backend : Backends) {
    for (opt::LocalMethod Local :
         {opt::LocalMethod::UlpPatternSearch, opt::LocalMethod::None}) {
      opt::MinimizeResult Ref =
          runBackend(*Backend, 1, /*WithBatchFn=*/false, Local);
      for (unsigned Batch : {1u, 7u, 32u}) {
        for (bool WithBatchFn : {false, true}) {
          opt::MinimizeResult R =
              runBackend(*Backend, Batch, WithBatchFn, Local);
          std::string Ctx = std::string(Backend->name()) + " batch " +
                            std::to_string(Batch) +
                            (WithBatchFn ? " fn" : " loop");
          EXPECT_EQ(Ref.Evals, R.Evals) << Ctx;
          EXPECT_EQ(bitsOf(Ref.F), bitsOf(R.F)) << Ctx;
          ASSERT_EQ(Ref.X.size(), R.X.size()) << Ctx;
          for (size_t I = 0; I < Ref.X.size(); ++I)
            EXPECT_EQ(bitsOf(Ref.X[I]), bitsOf(R.X[I])) << Ctx;
          EXPECT_EQ(Ref.ReachedTarget, R.ReachedTarget) << Ctx;
        }
      }
    }
  }
}

TEST(BackendBatchInvarianceTest, DEStillSolvesSphereBatched) {
  for (unsigned Batch : {1u, 32u}) {
    opt::Objective Obj(
        [](const std::vector<double> &X) {
          return X[0] * X[0] + X[1] * X[1];
        },
        2);
    Obj.MaxEvals = 30'000;
    opt::DifferentialEvolution DE;
    RNG Rand(8);
    opt::MinimizeOptions Opts;
    Opts.Lo = -10.0;
    Opts.Hi = 10.0;
    Opts.StopAtTarget = false;
    Opts.Batch = Batch;
    opt::MinimizeResult MR = DE.minimize(Obj, {5.0, 5.0}, Rand, Opts);
    EXPECT_LT(MR.F, 1e-10) << "batch " << Batch;
  }
}

//===----------------------------------------------------------------------===//
// VM batch mode vs scalar, including fusion
//===----------------------------------------------------------------------===//

/// Branches, fusible read-modify-write triples on the accumulator, and a
/// call whose callee branches per lane — the constructs that force the
/// lockstep tier through each of its escape hatches.
const char *BatchSubjectIr = R"(
module "batchsubject"
global @w: double = 0.0
func @helper(%a: double) -> double {
entry:
  %c = fcmp.lt %a, 10.0
  condbr %c, small, big
small:
  %r1 = fmul %a, 2.0
  ret %r1
big:
  %r2 = fadd %a, 1.0
  ret %r2
}
func @acc(%x: double, %y: double) -> double {
entry:
  %t0 = loadg @w
  %s0 = fadd %t0, %x
  storeg @w, %s0
  %h = call @helper(%x)
  %c = fcmp.lt %x, %y
  condbr %c, lo, hi
lo:
  %t1 = loadg @w
  %m1 = fmul %t1, %y
  storeg @w, %m1
  br done
hi:
  %t2 = loadg @w
  %m2 = fmin %t2, %h
  storeg @w, %m2
  br done
done:
  %r = loadg @w
  ret %r
}
)";

unsigned countFused(const vm::CompiledFunction &CF) {
  unsigned N = 0;
  for (const vm::Inst &I : CF.Code)
    N += I.Opc == vm::Op::FusedGRmwD;
  return N;
}

TEST(SuperinstructionTest, LoweringFusesTheRmwIdiom) {
  auto Parsed = ir::parseModule(BatchSubjectIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  vm::CompiledModule Fused = vm::compile(M);
  const vm::CompiledFunction *CF = Fused.lookup(M.functionByName("acc"));
  ASSERT_NE(CF, nullptr);
  ASSERT_TRUE(CF->Ok);
  EXPECT_EQ(countFused(*CF), 3u); // fadd, fmul, fmin triples

  vm::Limits NoFuse;
  NoFuse.Fuse = false;
  vm::CompiledModule Plain = vm::compile(M, NoFuse);
  EXPECT_EQ(countFused(*Plain.lookup(M.functionByName("acc"))), 0u);

  // The boundary pass's Min form emits the idiom too — the
  // instrumentation this satellite exists for.
  instr::BoundaryInstrumentation BI = instr::instrumentBoundary(
      *M.functionByName("helper"), instr::BoundaryForm::Min);
  vm::CompiledModule Instr = vm::compile(M);
  EXPECT_GT(countFused(*Instr.lookup(BI.Wrapped)), 0u);
}

unsigned countFusedCmpBr(const vm::CompiledFunction &CF) {
  unsigned N = 0;
  for (const vm::Inst &I : CF.Code)
    N += I.Opc == vm::Op::FusedFCmpBr;
  return N;
}

TEST(SuperinstructionTest, LoweringFusesCompareBranchPairs) {
  auto Parsed = ir::parseModule(BatchSubjectIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  vm::CompiledModule Fused = vm::compile(M);
  // Each function ends its entry block with `fcmp; condbr` on the
  // compare's result — exactly the fusible pair.
  const vm::CompiledFunction *Acc = Fused.lookup(M.functionByName("acc"));
  const vm::CompiledFunction *Help =
      Fused.lookup(M.functionByName("helper"));
  ASSERT_TRUE(Acc && Acc->Ok && Help && Help->Ok);
  EXPECT_EQ(countFusedCmpBr(*Acc), 1u);
  EXPECT_EQ(countFusedCmpBr(*Help), 1u);

  vm::Limits NoFuse;
  NoFuse.Fuse = false;
  vm::CompiledModule Plain = vm::compile(M, NoFuse);
  EXPECT_EQ(countFusedCmpBr(*Plain.lookup(M.functionByName("acc"))), 0u);
  EXPECT_EQ(countFusedCmpBr(*Plain.lookup(M.functionByName("helper"))),
            0u);
}

TEST(SuperinstructionTest, FusedCompareBranchKeepsTraceAndAccounting) {
  // The fused pair must charge exactly two steps (compare, then branch,
  // each checked at its own virtual boundary) and fire the observer only
  // once the branch step fits — bit-identical to the unfused pair and
  // the interpreter at every budget crossing the pair.
  auto Parsed = ir::parseModule(BatchSubjectIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  const ir::Function *Acc = M.functionByName("acc");

  exec::Engine E(M);
  vm::CompiledModule Fused = vm::compile(M);
  vm::Limits NoFuse;
  NoFuse.Fuse = false;
  vm::CompiledModule Plain = vm::compile(M, NoFuse);
  ASSERT_GT(countFusedCmpBr(*Fused.lookup(Acc)), 0u);
  vm::Machine MF(Fused), MP(Plain);

  RNG Rand(0xcb5);
  for (unsigned K = 0; K < 60; ++K) {
    std::vector<exec::RTValue> Args = {
        exec::RTValue::ofDouble(Rand.uniform(-20.0, 20.0)),
        exec::RTValue::ofDouble(Rand.uniform(-20.0, 20.0))};
    for (uint64_t MaxSteps : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull, 7ull,
                              8ull, 9ull, 12ull, 2'000'000ull}) {
      exec::ExecOptions Opts;
      Opts.MaxSteps = MaxSteps;
      exec::ExecContext CI(M), CF2(M), CP(M);
      instr::BranchTraceObserver OI, OF, OP;
      CI.setObserver(&OI);
      CF2.setObserver(&OF);
      CP.setObserver(&OP);
      exec::ExecResult RI = E.run(Acc, Args, CI, Opts);
      exec::ExecResult RF = MF.run(*Fused.lookup(Acc), Args, CF2, Opts);
      exec::ExecResult RP = MP.run(*Plain.lookup(Acc), Args, CP, Opts);
      std::string Ctx = "steps " + std::to_string(MaxSteps);
      EXPECT_EQ(static_cast<int>(RI.Kind), static_cast<int>(RF.Kind))
          << Ctx;
      EXPECT_EQ(static_cast<int>(RI.Kind), static_cast<int>(RP.Kind))
          << Ctx;
      EXPECT_EQ(RI.Steps, RF.Steps) << Ctx;
      EXPECT_EQ(RI.Steps, RP.Steps) << Ctx;
      ASSERT_EQ(OI.visits().size(), OF.visits().size()) << Ctx;
      ASSERT_EQ(OI.visits().size(), OP.visits().size()) << Ctx;
      for (size_t V = 0; V < OI.visits().size(); ++V) {
        EXPECT_EQ(OI.visits()[V].Branch, OF.visits()[V].Branch) << Ctx;
        EXPECT_EQ(OI.visits()[V].TakenTrue, OF.visits()[V].TakenTrue)
            << Ctx;
      }
    }
  }
}

TEST(SuperinstructionTest, FusedMatchesUnfusedAndInterpreterEverywhere) {
  auto Parsed = ir::parseModule(BatchSubjectIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  const ir::Function *Acc = M.functionByName("acc");

  exec::Engine E(M);
  vm::CompiledModule Fused = vm::compile(M);
  vm::Limits NoFuse;
  NoFuse.Fuse = false;
  vm::CompiledModule Plain = vm::compile(M, NoFuse);
  vm::Machine MF(Fused), MP(Plain);

  RNG Rand(0xf05e);
  for (unsigned K = 0; K < 200; ++K) {
    double X[2] = {Rand.uniform(-20.0, 20.0), Rand.uniform(-20.0, 20.0)};
    std::vector<exec::RTValue> Args = {exec::RTValue::ofDouble(X[0]),
                                       exec::RTValue::ofDouble(X[1])};
    // Sweep tight step budgets across the whole function so the limit
    // crosses *inside* fused triples too.
    for (uint64_t MaxSteps : {1ull, 2ull, 3ull, 4ull, 5ull, 7ull, 11ull,
                              16ull, 2'000'000ull}) {
      exec::ExecOptions Opts;
      Opts.MaxSteps = MaxSteps;
      exec::ExecContext CI(M), CF2(M), CP(M);
      exec::ExecResult RI = E.run(Acc, Args, CI, Opts);
      exec::ExecResult RF = MF.run(*Fused.lookup(Acc), Args, CF2, Opts);
      exec::ExecResult RP = MP.run(*Plain.lookup(Acc), Args, CP, Opts);
      std::string Ctx = "steps " + std::to_string(MaxSteps) + " input " +
                        std::to_string(X[0]);
      EXPECT_EQ(static_cast<int>(RI.Kind), static_cast<int>(RF.Kind))
          << Ctx;
      EXPECT_EQ(static_cast<int>(RI.Kind), static_cast<int>(RP.Kind))
          << Ctx;
      EXPECT_EQ(RI.Steps, RF.Steps) << Ctx;
      EXPECT_EQ(RI.Steps, RP.Steps) << Ctx;
      if (RI.ok()) {
        EXPECT_EQ(bitsOf(RI.ReturnValue.asDouble()),
                  bitsOf(RF.ReturnValue.asDouble()))
            << Ctx;
        EXPECT_EQ(bitsOf(RI.ReturnValue.asDouble()),
                  bitsOf(RP.ReturnValue.asDouble()))
            << Ctx;
      }
      EXPECT_EQ(bitsOf(CI.getGlobal(M.globalByName("w")).asDouble()),
                bitsOf(CF2.getGlobal(M.globalByName("w")).asDouble()))
          << Ctx;
    }
  }
}

/// Reference for runBatch: the scalar weak-distance driver, lane by lane.
vm::LaneOutcome scalarLane(vm::Machine &Mach, const vm::CompiledFunction &F,
                           const double *X, unsigned WIdx, double WInit,
                           exec::ExecContext &Ctx,
                           const exec::ExecOptions &Opts) {
  Ctx.resetGlobals();
  Ctx.globalSlots()[WIdx] = exec::RTValue::ofDouble(WInit);
  exec::ExecResult R = Mach.run(F, X, F.NumArgs, Ctx, Opts);
  vm::LaneOutcome Out;
  Out.Kind = R.Kind;
  Out.Steps = R.Steps;
  Out.Watched = R.Kind == exec::ExecResult::Outcome::StepLimitExceeded
                    ? 0
                    : Ctx.globalSlots()[WIdx].asDouble();
  return Out;
}

TEST(VMBatchTest, RunBatchMatchesScalarLaneByLane) {
  auto Parsed = ir::parseModule(BatchSubjectIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  const ir::Function *Acc = M.functionByName("acc");
  vm::CompiledModule CM = vm::compile(M);
  const vm::CompiledFunction *CF = CM.lookup(Acc);
  ASSERT_TRUE(CF->Ok);
  exec::ExecContext Ctx(M);
  const unsigned WIdx = Ctx.globalIndexOf(M.globalByName("w"));

  RNG Rand(0xba7c);
  for (uint64_t MaxSteps : {3ull, 9ull, 14ull, 2'000'000ull}) {
    exec::ExecOptions Opts;
    Opts.MaxSteps = MaxSteps;
    for (unsigned Trial = 0; Trial < 20; ++Trial) {
      const size_t K = 1 + Rand.below(40);
      std::vector<double> Xs(K * 2);
      for (double &V : Xs)
        V = Rand.chance(0.2) ? Rand.anyFiniteDouble()
                             : Rand.uniform(-30.0, 30.0);
      if (Rand.chance(0.3))
        Xs[0] = std::nan("");

      vm::Machine BatchMach(CM), ScalarMach(CM);
      std::vector<vm::LaneOutcome> Got(K);
      BatchMach.runBatch(*CF, Xs.data(), K, WIdx, 1.0, Ctx, Opts,
                         Got.data());
      for (size_t L = 0; L < K; ++L) {
        vm::LaneOutcome Want = scalarLane(ScalarMach, *CF,
                                          Xs.data() + 2 * L, WIdx, 1.0,
                                          Ctx, Opts);
        std::string Where = "steps " + std::to_string(MaxSteps) +
                            " lane " + std::to_string(L) + "/" +
                            std::to_string(K);
        EXPECT_EQ(static_cast<int>(Want.Kind),
                  static_cast<int>(Got[L].Kind))
            << Where;
        EXPECT_EQ(Want.Steps, Got[L].Steps) << Where;
        if (Want.Kind != exec::ExecResult::Outcome::StepLimitExceeded)
          EXPECT_EQ(bitsOf(Want.Watched), bitsOf(Got[L].Watched)) << Where;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Weak-distance tier parity
//===----------------------------------------------------------------------===//

const char *QuickstartIr = R"(
module "quickstart"
func @prog(%x: double) -> double {
entry:
  %xs = alloca double
  store %xs, %x
  %c1 = fcmp.le %x, 1.0
  condbr %c1, inc, mid
inc:
  %x1 = fadd %x, 1.0
  store %xs, %x1
  br mid
mid:
  %xv = load %xs
  %y = fmul %xv, %xv
  %c2 = fcmp.le %y, 4.0
  condbr %c2, dec, done
dec:
  %x2 = fsub %xv, 1.0
  store %xs, %x2
  br done
done:
  %r = load %xs
  ret %r
}
)";

TEST(TierBatchParityTest, VMAndInterpreterBatchesMatchScalarBits) {
  for (instr::BoundaryForm Form :
       {instr::BoundaryForm::Product, instr::BoundaryForm::Min}) {
    auto Parsed = ir::parseModule(QuickstartIr);
    ASSERT_TRUE(Parsed.hasValue());
    ir::Module &M = **Parsed;
    analyses::BoundaryAnalysis BVA(M, *M.functionByName("prog"), Form);
    ASSERT_EQ(BVA.executionTier().Effective, vm::EngineKind::VM);

    auto VMEval = BVA.factory().make();
    EXPECT_EQ(VMEval->preferredBatch(), 32u);

    RNG Rand(0xabc1);
    for (unsigned Trial = 0; Trial < 30; ++Trial) {
      const size_t K = 1 + Rand.below(33);
      std::vector<double> Xs(K), FsVM(K);
      for (double &V : Xs)
        V = Rand.chance(0.3) ? Rand.anyFiniteDouble()
                             : Rand.uniform(-10.0, 10.0);
      VMEval->evalBatch(Xs.data(), K, FsVM.data());
      for (size_t L = 0; L < K; ++L) {
        double WScalar = BVA.weak()({Xs[L]}); // interpreter, scalar
        EXPECT_EQ(bitsOf(WScalar), bitsOf(FsVM[L]))
            << "lane " << L << " x " << Xs[L];
      }
      // The interpreter's own batch fallback agrees too.
      std::vector<double> FsInterp(K);
      BVA.weak().evalBatch(Xs.data(), K, FsInterp.data());
      for (size_t L = 0; L < K; ++L)
        EXPECT_EQ(bitsOf(FsInterp[L]), bitsOf(FsVM[L])) << L;
    }
  }
}

//===----------------------------------------------------------------------===//
// Search-level invariance: block size never changes the answer
//===----------------------------------------------------------------------===//

/// Boundary subjects for the search-level sweep. @hit's comparison
/// `floor(x) == 7` is exactly satisfiable on the whole interval [7, 8) —
/// positive measure, so the population backend genuinely reaches a
/// verified zero and the early-stop clips batches mid-block. @miss's
/// `floor(x) == 200` is unreachable inside the sampling box, so the
/// budget runs dry and the per-start slices clip partial blocks instead.
const char *StairsIr = R"(
module "stairs"
func @hit(%x: double) -> double {
entry:
  %f = floor %x
  %c = fcmp.eq %f, 7.0
  condbr %c, t, e
t:
  %r1 = fmul %x, 2.0
  ret %r1
e:
  %r2 = fadd %x, 1.0
  ret %r2
}
func @miss(%x: double) -> double {
entry:
  %f = floor %x
  %c = fcmp.eq %f, 200.0
  condbr %c, t, e
t:
  %r1 = fmul %x, 2.0
  ret %r1
e:
  %r2 = fadd %x, 1.0
  ret %r2
}
)";

/// The witness's branch trace with each condbr named by its layout
/// ordinal (pointers are not comparable across separately parsed
/// modules).
std::vector<std::pair<int, bool>>
traceWitness(analyses::BoundaryAnalysis &BVA, ir::Module &M,
             const std::vector<double> &X) {
  std::unordered_map<const ir::Instruction *, int> Ordinal;
  int Next = 0;
  BVA.original().forEachInst([&](const ir::Instruction *I) {
    if (I->opcode() == ir::Opcode::CondBr)
      Ordinal[I] = Next++;
  });

  instr::BranchTraceObserver Obs;
  exec::ExecContext Ctx(M);
  Ctx.setObserver(&Obs);
  std::vector<exec::RTValue> Args;
  for (double V : X)
    Args.push_back(exec::RTValue::ofDouble(V));
  BVA.engine().run(&BVA.original(), Args, Ctx);
  std::vector<std::pair<int, bool>> Trace;
  for (const auto &V : Obs.visits())
    Trace.push_back({Ordinal.count(V.Branch) ? Ordinal.at(V.Branch) : -1,
                     V.TakenTrue});
  return Trace;
}

struct SearchRun {
  core::ReductionResult R;
  std::vector<std::pair<int, bool>> Trace;
  std::vector<opt::VectorRecorder::Sample> Samples;
};

SearchRun runBoundarySearch(const char *Func, vm::EngineKind Engine,
                            unsigned Batch, uint64_t MaxEvals,
                            unsigned Starts, bool Record) {
  auto Parsed = ir::parseModule(StairsIr);
  EXPECT_TRUE(Parsed.hasValue());
  ir::Module &M = **Parsed;
  analyses::BoundaryAnalysis BVA(M, *M.functionByName(Func),
                                 instr::BoundaryForm::Product, Engine);
  opt::DifferentialEvolution Backend; // the population backend
  core::ReductionOptions Opts;
  Opts.Seed = 2019;
  Opts.MaxEvals = MaxEvals;
  Opts.Starts = Starts;
  Opts.Batch = Batch;
  opt::VectorRecorder Rec;
  SearchRun Out;
  Out.R = BVA.findOne(Backend, Opts, Record ? &Rec : nullptr);
  if (Out.R.Found)
    Out.Trace = traceWitness(BVA, M, Out.R.Witness);
  Out.Samples = std::move(Rec.Samples);
  return Out;
}

void expectSameSearch(const SearchRun &A, const SearchRun &B,
                      const std::string &Ctx) {
  EXPECT_EQ(A.R.Found, B.R.Found) << Ctx;
  EXPECT_EQ(A.R.Evals, B.R.Evals) << Ctx;
  EXPECT_EQ(A.R.StartsUsed, B.R.StartsUsed) << Ctx; // the winning start
  EXPECT_EQ(A.R.UnsoundCandidates, B.R.UnsoundCandidates) << Ctx;
  EXPECT_EQ(bitsOf(A.R.WStar), bitsOf(B.R.WStar)) << Ctx;
  ASSERT_EQ(A.R.Witness.size(), B.R.Witness.size()) << Ctx;
  for (size_t I = 0; I < A.R.Witness.size(); ++I)
    EXPECT_EQ(bitsOf(A.R.Witness[I]), bitsOf(B.R.Witness[I])) << Ctx;
  ASSERT_EQ(A.Trace.size(), B.Trace.size()) << Ctx;
  for (size_t I = 0; I < A.Trace.size(); ++I) {
    EXPECT_EQ(A.Trace[I].first, B.Trace[I].first) << Ctx;
    EXPECT_EQ(A.Trace[I].second, B.Trace[I].second) << Ctx;
  }
}

TEST(SearchBatchInvarianceTest, BothTiersAllBlockSizesOneAnswer) {
  for (vm::EngineKind Engine :
       {vm::EngineKind::VM, vm::EngineKind::Interp}) {
    SearchRun Ref = runBoundarySearch("hit", Engine, 1, 24'000, 6, false);
    EXPECT_TRUE(Ref.R.Found);
    for (unsigned Batch : {0u, 7u, 32u}) {
      SearchRun R =
          runBoundarySearch("hit", Engine, Batch, 24'000, 6, false);
      expectSameSearch(Ref, R,
                       std::string(vm::engineKindName(Engine)) +
                           " batch " + std::to_string(Batch));
    }
  }
}

TEST(SearchBatchInvarianceTest, BudgetClipBoundary) {
  // No reachable zero and a budget divisible by neither the block size
  // nor the start count: every per-start slice ends mid-block and the
  // batch must clip to the exact scalar consumption.
  for (vm::EngineKind Engine :
       {vm::EngineKind::VM, vm::EngineKind::Interp}) {
    SearchRun Ref = runBoundarySearch("miss", Engine, 1, 1'003, 3, false);
    EXPECT_FALSE(Ref.R.Found);
    for (unsigned Batch : {7u, 32u}) {
      SearchRun R =
          runBoundarySearch("miss", Engine, Batch, 1'003, 3, false);
      expectSameSearch(Ref, R,
                       std::string(vm::engineKindName(Engine)) +
                           " clip batch " + std::to_string(Batch));
    }
  }
}

TEST(SearchBatchInvarianceTest, RecorderStreamIdenticalUnderBatching) {
  SearchRun Ref =
      runBoundarySearch("miss", vm::EngineKind::VM, 1, 3'000, 2, true);
  SearchRun R =
      runBoundarySearch("miss", vm::EngineKind::VM, 32, 3'000, 2, true);
  ASSERT_EQ(Ref.Samples.size(), R.Samples.size());
  EXPECT_GT(Ref.Samples.size(), 0u);
  for (size_t I = 0; I < Ref.Samples.size(); ++I) {
    EXPECT_EQ(bitsOf(Ref.Samples[I].F), bitsOf(R.Samples[I].F)) << I;
    EXPECT_EQ(Ref.Samples[I].X, R.Samples[I].X) << I;
  }
}

} // namespace
