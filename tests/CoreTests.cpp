//===--- CoreTests.cpp - Reduction (Algorithm 2) tests -------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "core/Reduction.h"
#include "opt/BasinHopping.h"
#include "opt/RandomSearch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

using namespace wdm;
using namespace wdm::core;

namespace {

/// Weak distance from a lambda, for synthetic reduction tests.
class LambdaWeak : public WeakDistance {
public:
  using Fn = std::function<double(const std::vector<double> &)>;
  LambdaWeak(Fn F, unsigned Dim) : F(std::move(F)), Dim(Dim) {}
  unsigned dim() const override { return Dim; }
  double operator()(const std::vector<double> &X) override { return F(X); }

private:
  Fn F;
  unsigned Dim;
};

class LambdaProblem : public AnalysisProblem {
public:
  using Fn = std::function<bool(const std::vector<double> &)>;
  LambdaProblem(Fn F, unsigned Dim) : F(std::move(F)), Dim(Dim) {}
  unsigned dim() const override { return Dim; }
  bool contains(const std::vector<double> &X) override { return F(X); }

private:
  Fn F;
  unsigned Dim;
};

TEST(ReductionTest, FindsZeroOfSimpleWeakDistance) {
  LambdaWeak W([](const std::vector<double> &X) { return std::fabs(X[0] - 7.0); },
               1);
  LambdaProblem P([](const std::vector<double> &X) { return X[0] == 7.0; },
                  1);
  Reduction Red(W, &P);
  opt::BasinHopping Backend;
  ReductionOptions Opts;
  Opts.Seed = 1;
  Opts.MaxEvals = 30'000;
  ReductionResult R = Red.solve(Backend, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Witness[0], 7.0);
  EXPECT_EQ(R.UnsoundCandidates, 0u);
}

TEST(ReductionTest, ReportsNotFoundOnPositiveFunction) {
  LambdaWeak W(
      [](const std::vector<double> &X) { return X[0] * X[0] + 0.5; }, 1);
  Reduction Red(W, nullptr);
  opt::BasinHopping Backend;
  ReductionOptions Opts;
  Opts.Seed = 2;
  Opts.MaxEvals = 5'000;
  Opts.Starts = 4;
  ReductionResult R = Red.solve(Backend, Opts);
  EXPECT_FALSE(R.Found);
  EXPECT_GE(R.WStar, 0.5);
  EXPECT_LE(R.Evals, Opts.MaxEvals + 100);
}

TEST(ReductionTest, RejectsUnsoundZeros) {
  // A deliberately broken weak distance (paper Limitation 2): it reports
  // 0 on a whole interval, but only x == 3 is really in S. Verification
  // must reject the spurious zeros and keep searching.
  LambdaWeak W(
      [](const std::vector<double> &X) {
        if (std::fabs(X[0] - 3.0) < 0.5)
          return 0.0; // too-optimistic zero region
        return std::fabs(X[0] - 3.0);
      },
      1);
  LambdaProblem P([](const std::vector<double> &X) { return X[0] == 3.0; },
                  1);
  Reduction Red(W, &P);
  opt::BasinHopping Backend;
  ReductionOptions Opts;
  Opts.Seed = 3;
  Opts.MaxEvals = 60'000;
  Opts.Starts = 30;
  ReductionResult R = Red.solve(Backend, Opts);
  // Either it eventually hits exactly 3.0 (then Witness is verified), or
  // it reports not-found. In both cases every reported witness must be
  // genuine and rejected candidates must be counted.
  if (R.Found)
    EXPECT_EQ(R.Witness[0], 3.0);
  else
    EXPECT_GT(R.UnsoundCandidates, 0u);
}

TEST(ReductionTest, VerificationCanBeDisabled) {
  unsigned Calls = 0;
  LambdaWeak W(
      [](const std::vector<double> &X) { return std::fabs(X[0]); }, 1);
  LambdaProblem P(
      [&Calls](const std::vector<double> &) {
        ++Calls;
        return true;
      },
      1);
  Reduction Red(W, &P);
  opt::BasinHopping Backend;
  ReductionOptions Opts;
  Opts.Seed = 4;
  Opts.MaxEvals = 10'000;
  Opts.VerifySolutions = false;
  ReductionResult R = Red.solve(Backend, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(Calls, 0u);
}

TEST(ReductionTest, RecorderSeesAllSamples) {
  LambdaWeak W(
      [](const std::vector<double> &X) { return std::fabs(X[0] - 1.0); },
      1);
  Reduction Red(W, nullptr);
  opt::BasinHopping Backend;
  opt::VectorRecorder Rec;
  ReductionOptions Opts;
  Opts.Seed = 5;
  Opts.MaxEvals = 4'000;
  ReductionResult R = Red.solve(Backend, Opts, &Rec);
  EXPECT_EQ(Rec.Samples.size(), R.Evals);
  EXPECT_GT(Rec.Samples.size(), 0u);
}

TEST(ReductionTest, DeterministicAcrossRuns) {
  auto Run = [] {
    LambdaWeak W(
        [](const std::vector<double> &X) {
          return std::fabs(std::sin(X[0]) + 0.3) + 0.001;
        },
        1);
    Reduction Red(W, nullptr);
    opt::BasinHopping Backend;
    ReductionOptions Opts;
    Opts.Seed = 6;
    Opts.MaxEvals = 3'000;
    return Red.solve(Backend, Opts);
  };
  ReductionResult A = Run();
  ReductionResult B = Run();
  EXPECT_EQ(A.WStar, B.WStar);
  EXPECT_EQ(A.Evals, B.Evals);
  EXPECT_EQ(A.WStarAt, B.WStarAt);
}

TEST(ReductionTest, MultiDimensional) {
  // S = {(x, y) | x + y == 10 and x - y == 4 in FP} around (7, 3). The
  // two constraints couple the coordinates, so solving this exactly
  // requires the backend's joint (diagonal) moves.
  LambdaWeak W(
      [](const std::vector<double> &X) {
        return std::fabs(X[0] + X[1] - 10.0) +
               std::fabs(X[0] - X[1] - 4.0);
      },
      2);
  LambdaProblem P(
      [](const std::vector<double> &X) {
        return X[0] + X[1] == 10.0 && X[0] - X[1] == 4.0;
      },
      2);
  Reduction Red(W, &P);
  opt::BasinHopping Backend;
  ReductionOptions Opts;
  Opts.Seed = 7;
  Opts.MaxEvals = 120'000;
  Opts.Starts = 12;
  ReductionResult R = Red.solve(Backend, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Witness[0] + R.Witness[1], 10.0);
  EXPECT_EQ(R.Witness[0] - R.Witness[1], 4.0);
}

} // namespace
