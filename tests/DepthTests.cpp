//===--- DepthTests.cpp - Deeper sweeps across the stack ----------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "analyses/BoundaryAnalysis.h"
#include "analyses/BranchCoverage.h"
#include "analyses/OverflowDetector.h"
#include "gsl/Airy.h"
#include "gsl/Hyperg.h"
#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/BasinHopping.h"
#include "sat/SExprParser.h"
#include "sat/Solver.h"
#include "subjects/NumericKernels.h"
#include "subjects/SinModel.h"
#include "support/FPUtils.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/StringUtils.h"

using namespace wdm;
using namespace wdm::exec;
using namespace wdm::ir;

namespace {

// --------------------------------------------------------------------------
// ICmp semantics sweep (the FCmp sweep lives in ExecTests).
// --------------------------------------------------------------------------

struct ICmpCase {
  CmpPred Pred;
  int64_t A, B;
  bool Expected;
};

class ICmpSemanticsTest : public ::testing::TestWithParam<ICmpCase> {};

TEST_P(ICmpSemanticsTest, Matches) {
  const ICmpCase &C = GetParam();
  Module M;
  Function *F = M.addFunction("f", Type::Int);
  IRBuilder B(M);
  B.setInsertAppend(F->addBlock("entry"));
  Value *Cmp = B.icmp(C.Pred, B.litInt(C.A), B.litInt(C.B));
  B.ret(B.select(Cmp, B.litInt(1), B.litInt(0)));
  Engine E(M);
  ExecContext Ctx(M);
  EXPECT_EQ(E.run(F, {}, Ctx).ReturnValue.asInt(), C.Expected ? 1 : 0);
}

INSTANTIATE_TEST_SUITE_P(
    Predicates, ICmpSemanticsTest,
    ::testing::Values(ICmpCase{CmpPred::EQ, 5, 5, true},
                      ICmpCase{CmpPred::EQ, -5, 5, false},
                      ICmpCase{CmpPred::NE, 5, 6, true},
                      ICmpCase{CmpPred::LT, -2, -1, true},
                      ICmpCase{CmpPred::LT, INT64_MIN, INT64_MAX, true},
                      ICmpCase{CmpPred::LE, 7, 7, true},
                      ICmpCase{CmpPred::GT, 0, -1, true},
                      ICmpCase{CmpPred::GE, -1, 0, false}));

// --------------------------------------------------------------------------
// Parser negative sweep: each fragment must be rejected, never crash.
// --------------------------------------------------------------------------

class ParserRejectTest : public ::testing::TestWithParam<const char *> {};

TEST_P(ParserRejectTest, Rejects) {
  auto R = parseModule(GetParam());
  EXPECT_FALSE(R.hasValue()) << "accepted:\n" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Fragments, ParserRejectTest,
    ::testing::Values(
        // Unterminated body.
        "func @f(%x: double) -> double {\nentry:\n  ret %x\n",
        // Unknown type.
        "func @f(%x: quad) -> double {\nentry:\n  ret %x\n}\n",
        // Value used before any definition.
        "func @f(%x: double) -> double {\nentry:\n  ret %y\n}\n",
        // Branch label that is never defined is a verifier/structural
        // problem; the parser creates it — but an empty block must then
        // be caught. Here: instruction outside a block.
        "func @f(%x: double) -> double {\n  ret %x\n}\n",
        // Duplicate function names.
        "func @f() -> void {\nentry:\n  ret\n}\nfunc @f() -> void "
        "{\nentry:\n  ret\n}\n",
        // Call arity mismatch.
        "func @g(%a: double) -> double {\nentry:\n  ret %a\n}\nfunc "
        "@f(%x: double) -> double {\nentry:\n  %r = call @g(%x, %x)\n  "
        "ret %r\n}\n",
        // Store to an unknown global.
        "func @f(%x: double) -> double {\nentry:\n  storeg @nope, %x\n  "
        "ret %x\n}\n",
        // Garbage suffix.
        "func @f() -> void {\nentry:\n  ret # \n}\n"));

// --------------------------------------------------------------------------
// Printer determinism and name collisions.
// --------------------------------------------------------------------------

TEST(PrinterDepthTest, CollidingNamesStayUnique) {
  Module M;
  Function *F = M.addFunction("f", Type::Double);
  Argument *X = F->addArg(Type::Double, "v");
  IRBuilder B(M);
  B.setInsertAppend(F->addBlock("entry"));
  // Three instructions all named "v", colliding with the argument too.
  Instruction *A1 = B.fadd(X, B.lit(1.0), "v");
  Instruction *A2 = B.fadd(A1, B.lit(1.0), "v");
  Instruction *A3 = B.fadd(A2, B.lit(1.0), "v");
  B.ret(A3);

  std::string Text = toString(M);
  auto Parsed = parseModule(Text);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error() << "\n" << Text;
  EXPECT_TRUE(verifyModule(**Parsed).ok());
  // Executing both gives x + 3.
  Engine E1(M), E2(**Parsed);
  ExecContext C1(M), C2(**Parsed);
  double R1 = E1.run(F, {RTValue::ofDouble(1.5)}, C1)
                  .ReturnValue.asDouble();
  double R2 = E2.run((*Parsed)->functionByName("f"),
                     {RTValue::ofDouble(1.5)}, C2)
                  .ReturnValue.asDouble();
  EXPECT_EQ(R1, 4.5);
  EXPECT_EQ(R1, R2);
}

// --------------------------------------------------------------------------
// Overflow detection across all three GSL models (unit-level versions of
// the Table 3 bench, paper-faithful metric).
// --------------------------------------------------------------------------

TEST(OverflowDepthTest, HypergFindsPowAndProductOverflows) {
  Module M;
  gsl::SfFunction Hyperg = gsl::buildHyperg2F0(M);
  analyses::OverflowDetector Det(M, *Hyperg.F,
                                 instr::OverflowMetric::AbsGap);
  analyses::OverflowDetector::Options Opts;
  Opts.Seed = 0x8f;
  analyses::OverflowReport R = Det.run(Opts);
  EXPECT_GE(R.numOverflows(), 3u);
  EXPECT_LE(R.numOverflows(), 8u);
}

/// The strongest single result in the reproduction: a targeted
/// Algorithm 3 round on airy's pi/4 / result_m site must resolve the
/// *single double* where the Chebyshev modulus cancels to exactly zero —
/// the Bug 1 input. Only the ULP-gap metric can do it: the paper's
/// MAX - |a| form is absorbed flat around the needle.
TEST(OverflowDepthTest, TargetedRoundResolvesTheBug1Needle) {
  for (instr::OverflowMetric Metric :
       {instr::OverflowMetric::AbsGap, instr::OverflowMetric::UlpGap}) {
    Module M;
    gsl::AiryModel Airy = gsl::buildAiryAi(M);
    instr::OverflowInstrumentation OI =
        instr::instrumentOverflow(*Airy.Airy.F, Metric);
    Engine E(M);
    ExecContext Ctx(M);
    instr::IRWeakDistance W(E, OI.Wrapped, OI.W, OI.WInit, Ctx);
    // A late Algorithm 3 round: every other site already in L.
    for (const instr::Site &S : OI.Sites)
      Ctx.setSiteEnabled(
          S.Id,
          S.Description.find("pi/4 / result_m") != std::string::npos);

    opt::BasinHopping Backend;
    RNG Rand(7);
    opt::MinimizeOptions MinOpts;
    bool Found = false;
    for (int Start = 0; Start < 12 && !Found; ++Start) {
      opt::Objective Obj(
          [&W](const std::vector<double> &X) { return W(X); }, 1);
      Obj.MaxEvals = 12'000;
      std::vector<double> S{Rand.chance(0.5) ? Rand.anyFiniteDouble()
                                             : Rand.uniform(-10, 10)};
      RNG Child = Rand.split();
      opt::MinimizeResult R = Backend.minimize(Obj, S, Child, MinOpts);
      if (R.ReachedTarget) {
        Found = true;
        EXPECT_EQ(R.X[0], gsl::AiryBug1Input);
      }
    }
    if (Metric == instr::OverflowMetric::UlpGap)
      EXPECT_TRUE(Found) << "ULP gap should resolve the needle";
    else
      EXPECT_FALSE(Found) << "MAX - |a| is absorbed flat at this scale";
  }
}

// --------------------------------------------------------------------------
// Boundary analysis with the MinUlp form on the sin model.
// --------------------------------------------------------------------------

TEST(BoundaryDepthTest, MinUlpFormSolvesSinModel) {
  Module M;
  subjects::SinModel Sin = subjects::buildSinModel(M);
  analyses::BoundaryAnalysis BVA(M, *Sin.F, instr::BoundaryForm::MinUlp);
  for (unsigned I = 0; I < 4; ++I) {
    EXPECT_EQ(BVA.weak()({Sin.refBoundary(I)}), 0.0);
    EXPECT_EQ(BVA.weak()({-Sin.refBoundary(I)}), 0.0);
  }
  opt::BasinHopping Backend;
  core::ReductionOptions Opts;
  Opts.Seed = 0xb1;
  Opts.MaxEvals = 40'000;
  core::ReductionResult R = BVA.findOne(Backend, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_FALSE(BVA.hitsFor(R.Witness).empty());
}

// --------------------------------------------------------------------------
// Satisfiability: generated-formula property sweep — every SAT model must
// verify; UNSAT reports must have positive W*.
// --------------------------------------------------------------------------

TEST(SatDepthTest, RandomIntervalConjunctions) {
  RNG Rand(0x5eed);
  unsigned Sat = 0, Unsat = 0;
  for (int Trial = 0; Trial < 12; ++Trial) {
    // (and (>= x lo) (<= x hi) (>= (* x x) s)) with random lo < hi and a
    // threshold s that makes roughly half the instances satisfiable.
    double Lo = Rand.uniform(-50, 0);
    double Hi = Lo + Rand.uniform(0.5, 30);
    double MaxSq = std::max(Lo * Lo, Hi * Hi);
    double S = Rand.uniform(0.0, 2.0 * MaxSq);
    std::string Text = "(and (>= x " + formatDouble(Lo) + ") (<= x " +
                       formatDouble(Hi) + ") (>= (* x x) " +
                       formatDouble(S) + "))";
    auto C = sat::parseConstraint(Text);
    ASSERT_TRUE(C.hasValue()) << Text;
    sat::XSatSolver Solver;
    sat::XSatSolver::Options Opts;
    Opts.Reduce.Seed = 0x711 + Trial;
    Opts.Reduce.MaxEvals = 30'000;
    sat::SatResult R = Solver.solve(*C, Opts);
    if (R.Sat) {
      ++Sat;
      EXPECT_TRUE(C->satisfiedBy(R.Model)) << Text;
    } else {
      ++Unsat;
      EXPECT_GT(R.WStar, 0.0) << Text;
    }
  }
  // The generator straddles the boundary: both outcomes must occur.
  EXPECT_GT(Sat, 0u);
  EXPECT_GT(Unsat, 0u);
}

// --------------------------------------------------------------------------
// Coverage on the quadratic solver: disc == 0 direction is the hard one.
// --------------------------------------------------------------------------

TEST(CoverageDepthTest, QuadraticSolverReachesDoubleRootDirection) {
  Module M;
  subjects::QuadraticSolver P = subjects::buildQuadraticSolver(M);
  analyses::BranchCoverage Cov(M, *P.F);
  opt::BasinHopping Backend;
  analyses::BranchCoverage::Options Opts;
  Opts.Reduce.Seed = 0xcafe;
  Opts.Reduce.MaxEvals = 120'000;
  Opts.MaxStall = 4;
  analyses::CoverageReport R = Cov.run(Backend, Opts);
  EXPECT_EQ(R.Total, 6u);
  // All six directions are reachable: a==0/a!=0, disc<0/disc>=0,
  // disc==0/disc!=0. Require at least five (the equality surface in 3-D
  // is allowed to time out occasionally) and full verification of what
  // was claimed.
  EXPECT_GE(R.Covered, 5u);
}

// --------------------------------------------------------------------------
// RNG statistical depth: uniformity chi-square-ish sanity.
// --------------------------------------------------------------------------

TEST(RNGDepthTest, BelowIsRoughlyUniform) {
  RNG R(99);
  constexpr unsigned Buckets = 16;
  unsigned Counts[Buckets] = {};
  constexpr unsigned N = 64'000;
  for (unsigned I = 0; I < N; ++I)
    ++Counts[R.below(Buckets)];
  double Expected = double(N) / Buckets;
  for (unsigned I = 0; I < Buckets; ++I)
    EXPECT_NEAR(Counts[I], Expected, Expected * 0.1) << "bucket " << I;
}

} // namespace
