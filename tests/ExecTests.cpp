//===--- ExecTests.cpp - Interpreter unit tests --------------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "support/FPUtils.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "subjects/Fig1.h"
#include "subjects/Fig2.h"
#include "subjects/SinModel.h"
#include "subjects/TestPrograms.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace wdm;
using namespace wdm::exec;
using namespace wdm::ir;

namespace {

double inf() { return std::numeric_limits<double>::infinity(); }

/// Builds a one-expression function `f(a, b) = a <op> b` and runs it.
double evalBinary(Opcode Op, double A, double B) {
  Module M;
  Function *F = M.addFunction("f", Type::Double);
  Argument *AArg = F->addArg(Type::Double, "a");
  Argument *BArg = F->addArg(Type::Double, "b");
  IRBuilder Bld(M);
  Bld.setInsertAppend(F->addBlock("entry"));
  auto Inst = std::make_unique<Instruction>(
      Op, Type::Double, std::vector<Value *>{AArg, BArg});
  Instruction *Raw = F->entry()->append(std::move(Inst));
  Bld.ret(Raw);
  EXPECT_TRUE(verifyModule(M).ok());

  Engine E(M);
  ExecContext Ctx(M);
  ExecResult R =
      E.run(F, {RTValue::ofDouble(A), RTValue::ofDouble(B)}, Ctx);
  EXPECT_TRUE(R.ok());
  return R.ReturnValue.asDouble();
}

double evalUnary(Opcode Op, double A) {
  Module M;
  Function *F = M.addFunction("f", Type::Double);
  Argument *AArg = F->addArg(Type::Double, "a");
  IRBuilder Bld(M);
  Bld.setInsertAppend(F->addBlock("entry"));
  auto Inst = std::make_unique<Instruction>(Op, Type::Double,
                                            std::vector<Value *>{AArg});
  Instruction *Raw = F->entry()->append(std::move(Inst));
  Bld.ret(Raw);
  Engine E(M);
  ExecContext Ctx(M);
  ExecResult R = E.run(F, {RTValue::ofDouble(A)}, Ctx);
  EXPECT_TRUE(R.ok());
  return R.ReturnValue.asDouble();
}

TEST(InterpreterTest, DoubleArithmetic) {
  EXPECT_EQ(evalBinary(Opcode::FAdd, 1.5, 2.25), 3.75);
  EXPECT_EQ(evalBinary(Opcode::FSub, 1.0, 4.0), -3.0);
  EXPECT_EQ(evalBinary(Opcode::FMul, 3.0, -2.0), -6.0);
  EXPECT_EQ(evalBinary(Opcode::FDiv, 1.0, 4.0), 0.25);
  EXPECT_EQ(evalBinary(Opcode::FRem, 7.5, 2.0), 1.5);
  EXPECT_EQ(evalBinary(Opcode::Pow, 2.0, 10.0), 1024.0);
  EXPECT_EQ(evalBinary(Opcode::FMin, 2.0, -3.0), -3.0);
  EXPECT_EQ(evalBinary(Opcode::FMax, 2.0, -3.0), 2.0);
}

TEST(InterpreterTest, RoundToNearestIsDefault) {
  // The paper's Section 1 example: 0.9999999999999999 + 1 rounds to 2.
  EXPECT_EQ(evalBinary(Opcode::FAdd, 0.9999999999999999, 1.0), 2.0);
  // And 0.1 + 0.2 != 0.3.
  EXPECT_NE(evalBinary(Opcode::FAdd, 0.1, 0.2), 0.3);
}

TEST(InterpreterTest, UnaryOps) {
  EXPECT_EQ(evalUnary(Opcode::FNeg, 3.0), -3.0);
  EXPECT_EQ(evalUnary(Opcode::FAbs, -3.0), 3.0);
  EXPECT_EQ(evalUnary(Opcode::Sqrt, 9.0), 3.0);
  EXPECT_EQ(evalUnary(Opcode::Floor, 2.7), 2.0);
  EXPECT_EQ(evalUnary(Opcode::Floor, -2.3), -3.0);
  EXPECT_DOUBLE_EQ(evalUnary(Opcode::Sin, 0.5), std::sin(0.5));
  EXPECT_DOUBLE_EQ(evalUnary(Opcode::Cos, 0.5), std::cos(0.5));
  EXPECT_DOUBLE_EQ(evalUnary(Opcode::Tan, 0.5), std::tan(0.5));
  EXPECT_DOUBLE_EQ(evalUnary(Opcode::Exp, 1.0), std::exp(1.0));
  EXPECT_DOUBLE_EQ(evalUnary(Opcode::Log, 2.0), std::log(2.0));
}

TEST(InterpreterTest, SpecialValues) {
  EXPECT_TRUE(std::isinf(evalBinary(Opcode::FMul, 1e308, 10.0)));
  EXPECT_TRUE(std::isnan(evalBinary(Opcode::FSub, inf(), inf())));
  EXPECT_TRUE(std::isnan(evalBinary(Opcode::FDiv, 0.0, 0.0)));
  EXPECT_EQ(evalBinary(Opcode::FDiv, 1.0, 0.0), inf());
  EXPECT_EQ(evalBinary(Opcode::FDiv, -1.0, 0.0), -inf());
  EXPECT_TRUE(std::isnan(evalUnary(Opcode::Sqrt, -1.0)));
  // fmin/fmax ignore NaN (IEEE 754 minNum/maxNum semantics).
  EXPECT_EQ(evalBinary(Opcode::FMin, std::nan(""), 3.0), 3.0);
}

/// FCmp semantics, parameterized across predicates: NaN fails everything
/// except NE.
struct CmpCase {
  CmpPred Pred;
  double A, B;
  bool Expected;
};

class FCmpSemanticsTest : public ::testing::TestWithParam<CmpCase> {};

TEST_P(FCmpSemanticsTest, Matches) {
  const CmpCase &C = GetParam();
  Module M;
  Function *F = M.addFunction("f", Type::Int);
  Argument *A = F->addArg(Type::Double, "a");
  Argument *B = F->addArg(Type::Double, "b");
  IRBuilder Bld(M);
  Bld.setInsertAppend(F->addBlock("entry"));
  Value *Cmp = Bld.fcmp(C.Pred, A, B);
  Bld.ret(Bld.select(Cmp, Bld.litInt(1), Bld.litInt(0)));
  Engine E(M);
  ExecContext Ctx(M);
  ExecResult R =
      E.run(F, {RTValue::ofDouble(C.A), RTValue::ofDouble(C.B)}, Ctx);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue.asInt(), C.Expected ? 1 : 0);
}

INSTANTIATE_TEST_SUITE_P(
    Predicates, FCmpSemanticsTest,
    ::testing::Values(
        CmpCase{CmpPred::EQ, 1.0, 1.0, true},
        CmpCase{CmpPred::EQ, 0.0, -0.0, true}, // signed zeros compare equal
        CmpCase{CmpPred::EQ, std::nan(""), std::nan(""), false},
        CmpCase{CmpPred::NE, std::nan(""), 1.0, true},
        CmpCase{CmpPred::LT, 1.0, 2.0, true},
        CmpCase{CmpPred::LT, std::nan(""), 1.0, false},
        CmpCase{CmpPred::LE, 2.0, 2.0, true},
        CmpCase{CmpPred::GT, 3.0, 2.0, true},
        CmpCase{CmpPred::GE, 2.0, 3.0, false},
        CmpCase{CmpPred::GE, std::nan(""), std::nan(""), false}));

TEST(InterpreterTest, IntegerOps) {
  Module M;
  Function *F = M.addFunction("f", Type::Int);
  Argument *X = F->addArg(Type::Double, "x");
  IRBuilder B(M);
  B.setInsertAppend(F->addBlock("entry"));
  Value *HW = B.highword(X);
  Value *K = B.iand(HW, B.litInt(0x7fffffff));
  Value *Shifted = B.ishl(K, B.litInt(1));
  Value *Back = B.ilshr(Shifted, B.litInt(1));
  Value *Sum = B.iadd(Back, B.litInt(1));
  Value *Fin = B.isub(Sum, B.litInt(1));
  B.ret(Fin);
  Engine E(M);
  ExecContext Ctx(M);
  ExecResult R = E.run(F, {RTValue::ofDouble(1.0)}, Ctx);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue.asInt(), 0x3ff00000);

  // Negative input: high word carries the sign bit and the mask strips it.
  R = E.run(F, {RTValue::ofDouble(-1.0)}, Ctx);
  EXPECT_EQ(R.ReturnValue.asInt(), 0x3ff00000);
}

TEST(InterpreterTest, UlpDiffOp) {
  EXPECT_EQ(evalBinary(Opcode::UlpDiff, 1.0, 1.0), 0.0);
  EXPECT_EQ(evalBinary(Opcode::UlpDiff, 1.0, nextUp(1.0)), 1.0);
  EXPECT_EQ(evalBinary(Opcode::UlpDiff, 0.0, -0.0), 0.0);
  EXPECT_EQ(evalBinary(Opcode::UlpDiff, -5e-324, 5e-324), 2.0);
  // Scale-free: one ulp is one ulp at any magnitude.
  EXPECT_EQ(evalBinary(Opcode::UlpDiff, 1e300, nextUp(1e300)), 1.0);
  EXPECT_GT(evalBinary(Opcode::UlpDiff, std::nan(""), 1.0), 1e18);
}

TEST(InterpreterTest, ConversionOps) {
  Module M;
  Function *F = M.addFunction("f", Type::Double);
  Argument *X = F->addArg(Type::Double, "x");
  IRBuilder B(M);
  B.setInsertAppend(F->addBlock("entry"));
  Value *I = B.fptosi(X);
  Value *D = B.sitofp(I);
  B.ret(D);
  Engine E(M);
  ExecContext Ctx(M);
  EXPECT_EQ(E.run(F, {RTValue::ofDouble(3.7)}, Ctx).ReturnValue.asDouble(),
            3.0);
  EXPECT_EQ(E.run(F, {RTValue::ofDouble(-3.7)}, Ctx).ReturnValue.asDouble(),
            -3.0);
  // Saturation instead of UB.
  EXPECT_EQ(E.run(F, {RTValue::ofDouble(1e300)}, Ctx)
                .ReturnValue.asDouble(),
            9.223372036854775807e18);
  EXPECT_EQ(
      E.run(F, {RTValue::ofDouble(std::nan(""))}, Ctx).ReturnValue.asDouble(),
      0.0);
}

TEST(InterpreterTest, Fig2Semantics) {
  Module M;
  subjects::Fig2 P = subjects::buildFig2(M);
  Engine E(M);
  ExecContext Ctx(M);
  auto Run = [&](double X) {
    return E.run(P.F, {RTValue::ofDouble(X)}, Ctx).ReturnValue.asDouble();
  };
  // x=0: x++ -> 1, y=1 <= 4: x-- -> 0.
  EXPECT_EQ(Run(0.0), 0.0);
  // x=5: no inc, y=25 > 4: stays 5.
  EXPECT_EQ(Run(5.0), 5.0);
  // x=1: inc to 2, y=4 <= 4: dec to 1.
  EXPECT_EQ(Run(1.0), 1.0);
  // The rounding surprise: 0.9999999999999999 + 1 == 2.
  EXPECT_EQ(Run(0.9999999999999999), 1.0);
}

TEST(InterpreterTest, LoopAccumAndCalls) {
  Module M;
  Function *Loop = subjects::buildLoopAccum(M);
  Function *CallF = subjects::buildCallChain(M);
  Engine E(M);
  ExecContext Ctx(M);
  // Fixed point of acc = acc*0.5 + x is 2x; after 20 iterations the
  // geometric series has converged to within 2^-20 * 2x.
  double R = E.run(Loop, {RTValue::ofDouble(1.0)}, Ctx)
                 .ReturnValue.asDouble();
  EXPECT_NEAR(R, 2.0, 1e-5);
  EXPECT_EQ(
      E.run(CallF, {RTValue::ofDouble(4.0)}, Ctx).ReturnValue.asDouble(),
      9.0);
}

TEST(InterpreterTest, StepLimit) {
  Module M;
  Function *F = subjects::buildInfiniteLoop(M);
  Engine E(M);
  ExecContext Ctx(M);
  ExecOptions Opts;
  Opts.MaxSteps = 1000;
  ExecResult R = E.run(F, {RTValue::ofDouble(0.0)}, Ctx, Opts);
  EXPECT_EQ(R.Kind, ExecResult::Outcome::StepLimitExceeded);
  EXPECT_GE(R.Steps, 1000u);
}

TEST(InterpreterTest, Trap) {
  Module M;
  Function *F = subjects::buildTrapAlways(M);
  Engine E(M);
  ExecContext Ctx(M);
  ExecResult R = E.run(F, {RTValue::ofDouble(0.0)}, Ctx);
  EXPECT_TRUE(R.trapped());
  EXPECT_EQ(R.TrapId, 7);
  EXPECT_EQ(R.TrapMessage, "always traps");
}

TEST(InterpreterTest, Fig1aTrapsExactlyAtTheRoundingInput) {
  Module M;
  subjects::Fig1 P = subjects::buildFig1a(M);
  Engine E(M);
  ExecContext Ctx(M);
  EXPECT_TRUE(
      E.run(P.F, {RTValue::ofDouble(0.9999999999999999)}, Ctx).trapped());
  EXPECT_FALSE(E.run(P.F, {RTValue::ofDouble(0.5)}, Ctx).trapped());
  EXPECT_FALSE(E.run(P.F, {RTValue::ofDouble(1.5)}, Ctx).trapped());
  EXPECT_FALSE(
      E.run(P.F, {RTValue::ofDouble(0.9999999999999998)}, Ctx).trapped());
}

TEST(InterpreterTest, RoundingModeChangesFig1a) {
  Module M;
  subjects::Fig1 P = subjects::buildFig1a(M);
  Engine E(M);
  ExecContext Ctx(M);
  // Round-toward-zero: x + 1 rounds down to 1.9999999999999998 < 2, so
  // the assertion holds — the paper's Section 1 observation.
  ExecOptions Opts;
  Opts.Rounding = RoundingMode::TowardZero;
  EXPECT_FALSE(
      E.run(P.F, {RTValue::ofDouble(0.9999999999999999)}, Ctx, Opts)
          .trapped());
  Opts.Rounding = RoundingMode::NearestEven;
  EXPECT_TRUE(
      E.run(P.F, {RTValue::ofDouble(0.9999999999999999)}, Ctx, Opts)
          .trapped());
}

TEST(InterpreterTest, GlobalsAndContextReset) {
  Module M;
  GlobalVar *G = M.addGlobalDouble("g", 5.0);
  Function *F = M.addFunction("bump", Type::Double);
  IRBuilder B(M);
  B.setInsertAppend(F->addBlock("entry"));
  Value *Cur = B.loadg(G);
  Value *Next = B.fadd(Cur, B.lit(1.0));
  B.storeg(G, Next);
  B.ret(Next);
  Engine E(M);
  ExecContext Ctx(M);
  EXPECT_EQ(E.run(F, {}, Ctx).ReturnValue.asDouble(), 6.0);
  EXPECT_EQ(E.run(F, {}, Ctx).ReturnValue.asDouble(), 7.0); // persists
  Ctx.resetGlobals();
  EXPECT_EQ(E.run(F, {}, Ctx).ReturnValue.asDouble(), 6.0);
}

TEST(InterpreterTest, SiteEnabledBits) {
  Module M;
  Function *F = M.addFunction("f", Type::Int);
  IRBuilder B(M);
  B.setInsertAppend(F->addBlock("entry"));
  Value *En = B.siteEnabled(3);
  B.ret(B.select(En, B.litInt(1), B.litInt(0)));
  Engine E(M);
  ExecContext Ctx(M);
  EXPECT_EQ(E.run(F, {}, Ctx).ReturnValue.asInt(), 1); // default enabled
  Ctx.setSiteEnabled(3, false);
  EXPECT_EQ(E.run(F, {}, Ctx).ReturnValue.asInt(), 0);
  Ctx.enableAllSites();
  EXPECT_EQ(E.run(F, {}, Ctx).ReturnValue.asInt(), 1);
}

TEST(InterpreterTest, CallDepthLimit) {
  Module M;
  Function *F = M.addFunction("rec", Type::Double);
  Argument *X = F->addArg(Type::Double, "x");
  IRBuilder B(M);
  B.setInsertAppend(F->addBlock("entry"));
  Instruction *C = B.call(F, {X}); // unconditional recursion
  B.ret(C);
  Engine E(M);
  ExecContext Ctx(M);
  ExecResult R = E.run(F, {RTValue::ofDouble(0.0)}, Ctx);
  EXPECT_EQ(R.Kind, ExecResult::Outcome::StepLimitExceeded);
}

TEST(InterpreterTest, SinModelMatchesLibm) {
  Module M;
  subjects::SinModel P = subjects::buildSinModel(M);
  Engine E(M);
  ExecContext Ctx(M);
  // The model is an approximation; require 1e-3 absolute agreement over
  // moderate inputs and exactness in the tiny range.
  for (double X : {1e-10, 1e-8, 0.1, 0.5, -0.5, 0.9, 1.5, -2.0, 3.0, 10.0,
                   -100.0, 12345.6}) {
    double Got = E.run(P.F, {RTValue::ofDouble(X)}, Ctx)
                     .ReturnValue.asDouble();
    EXPECT_NEAR(Got, std::sin(X), 1e-3) << "at x = " << X;
  }
  double Tiny = 1e-9;
  EXPECT_EQ(E.run(P.F, {RTValue::ofDouble(Tiny)}, Ctx)
                .ReturnValue.asDouble(),
            Tiny);
  // Non-finite input -> NaN.
  EXPECT_TRUE(std::isnan(
      E.run(P.F, {RTValue::ofDouble(inf())}, Ctx).ReturnValue.asDouble()));
}

// --------------------------------------------------------------------------
// Observers
// --------------------------------------------------------------------------

class CountingObserver : public ExecObserver {
public:
  unsigned Insts = 0;
  unsigned Branches = 0;
  void onInstruction(const Instruction *, const RTValue *, unsigned,
                     const RTValue &) override {
    ++Insts;
  }
  void onBranch(const Instruction *, bool) override { ++Branches; }
};

TEST(ObserverTest, SeesInstructionsAndBranches) {
  Module M;
  subjects::Fig2 P = subjects::buildFig2(M);
  Engine E(M);
  ExecContext Ctx(M);
  CountingObserver Obs;
  Ctx.setObserver(&Obs);
  E.run(P.F, {RTValue::ofDouble(0.0)}, Ctx);
  EXPECT_EQ(Obs.Branches, 2u);
  EXPECT_GT(Obs.Insts, 0u);
}

} // namespace
