//===--- FaultTests.cpp - Suite fault-tolerance tests ---------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
// The fault-tolerance bar: every supervision path (deadline kill, stall
// detection, retry-then-success, crash-loop quarantine, RLIMIT kills,
// graceful shutdown + resume) exercised against *real* forked `wdm
// run-job` children dying in the way the WDM_FAULT harness tells them
// to — no mocks. Subprocess tests drive the real `wdm` binary
// (WDM_CLI_EXE, injected by CMake).
//
//===----------------------------------------------------------------------===//

#include "api/JobScheduler.h"
#include "api/SuiteReport.h"
#include "api/SuiteSpec.h"
#include "support/FaultInject.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

using namespace wdm;
using namespace wdm::api;
using wdm::json::Value;

namespace {

/// RAII WDM_FAULT setter: tests must never leak a fault plan into each
/// other (or into child processes of later tests).
class ScopedFault {
public:
  explicit ScopedFault(const std::string &Spec) {
    setenv("WDM_FAULT", Spec.c_str(), 1);
  }
  ~ScopedFault() { unsetenv("WDM_FAULT"); }
  ScopedFault(const ScopedFault &) = delete;
  ScopedFault &operator=(const ScopedFault &) = delete;
};

std::string tempPath(const std::string &Stem) {
  return ::testing::TempDir() + "wdm_fault_" + std::to_string(getpid()) +
         "_" + Stem;
}

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(Out) << Path;
  Out << Text;
}

std::string readFileText(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Fast deterministic two-job suite (fig2 boundary, two seeds); each
/// job runs in well under a second, so deadlines in the tests can be
/// generous multiples of healthy runtime.
SuiteSpec twoJobSuite() {
  Expected<SuiteSpec> Suite = SuiteSpec::parse(R"({
    "suite": "fault",
    "defaults": {"search": {"max_evals": 20000, "threads": 1}},
    "matrix": {
      "subjects": ["fig2"],
      "tasks": ["boundary"],
      "seed_base": 60, "seed_count": 2
    }
  })");
  EXPECT_TRUE(Suite.hasValue()) << Suite.error();
  return Suite.take();
}

bool underAddressSanitizer() {
#if defined(__SANITIZE_ADDRESS__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

//===----------------------------------------------------------------------===//
// WDM_FAULT grammar
//===----------------------------------------------------------------------===//

TEST(FaultSpecTest, GrammarAcceptsAndRejects) {
  auto Plan = fault::parse("crash@job:3");
  ASSERT_TRUE(Plan.hasValue()) << Plan.error();
  ASSERT_EQ(Plan->size(), 1u);
  EXPECT_EQ((*Plan)[0].Action, "crash");
  EXPECT_EQ((*Plan)[0].JobIndex, 3u);
  EXPECT_EQ((*Plan)[0].Attempt, 1u); // default: first attempt only

  Plan = fault::parse("slow-heartbeat:7.5@job:0#*, oom:32@job:2#3; "
                      "sleep@job:1");
  ASSERT_TRUE(Plan.hasValue()) << Plan.error();
  ASSERT_EQ(Plan->size(), 3u);
  EXPECT_EQ((*Plan)[0].Action, "slow-heartbeat");
  EXPECT_DOUBLE_EQ((*Plan)[0].Param, 7.5);
  EXPECT_EQ((*Plan)[0].Attempt, 0u); // '#*' = every attempt
  EXPECT_EQ((*Plan)[1].Attempt, 3u);
  EXPECT_EQ((*Plan)[2].Action, "sleep");

  // Matching: attempt selector and '*' wildcard.
  EXPECT_TRUE((*Plan)[0].matches(0, 1));
  EXPECT_TRUE((*Plan)[0].matches(0, 4));
  EXPECT_FALSE((*Plan)[0].matches(1, 1));
  EXPECT_TRUE((*Plan)[1].matches(2, 3));
  EXPECT_FALSE((*Plan)[1].matches(2, 1));
  EXPECT_TRUE(fault::actionFor(*Plan, 1, 1).has_value());
  EXPECT_FALSE(fault::actionFor(*Plan, 1, 2).has_value()); // default #1
  EXPECT_FALSE(fault::actionFor(*Plan, 5, 1).has_value());

  // A typo'd plan must fail loudly, not inject nothing.
  for (const char *Bad : {"crash", "crash@3", "frobnicate@job:0",
                          "crash@job:x", "crash@job:0#y", "crash@job:",
                          "oom:banana@job:0", ""})
    EXPECT_FALSE(fault::parse(Bad).hasValue()) << Bad;
}

//===----------------------------------------------------------------------===//
// The "limits" policy block: parsing, merge precedence, job identity
//===----------------------------------------------------------------------===//

TEST(JobLimitsTest, ParseRoundTripAndPrecedence) {
  Expected<SuiteSpec> Suite = SuiteSpec::parse(R"({
    "suite": "lims",
    "limits": {"timeout_sec": 30, "retries": 2, "mem_limit_mb": 512},
    "defaults": {"search": {"max_evals": 100, "threads": 1}},
    "jobs": [
      {"task": "boundary", "module": {"builtin": "fig2"}},
      {"task": "boundary", "module": {"builtin": "fig2"},
       "search": {"seed": 9},
       "limits": {"timeout_sec": 5, "cpu_limit_sec": 10}}
    ]
  })");
  ASSERT_TRUE(Suite.hasValue()) << Suite.error();
  Expected<std::vector<SuiteJob>> Jobs = Suite->expand();
  ASSERT_TRUE(Jobs.hasValue()) << Jobs.error();
  ASSERT_EQ(Jobs->size(), 2u);

  // Suite-level limits apply to every job; a job block deep-merges over
  // them (field-wise, not wholesale replacement).
  const JobLimits &A = (*Jobs)[0].Limits;
  EXPECT_DOUBLE_EQ(A.TimeoutSec, 30);
  EXPECT_EQ(A.Retries, 2u);
  EXPECT_EQ(A.MemLimitMb, 512u);
  const JobLimits &B = (*Jobs)[1].Limits;
  EXPECT_DOUBLE_EQ(B.TimeoutSec, 5); // job override wins
  EXPECT_EQ(B.CpuLimitSec, 10u);     // job-only addition
  EXPECT_EQ(B.Retries, 2u);          // suite default survives
  EXPECT_EQ(B.MemLimitMb, 512u);

  EXPECT_DOUBLE_EQ(Suite->baseLimits().TimeoutSec, 30);

  // Limits are supervision policy, not analysis work: they must not
  // change content-addressed job identity, or resume logs written
  // before a limits tweak would silently re-execute everything.
  Expected<SuiteSpec> NoLims = SuiteSpec::parse(R"({
    "suite": "lims",
    "defaults": {"search": {"max_evals": 100, "threads": 1}},
    "jobs": [
      {"task": "boundary", "module": {"builtin": "fig2"}},
      {"task": "boundary", "module": {"builtin": "fig2"},
       "search": {"seed": 9}}
    ]
  })");
  ASSERT_TRUE(NoLims.hasValue()) << NoLims.error();
  Expected<std::vector<SuiteJob>> NoLimsJobs = NoLims->expand();
  ASSERT_TRUE(NoLimsJobs.hasValue()) << NoLimsJobs.error();
  EXPECT_EQ((*Jobs)[0].Id, (*NoLimsJobs)[0].Id);
  EXPECT_EQ((*Jobs)[1].Id, (*NoLimsJobs)[1].Id);

  // toJson/fromJson fixed point preserves the limits block.
  Expected<SuiteSpec> Re = SuiteSpec::fromJson(Suite->toJson());
  ASSERT_TRUE(Re.hasValue()) << Re.error();
  EXPECT_EQ(Re->toJson().dump(), Suite->toJson().dump());
  Expected<std::vector<SuiteJob>> ReJobs = Re->expand();
  ASSERT_TRUE(ReJobs.hasValue()) << ReJobs.error();
  EXPECT_DOUBLE_EQ((*ReJobs)[1].Limits.TimeoutSec, 5);

  // Strictness: unknown keys and negative values are spec errors.
  EXPECT_FALSE(SuiteSpec::parse(
                   R"({"suite": "s", "limits": {"timeout": 3},
                       "jobs": [{"task": "boundary",
                                 "module": {"builtin": "fig2"}}]})")
                   .hasValue());
  EXPECT_FALSE(SuiteSpec::parse(
                   R"({"suite": "s", "limits": {"retries": -1},
                       "jobs": [{"task": "boundary",
                                 "module": {"builtin": "fig2"}}]})")
                   .hasValue());
}

//===----------------------------------------------------------------------===//
// Driver-level policies that act in both scheduler modes
//===----------------------------------------------------------------------===//

TEST(FaultTest, InprocessRetryCountsAndMaxFailuresAbort) {
  // A job whose module cannot load fails deterministically in both
  // modes; retries burn down and the job is quarantined (it had a
  // retry budget), and --max-failures=1 stops dispatch of later jobs.
  SuiteSpec Suite;
  {
    Expected<SuiteSpec> S = SuiteSpec::parse(R"({
      "suite": "maxfail",
      "defaults": {"search": {"max_evals": 100, "threads": 1}},
      "jobs": [
        {"task": "boundary", "module": {"file": "/nonexistent/a.wir"}},
        {"task": "boundary", "module": {"builtin": "fig2"},
         "search": {"seed": 1}},
        {"task": "boundary", "module": {"builtin": "fig2"},
         "search": {"seed": 2}}
      ]
    })");
    ASSERT_TRUE(S.hasValue()) << S.error();
    Suite = S.take();
  }

  SuiteRunOptions Opts;
  Opts.Shards = 1; // deterministic dispatch order
  Opts.Retries = 1;
  Opts.BackoffSec = 0.01;
  Opts.MaxFailures = 1;
  Expected<SuiteReport> R = JobScheduler::execute(Suite, Opts);
  ASSERT_TRUE(R.hasValue()) << R.error();

  EXPECT_EQ(R->Quarantined, 1u);
  EXPECT_EQ(R->Retries, 1u);
  EXPECT_EQ(R->Stopped, "max-failures");
  EXPECT_EQ(R->Executed + R->Interrupted, 2u);
  EXPECT_GE(R->Interrupted, 1u); // fail-fast spared at least one job
  EXPECT_EQ(R->Results[0].S, JobResult::State::Quarantined);
  ASSERT_EQ(R->Results[0].Attempts.size(), 2u);
  EXPECT_EQ(R->Results[0].Attempts[0].Outcome, "failed");
  EXPECT_GT(R->Results[0].Attempts[0].RetryDelaySec, 0.0);
  EXPECT_EQ(R->exitCode(), 3); // quarantine = failure, not interrupt
}

#ifdef WDM_CLI_EXE

//===----------------------------------------------------------------------===//
// Real dying children: deadline, stall, crash loop, rlimit
//===----------------------------------------------------------------------===//

SuiteRunOptions subprocessOpts() {
  SuiteRunOptions Opts;
  Opts.Mode = SuiteMode::Subprocess;
  Opts.Shards = 2;
  Opts.WorkerExe = WDM_CLI_EXE;
  return Opts;
}

TEST(FaultTest, HungJobKilledAtDeadlineAndRetried) {
  // Attempt 1 of job 0 ignores SIGTERM and sleeps forever: the driver
  // must walk the full SIGTERM -> grace -> SIGKILL escalation, record a
  // timeout, back off, and succeed on attempt 2.
  ScopedFault Fault("hang@job:0#1");
  SuiteRunOptions Opts = subprocessOpts();
  Opts.TimeoutSec = 1.5;
  Opts.GraceSec = 0.2;
  Opts.Retries = 1;
  Opts.BackoffSec = 0.01;
  Expected<SuiteReport> R = JobScheduler::execute(twoJobSuite(), Opts);
  ASSERT_TRUE(R.hasValue()) << R.error();

  EXPECT_EQ(R->Executed, 2u);
  EXPECT_EQ(R->Failed, 0u);
  EXPECT_EQ(R->Timeouts, 1u);
  EXPECT_EQ(R->Retries, 1u);
  const JobResult &J = R->Results[0];
  ASSERT_EQ(J.Attempts.size(), 2u);
  EXPECT_EQ(J.Attempts[0].Outcome, "timeout");
  EXPECT_NE(J.Attempts[0].Error.find("wall-clock deadline"),
            std::string::npos)
      << J.Attempts[0].Error;
  EXPECT_GE(J.Attempts[0].Seconds, 1.4);
  EXPECT_EQ(J.Attempts[1].Outcome, "ok");
  EXPECT_EQ(R->exitCode(), 1); // recovered: findings only
}

TEST(FaultTest, StalledWorkerDetectedByMissedHeartbeats) {
  // Attempt 1 of job 0 goes silent for 10s; with a 1.2s stall window
  // the liveness detector (fed by the child's auto-enabled heartbeats)
  // must kill it long before any wall deadline, then retry to success.
  ScopedFault Fault("slow-heartbeat:10@job:0#1");
  SuiteRunOptions Opts = subprocessOpts();
  Opts.StallTimeoutSec = 1.2;
  Opts.Retries = 1;
  Opts.BackoffSec = 0.01;
  Expected<SuiteReport> R = JobScheduler::execute(twoJobSuite(), Opts);
  ASSERT_TRUE(R.hasValue()) << R.error();

  EXPECT_EQ(R->Executed, 2u);
  EXPECT_EQ(R->Stalls, 1u);
  const JobResult &J = R->Results[0];
  ASSERT_EQ(J.Attempts.size(), 2u);
  EXPECT_EQ(J.Attempts[0].Outcome, "stalled");
  EXPECT_LT(J.Attempts[0].Seconds, 8.0); // killed well before the 10s nap
  EXPECT_EQ(J.Attempts[1].Outcome, "ok");
}

TEST(FaultTest, CrashLoopQuarantinedWithFullAttemptHistory) {
  // Job 0 SIGABRTs on *every* attempt: retries burn down, the job is
  // quarantined with its complete attempt history, and the rest of the
  // suite still runs — one crash-looping job cannot take down a study.
  ScopedFault Fault("crash@job:0#*");
  std::string LogPath = tempPath("quarantine.ndjson");
  SuiteRunOptions Opts = subprocessOpts();
  Opts.Retries = 2;
  Opts.BackoffSec = 0.01;
  Opts.EventLog = LogPath;
  Expected<SuiteReport> R = JobScheduler::execute(twoJobSuite(), Opts);
  ASSERT_TRUE(R.hasValue()) << R.error();

  EXPECT_EQ(R->Quarantined, 1u);
  EXPECT_EQ(R->Executed, 1u);
  EXPECT_EQ(R->Retries, 2u);
  EXPECT_EQ(R->exitCode(), 3);
  const JobResult &J = R->Results[0];
  EXPECT_EQ(J.S, JobResult::State::Quarantined);
  ASSERT_EQ(J.Attempts.size(), 3u);
  for (const JobAttempt &A : J.Attempts) {
    EXPECT_EQ(A.Outcome, "failed");
    EXPECT_EQ(A.Signal, SIGABRT);
    EXPECT_EQ(A.SignalName, "SIGABRT");
  }

  // Event-log vocabulary: job_retrying per backoff, one job_quarantined
  // carrying the attempt array, and the attempt history in the final
  // report JSON.
  auto Events = json::readNdjsonFile(LogPath);
  ASSERT_TRUE(Events.hasValue()) << Events.error();
  unsigned Retrying = 0, Quarantined = 0;
  for (const Value &Ev : *Events) {
    const std::string Kind = Ev.find("event")->asString();
    if (Kind == "job_retrying") {
      ++Retrying;
      EXPECT_NE(Ev.find("attempt"), nullptr);
      EXPECT_NE(Ev.find("delay_sec"), nullptr);
      EXPECT_EQ(Ev.find("reason")->asString(), "failed");
    } else if (Kind == "job_quarantined") {
      ++Quarantined;
      ASSERT_NE(Ev.find("attempts"), nullptr);
      EXPECT_EQ(Ev.find("attempts")->size(), 3u);
      EXPECT_EQ(Ev.find("spec_hash")->asString(), J.Id);
    }
  }
  EXPECT_EQ(Retrying, 2u);
  EXPECT_EQ(Quarantined, 1u);
  Value Doc = R->toJson();
  const Value &First = Doc.find("results")->at(0);
  ASSERT_NE(First.find("attempts"), nullptr);
  EXPECT_EQ(First.find("attempts")->size(), 3u);
  std::remove(LogPath.c_str());
}

TEST(FaultTest, OomKilledByRlimitWithDecodedReason) {
  // RLIMIT_AS makes the shadow-memory reservation of ASan fail at
  // startup, so this path is only testable in plain builds (CI's
  // sanitizer job skips it; the matrix job runs it).
  if (underAddressSanitizer())
    GTEST_SKIP() << "RLIMIT_AS is incompatible with ASan shadow memory";

  // Attempt 1 of job 0 allocates until the 512 MiB RLIMIT_AS cap
  // aborts it; the classifier must attribute the death to the memory
  // limit and the retry (same limit, no fault) must succeed.
  ScopedFault Fault("oom@job:0#1");
  SuiteRunOptions Opts = subprocessOpts();
  Opts.MemLimitMb = 512;
  Opts.Retries = 1;
  Opts.BackoffSec = 0.01;
  Expected<SuiteReport> R = JobScheduler::execute(twoJobSuite(), Opts);
  ASSERT_TRUE(R.hasValue()) << R.error();

  EXPECT_EQ(R->Executed, 2u);
  const JobResult &J = R->Results[0];
  ASSERT_EQ(J.Attempts.size(), 2u);
  EXPECT_EQ(J.Attempts[0].Outcome, "failed");
  EXPECT_EQ(J.Attempts[0].LimitHit, "mem");
  EXPECT_NE(J.Attempts[0].StderrTail.find("bad_alloc"),
            std::string::npos)
      << J.Attempts[0].StderrTail;
  EXPECT_NE(J.Attempts[0].Error.find("mem limit"), std::string::npos)
      << J.Attempts[0].Error;
  EXPECT_EQ(J.Attempts[1].Outcome, "ok");
}

//===----------------------------------------------------------------------===//
// Graceful shutdown + resume (both scheduler modes, via the real CLI)
//===----------------------------------------------------------------------===//

int runCli(const std::string &Args) {
  std::string Cmd = std::string(WDM_CLI_EXE) + " " + Args +
                    " > /dev/null 2> /dev/null";
  int Status = std::system(Cmd.c_str());
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

/// Forks a `wdm suite run` driver (with WDM_FAULT set for it and its
/// children), SIGTERMs it after \p KillAfterSec, and returns its exit
/// code. `exec` in the shell line keeps the driver as the direct child
/// so the signal reaches the wdm process, not an intermediate sh.
int runDriverAndInterrupt(const std::string &Fault,
                          const std::string &Args, double KillAfterSec) {
  std::string Cmd = "exec " + std::string(WDM_CLI_EXE) + " " + Args +
                    " > /dev/null 2>&1";
  pid_t Pid = fork();
  if (Pid == 0) {
    setenv("WDM_FAULT", Fault.c_str(), 1);
    execl("/bin/sh", "sh", "-c", Cmd.c_str(),
          static_cast<char *>(nullptr));
    _exit(127);
  }
  usleep(static_cast<useconds_t>(KillAfterSec * 1e6));
  kill(Pid, SIGTERM);
  int Status = 0;
  while (waitpid(Pid, &Status, 0) < 0 && errno == EINTR)
    ;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

/// job id -> deterministic per-job summary from a suite report JSON.
std::map<std::string, std::string>
jobSummaries(const std::string &ReportPath) {
  std::map<std::string, std::string> Out;
  auto Doc = Value::parse(readFileText(ReportPath));
  EXPECT_TRUE(Doc.hasValue()) << Doc.error();
  if (!Doc)
    return Out;
  const Value *Rs = Doc->find("results");
  for (size_t I = 0; I < Rs->size(); ++I) {
    const Value &J = Rs->at(I);
    if (!J.find("success"))
      continue; // no report (should not happen in these tests)
    std::ostringstream Key;
    Key << J.find("success")->asBool() << "/"
        << J.find("findings")->asUint() << "/"
        << J.find("evals")->asUint();
    Out[J.find("job")->asString()] = Key.str();
  }
  return Out;
}

void interruptAndResume(const std::string &Mode,
                        const std::string &Fault) {
  std::string SuitePath = tempPath("int_" + Mode + ".json");
  std::string LogPath = tempPath("int_" + Mode + ".ndjson");
  std::string OutPath = tempPath("int_" + Mode + ".report.json");
  std::string RefPath = tempPath("int_" + Mode + ".ref.json");
  writeFile(SuitePath,
            R"({"suite": "int", "defaults": {
                 "search": {"max_evals": 20000, "threads": 1}},
                "matrix": {"subjects": ["fig2"], "tasks": ["boundary"],
                           "seed_base": 70, "seed_count": 3}})");

  // Sequential driver, job 1 blocked by the fault: job 0 checkpoints,
  // jobs 1..2 do not. SIGTERM must produce exit code 4 and a log that
  // is a valid resume checkpoint.
  int Ec = runDriverAndInterrupt(
      Fault,
      "suite run " + SuitePath + " --mode=" + Mode +
          " --shards=1 --grace=0.2 --ndjson " + LogPath,
      1.5);
  EXPECT_EQ(Ec, 4) << Mode;

  auto Events = json::readNdjsonFile(LogPath);
  ASSERT_TRUE(Events.hasValue()) << Events.error();
  unsigned Finished = 0, Interrupted = 0;
  for (const Value &Ev : *Events) {
    const std::string Kind = Ev.find("event")->asString();
    if (Kind == "job_finished")
      ++Finished;
    else if (Kind == "suite_interrupted") {
      ++Interrupted;
      EXPECT_EQ(Ev.find("reason")->asString(), "signal");
    }
    EXPECT_NE(Kind, "suite_done");
  }
  EXPECT_EQ(Finished, 1u) << Mode;
  EXPECT_EQ(Interrupted, 1u) << Mode;

  // Resume (fault cleared) executes exactly the unfinished jobs...
  EXPECT_EQ(runCli("suite run " + SuitePath + " --mode=" + Mode +
                   " --resume --ndjson " + LogPath + " --json " +
                   OutPath),
            1);
  auto Doc = Value::parse(readFileText(OutPath));
  ASSERT_TRUE(Doc.hasValue()) << Doc.error();
  EXPECT_EQ(Doc->find("executed")->asUint(), 2u) << Mode;
  EXPECT_EQ(Doc->find("skipped")->asUint(), 1u) << Mode;

  // ...and its deterministic per-job results match an uninterrupted
  // run byte-for-byte.
  EXPECT_EQ(runCli("suite run " + SuitePath + " --mode=" + Mode +
                   " --json " + RefPath),
            1);
  EXPECT_EQ(jobSummaries(OutPath), jobSummaries(RefPath)) << Mode;

  for (const std::string &P : {SuitePath, LogPath, OutPath, RefPath})
    std::remove(P.c_str());
}

TEST(FaultTest, InterruptedSubprocessSuiteResumes) {
  // hang on every attempt: the child ignores SIGTERM, so shutdown also
  // exercises the driver's kill escalation on the way out.
  interruptAndResume("subprocess", "hang@job:1#*");
}

TEST(FaultTest, InterruptedInprocessSuiteResumes) {
  // Threads cannot be killed: the driver-side sleep fault opens the
  // shutdown window before job 1 is dispatched.
  interruptAndResume("inprocess", "sleep:30@job:1#*");
}

#endif // WDM_CLI_EXE

} // namespace
