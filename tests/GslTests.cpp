//===--- GslTests.cpp - Mini-GSL model tests ------------------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "gsl/Airy.h"
#include "gsl/Bessel.h"
#include "gsl/Hyperg.h"
#include "instrument/Sites.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace wdm;
using namespace wdm::exec;
using namespace wdm::gsl;

namespace {

/// Fixture holding one module with all three special functions.
class GslModelTest : public ::testing::Test {
protected:
  GslModelTest()
      : Bessel(buildBesselKnuScaledAsympx(M)), Hyperg(buildHyperg2F0(M)),
        Airy(buildAiryAi(M)), E(M), Ctx(M) {}

  struct Outcome {
    int64_t Status;
    double Val;
    double Err;
  };

  Outcome run(const SfFunction &Fn, std::initializer_list<double> Args) {
    Ctx.resetGlobals();
    std::vector<RTValue> A;
    for (double V : Args)
      A.push_back(RTValue::ofDouble(V));
    ExecResult R = E.run(Fn.F, A, Ctx);
    EXPECT_TRUE(R.ok());
    return {R.ReturnValue.asInt(),
            Ctx.getGlobal(Fn.Result.Val).asDouble(),
            Ctx.getGlobal(Fn.Result.Err).asDouble()};
  }

  ir::Module M;
  SfFunction Bessel;
  SfFunction Hyperg;
  AiryModel Airy;
  Engine E;
  ExecContext Ctx;
};

TEST_F(GslModelTest, ModuleVerifies) {
  Status S = ir::verifyModule(M);
  EXPECT_TRUE(S.ok()) << S.message();
}

TEST_F(GslModelTest, OpCountsMatchPaper) {
  // Table 3's |Op| column: 23 / 8 / 26 in the paper; our airy model has
  // 27 (documented substitution).
  ir::Module M2;
  SfFunction B2 = buildBesselKnuScaledAsympx(M2);
  EXPECT_EQ(instr::assignFPOpSites(*B2.F).size(), BesselNumFPOps);
  ir::Module M3;
  SfFunction H2 = buildHyperg2F0(M3);
  EXPECT_EQ(instr::assignFPOpSites(*H2.F).size(), HypergNumFPOps);
  ir::Module M4;
  AiryModel A2 = buildAiryAi(M4);
  EXPECT_EQ(instr::assignFPOpSites(*A2.Airy.F).size(), AiryNumFPOps);
}

TEST_F(GslModelTest, BesselMatchesReferenceFormula) {
  // The IR transcription must agree bit-for-bit with the same C++
  // double computation.
  for (auto [Nu, X] : {std::pair{1.5, 2.0}, {0.5, 10.0}, {4.0, 0.3}}) {
    Outcome O = run(Bessel, {Nu, X});
    double Mu = 4.0 * Nu * Nu;
    double Mum1 = Mu - 1.0;
    double Mum9 = Mu - 9.0;
    double Pre = std::sqrt(M_PI / (2.0 * X));
    double R = Nu / X;
    double Val = Pre * (1.0 + Mum1 / (8.0 * X) +
                        Mum1 * Mum9 / (128.0 * X * X));
    double Err = 2.0 * GslDblEpsilon * std::fabs(Val) +
                 Pre * std::fabs(0.1 * R * R * R);
    EXPECT_EQ(O.Status, GSL_SUCCESS);
    EXPECT_EQ(O.Val, Val);
    EXPECT_EQ(O.Err, Err);
  }
}

TEST_F(GslModelTest, BesselPaperOverflowInputs) {
  // Paper Section 4.4: nu = 1.8e308 overflows l1 (4.0 * nu); nu = 3.2e157
  // overflows l2 (t * nu). Both leave val/err non-finite with
  // GSL_SUCCESS — inconsistencies.
  Outcome O1 = run(Bessel, {1.7e308, -1.5e2});
  EXPECT_EQ(O1.Status, GSL_SUCCESS);
  EXPECT_FALSE(std::isfinite(O1.Val));

  Outcome O2 = run(Bessel, {3.2e157, 5.3e1});
  EXPECT_EQ(O2.Status, GSL_SUCCESS);
  EXPECT_FALSE(std::isfinite(O2.Val));

  // Negative x: sqrt of a negative — NaN result, still GSL_SUCCESS.
  Outcome O3 = run(Bessel, {8.4e77, -2.5e2});
  EXPECT_EQ(O3.Status, GSL_SUCCESS);
  EXPECT_TRUE(std::isnan(O3.Val));
}

TEST_F(GslModelTest, BesselBenignInputsAreConsistent) {
  Outcome O = run(Bessel, {1.5, 2.0});
  EXPECT_EQ(O.Status, GSL_SUCCESS);
  EXPECT_TRUE(std::isfinite(O.Val));
  EXPECT_TRUE(std::isfinite(O.Err));
}

TEST_F(GslModelTest, HypergDomainError) {
  Outcome O = run(Hyperg, {1.0, 2.0, 0.5}); // x >= 0: EDOM
  EXPECT_EQ(O.Status, GSL_EDOM);
  Outcome O2 = run(Hyperg, {1.0, 2.0, -0.5});
  EXPECT_EQ(O2.Status, GSL_SUCCESS);
  EXPECT_TRUE(std::isfinite(O2.Val));
}

TEST_F(GslModelTest, HypergTable5Inconsistencies) {
  // Large exponent of pow: pre = pow(-1/x, a) = pow(big, big).
  Outcome O1 = run(Hyperg, {-6.2e2, -3.7e2, -1.5e2});
  EXPECT_EQ(O1.Status, GSL_SUCCESS);
  EXPECT_FALSE(std::isfinite(O1.Val));

  // Large operands of *: a*b*z overflows.
  Outcome O2 = run(Hyperg, {-1.4e200, -1.2e200, -1.0e-10});
  EXPECT_EQ(O2.Status, GSL_SUCCESS);
  EXPECT_FALSE(std::isfinite(O2.Val));
}

TEST_F(GslModelTest, AiryRegionsAreReasonable) {
  // Decay region: Ai(1) ~ 0.1353, Ai(5) tiny.
  Outcome O1 = run(Airy.Airy, {1.0});
  EXPECT_EQ(O1.Status, GSL_SUCCESS);
  EXPECT_NEAR(O1.Val, 0.1353, 0.05);
  Outcome O5 = run(Airy.Airy, {5.0});
  EXPECT_LT(std::fabs(O5.Val), 1e-3);

  // Middle region: Ai(0) = 0.35502...
  Outcome O0 = run(Airy.Airy, {0.0});
  EXPECT_NEAR(O0.Val, 0.3550280538878172, 1e-12);

  // Oscillatory region: |Ai| stays below ~0.8 for moderate negatives.
  for (double X : {-2.0, -3.0, -5.0, -10.0}) {
    Outcome O = run(Airy.Airy, {X});
    EXPECT_EQ(O.Status, GSL_SUCCESS);
    EXPECT_TRUE(std::isfinite(O.Val)) << "x = " << X;
    EXPECT_LT(std::fabs(O.Val), 1.0) << "x = " << X;
  }
}

TEST_F(GslModelTest, AiryBug1DivisionByZero) {
  Outcome O = run(Airy.Airy, {AiryBug1Input});
  EXPECT_EQ(O.Status, GSL_SUCCESS);
  EXPECT_FALSE(std::isfinite(O.Val));
  // One ulp away everything is fine (the paper's perturbation check).
  Outcome Near = run(Airy.Airy, {std::nextafter(AiryBug1Input, -2.0)});
  EXPECT_TRUE(std::isfinite(Near.Val));
}

TEST_F(GslModelTest, AiryBug2CosineBlowup) {
  // Huge negative inputs: the phase-error correction explodes inside
  // cos_err; val leaves [-1,1]*modulus scale and becomes +-inf, while the
  // status still says success. (Paper: x = -1.14e34 gave -inf.)
  Outcome O = run(Airy.Airy, {-1.14e57});
  EXPECT_EQ(O.Status, GSL_SUCCESS);
  EXPECT_FALSE(std::isfinite(O.Val));

  // Still-huge-but-smaller inputs stay finite but are mathematically
  // garbage; tiny oscillatory inputs are fine.
  Outcome OSmall = run(Airy.Airy, {-20.0});
  EXPECT_TRUE(std::isfinite(OSmall.Val));
}

TEST_F(GslModelTest, CosErrHelperHonestRange) {
  // For modest inputs the helper returns a genuine cosine.
  Outcome O = run(Airy.CosErr, {1.0, 1e-16});
  EXPECT_EQ(O.Status, GSL_SUCCESS);
  EXPECT_NEAR(O.Val, std::cos(1.0), 1e-10);
  EXPECT_GE(O.Err, 0.0);
  // For huge dtheta it silently produces garbage — the bug.
  Outcome Bad = run(Airy.CosErr, {1.0, 1e200});
  EXPECT_EQ(Bad.Status, GSL_SUCCESS);
  EXPECT_FALSE(std::isfinite(Bad.Val));
}

} // namespace
