//===--- IRTests.cpp - Mini-IR unit tests --------------------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "gsl/Airy.h"
#include "gsl/Bessel.h"
#include "gsl/Hyperg.h"
#include "ir/Dominators.h"
#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "subjects/Fig1.h"
#include "subjects/Fig2.h"
#include "subjects/SinModel.h"
#include "subjects/TestPrograms.h"

#include <gtest/gtest.h>

using namespace wdm;
using namespace wdm::ir;

namespace {

// --------------------------------------------------------------------------
// Module / constants
// --------------------------------------------------------------------------

TEST(ModuleTest, ConstantUniquing) {
  Module M;
  EXPECT_EQ(M.constDouble(1.5), M.constDouble(1.5));
  EXPECT_NE(M.constDouble(1.5), M.constDouble(2.5));
  // Bit-pattern uniquing: 0.0 and -0.0 are distinct constants.
  EXPECT_NE(M.constDouble(0.0), M.constDouble(-0.0));
  EXPECT_EQ(M.constInt(7), M.constInt(7));
  EXPECT_EQ(M.constBool(true), M.constBool(true));
  EXPECT_NE(M.constBool(true), M.constBool(false));
}

TEST(ModuleTest, FunctionAndGlobalLookup) {
  Module M;
  Function *F = M.addFunction("f", Type::Double);
  GlobalVar *G = M.addGlobalDouble("g", 3.0);
  EXPECT_EQ(M.functionByName("f"), F);
  EXPECT_EQ(M.globalByName("g"), G);
  EXPECT_EQ(M.functionByName("missing"), nullptr);
  EXPECT_EQ(M.globalByName("missing"), nullptr);
}

TEST(ModuleTest, SiteIdAllocationMonotone) {
  Module M;
  int A = M.allocateSiteId();
  int B = M.allocateSiteId();
  EXPECT_EQ(B, A + 1);
  EXPECT_EQ(M.numSiteIds(), 2);
}

// --------------------------------------------------------------------------
// Casting
// --------------------------------------------------------------------------

TEST(CastingTest, IsaCastDynCast) {
  Module M;
  Value *C = M.constDouble(1.0);
  EXPECT_TRUE(isa<ConstantDouble>(C));
  EXPECT_FALSE(isa<ConstantInt>(C));
  EXPECT_EQ(cast<ConstantDouble>(C)->value(), 1.0);
  EXPECT_EQ(dyn_cast<ConstantInt>(C), nullptr);
  EXPECT_NE(dyn_cast<ConstantDouble>(C), nullptr);
}

// --------------------------------------------------------------------------
// Verifier
// --------------------------------------------------------------------------

TEST(VerifierTest, AcceptsCorpus) {
  Module M;
  subjects::buildFig2(M);
  subjects::buildFig1a(M);
  subjects::buildFig1b(M);
  subjects::buildSinModel(M);
  subjects::buildStraightline(M);
  subjects::buildLoopAccum(M);
  subjects::buildInfiniteLoop(M);
  subjects::buildTrapAlways(M);
  subjects::buildClassifier(M);
  subjects::buildCallChain(M);
  gsl::buildBesselKnuScaledAsympx(M);
  gsl::buildHyperg2F0(M);
  gsl::buildAiryAi(M);
  Status S = verifyModule(M);
  EXPECT_TRUE(S.ok()) << S.message();
}

TEST(VerifierTest, RejectsUnterminatedBlock) {
  Module M;
  Function *F = M.addFunction("f", Type::Double);
  Argument *X = F->addArg(Type::Double, "x");
  IRBuilder B(M);
  B.setInsertAppend(F->addBlock("entry"));
  B.fadd(X, B.lit(1.0)); // no terminator
  EXPECT_FALSE(verifyFunction(*F).ok());
}

TEST(VerifierTest, RejectsEmptyFunction) {
  Module M;
  Function *F = M.addFunction("f", Type::Void);
  EXPECT_FALSE(verifyFunction(*F).ok());
}

TEST(VerifierTest, RejectsTerminatorMidBlock) {
  Module M;
  Function *F = M.addFunction("f", Type::Void);
  BasicBlock *BB = F->addBlock("entry");
  IRBuilder B(M);
  B.setInsertAppend(BB);
  B.ret();
  B.ret();
  EXPECT_FALSE(verifyFunction(*F).ok());
}

TEST(VerifierTest, RejectsOperandTypeMismatch) {
  Module M;
  Function *F = M.addFunction("f", Type::Double);
  Argument *X = F->addArg(Type::Double, "x");
  BasicBlock *BB = F->addBlock("entry");
  // fadd(double, int) is ill-typed; build the instruction by hand since
  // the builder would not produce it.
  auto Bad = std::make_unique<Instruction>(
      Opcode::FAdd, Type::Double,
      std::vector<Value *>{X, M.constInt(1)});
  BB->append(std::move(Bad));
  IRBuilder B(M);
  B.setInsertAppend(BB);
  B.ret(X);
  EXPECT_FALSE(verifyFunction(*F).ok());
}

TEST(VerifierTest, RejectsUseBeforeDef) {
  Module M;
  Function *F = M.addFunction("f", Type::Double);
  Argument *X = F->addArg(Type::Double, "x");
  BasicBlock *BB = F->addBlock("entry");
  // Build "%b = fadd %a, 1; %a = fadd %x, 1; ret %b" by hand.
  auto DefA = std::make_unique<Instruction>(
      Opcode::FAdd, Type::Double, std::vector<Value *>{X, M.constDouble(1)},
      "a");
  Instruction *ARaw = DefA.get();
  auto DefB = std::make_unique<Instruction>(
      Opcode::FAdd, Type::Double,
      std::vector<Value *>{ARaw, M.constDouble(1)}, "b");
  Instruction *BRaw = DefB.get();
  BB->append(std::move(DefB)); // b first: uses a before definition
  BB->append(std::move(DefA));
  auto Ret = std::make_unique<Instruction>(Opcode::Ret, Type::Void,
                                           std::vector<Value *>{BRaw});
  BB->append(std::move(Ret));
  EXPECT_FALSE(verifyFunction(*F).ok());
}

TEST(VerifierTest, RejectsNonDominatingDef) {
  Module M;
  Function *F = M.addFunction("f", Type::Double);
  Argument *X = F->addArg(Type::Double, "x");
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Left = F->addBlock("left");
  BasicBlock *Right = F->addBlock("right");
  BasicBlock *Join = F->addBlock("join");
  IRBuilder B(M);
  B.setInsertAppend(Entry);
  Value *C = B.fcmp(CmpPred::LT, X, B.lit(0.0));
  B.condbr(C, Left, Right);
  B.setInsertAppend(Left);
  Instruction *OnlyLeft = B.fadd(X, B.lit(1.0), "l");
  B.br(Join);
  B.setInsertAppend(Right);
  B.br(Join);
  B.setInsertAppend(Join);
  B.ret(OnlyLeft); // Left does not dominate Join
  EXPECT_FALSE(verifyFunction(*F).ok());
}

TEST(VerifierTest, RejectsCallArityMismatch) {
  Module M;
  Function *G = M.addFunction("g", Type::Double);
  G->addArg(Type::Double, "a");
  G->addArg(Type::Double, "b");
  IRBuilder B(M);
  B.setInsertAppend(G->addBlock("entry"));
  B.ret(B.lit(0.0));

  Function *F = M.addFunction("f", Type::Double);
  Argument *X = F->addArg(Type::Double, "x");
  BasicBlock *BB = F->addBlock("entry");
  auto BadCall = std::make_unique<Instruction>(
      Opcode::Call, Type::Double, std::vector<Value *>{X});
  BadCall->setCallee(G);
  Instruction *CallRaw = BB->append(std::move(BadCall));
  B.setInsertAppend(BB);
  B.ret(CallRaw);
  EXPECT_FALSE(verifyFunction(*F).ok());
}

TEST(VerifierTest, RejectsWrongReturnType) {
  Module M;
  Function *F = M.addFunction("f", Type::Int);
  Argument *X = F->addArg(Type::Double, "x");
  IRBuilder B(M);
  B.setInsertAppend(F->addBlock("entry"));
  auto Ret = std::make_unique<Instruction>(Opcode::Ret, Type::Void,
                                           std::vector<Value *>{X});
  F->entry()->append(std::move(Ret));
  EXPECT_FALSE(verifyFunction(*F).ok());
}

// --------------------------------------------------------------------------
// Dominators
// --------------------------------------------------------------------------

TEST(DominatorsTest, Diamond) {
  Module M;
  Function *F = M.addFunction("f", Type::Void);
  Argument *X = F->addArg(Type::Double, "x");
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *L = F->addBlock("l");
  BasicBlock *R = F->addBlock("r");
  BasicBlock *J = F->addBlock("j");
  IRBuilder B(M);
  B.setInsertAppend(Entry);
  B.condbr(B.fcmp(CmpPred::LT, X, B.lit(0.0)), L, R);
  B.setInsertAppend(L);
  B.br(J);
  B.setInsertAppend(R);
  B.br(J);
  B.setInsertAppend(J);
  B.ret();

  DominatorInfo D(*F);
  EXPECT_TRUE(D.dominates(Entry, J));
  EXPECT_TRUE(D.dominates(Entry, L));
  EXPECT_FALSE(D.dominates(L, J));
  EXPECT_FALSE(D.dominates(R, J));
  EXPECT_TRUE(D.dominates(J, J));
  EXPECT_EQ(D.idom(J), Entry);
  EXPECT_EQ(D.idom(Entry), nullptr);
}

TEST(DominatorsTest, LoopAndUnreachable) {
  Module M;
  Function *F = subjects::buildLoopAccum(M);
  DominatorInfo D(*F);
  BasicBlock *Entry = F->entry();
  BasicBlock *Header = F->blockByName("header");
  BasicBlock *Body = F->blockByName("body");
  BasicBlock *Exit = F->blockByName("exit");
  EXPECT_TRUE(D.dominates(Header, Body));
  EXPECT_TRUE(D.dominates(Header, Exit));
  EXPECT_FALSE(D.dominates(Body, Exit));
  EXPECT_EQ(D.idom(Body), Header);
  EXPECT_TRUE(D.reachable(Entry));

  // An unreachable block is flagged.
  Function *G = M.addFunction("g", Type::Void);
  IRBuilder B(M);
  B.setInsertAppend(G->addBlock("entry"));
  B.ret();
  BasicBlock *Orphan = G->addBlock("orphan");
  B.setInsertAppend(Orphan);
  B.ret();
  DominatorInfo DG(*G);
  EXPECT_FALSE(DG.reachable(Orphan));
}

// --------------------------------------------------------------------------
// Printer / Parser round trip
// --------------------------------------------------------------------------

/// Builds a corpus module, prints it, parses it back, prints again, and
/// requires identical text (print is deterministic, so this is a strong
/// structural-equality check).
void expectRoundTrip(Module &M) {
  std::string First = toString(M);
  auto Parsed = parseModule(First);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error() << "\n" << First;
  Status S = verifyModule(**Parsed);
  EXPECT_TRUE(S.ok()) << S.message();
  std::string Second = toString(**Parsed);
  EXPECT_EQ(First, Second);
}

TEST(ParserTest, RoundTripFig2) {
  Module M("fig2");
  subjects::buildFig2(M);
  expectRoundTrip(M);
}

TEST(ParserTest, RoundTripFig1) {
  Module M("fig1");
  subjects::buildFig1a(M);
  subjects::buildFig1b(M);
  expectRoundTrip(M);
}

TEST(ParserTest, RoundTripSinModel) {
  Module M("sin");
  subjects::buildSinModel(M);
  expectRoundTrip(M);
}

TEST(ParserTest, RoundTripGslModels) {
  Module M("gsl");
  gsl::buildBesselKnuScaledAsympx(M);
  gsl::buildHyperg2F0(M);
  gsl::buildAiryAi(M);
  expectRoundTrip(M);
}

TEST(ParserTest, RoundTripTestPrograms) {
  Module M("corpus");
  subjects::buildStraightline(M);
  subjects::buildLoopAccum(M);
  subjects::buildTrapAlways(M);
  subjects::buildClassifier(M);
  subjects::buildCallChain(M);
  expectRoundTrip(M);
}

TEST(ParserTest, ParsesHandWrittenModule) {
  const char *Text = R"(
module "hand"
global @w : double = 1.0

func @f(%x: double) -> double {
entry:
  %c = fcmp.le %x, 1.0
  condbr %c, then, done
then:
  %y = fadd %x, 1.5
  storeg @w, %y
  br done
done:
  %r = loadg @w
  ret %r
}
)";
  auto Parsed = parseModule(Text);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  Module &M = **Parsed;
  EXPECT_EQ(M.name(), "hand");
  ASSERT_NE(M.functionByName("f"), nullptr);
  EXPECT_TRUE(verifyModule(M).ok());
}

TEST(ParserTest, ParsesForwardCall) {
  const char *Text = R"(
func @f(%x: double) -> double {
entry:
  %r = call @g(%x)
  ret %r
}

func @g(%x: double) -> double {
entry:
  ret %x
}
)";
  auto Parsed = parseModule(Text);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  EXPECT_TRUE(verifyModule(**Parsed).ok());
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto R1 = parseModule("func @f(%x: double) -> double {\nentry:\n  %y = "
                        "bogus %x\n  ret %y\n}\n");
  ASSERT_FALSE(R1.hasValue());
  EXPECT_NE(R1.error().find("line 3"), std::string::npos) << R1.error();

  auto R2 = parseModule("func @f() -> void {\nentry:\n  ret\n"); // no '}'
  ASSERT_FALSE(R2.hasValue());

  auto R3 = parseModule("func @f(%x: double) -> double {\nentry:\n  %y = "
                        "fadd %nope, 1.0\n  ret %y\n}\n");
  ASSERT_FALSE(R3.hasValue());
  EXPECT_NE(R3.error().find("nope"), std::string::npos);
}

TEST(PrinterTest, AnnotationsAndSiteIdsSurvive) {
  Module M;
  Function *F = M.addFunction("f", Type::Double);
  Argument *X = F->addArg(Type::Double, "x");
  IRBuilder B(M);
  B.setInsertAppend(F->addBlock("entry"));
  Instruction *Add = B.fadd(X, B.lit(1.0), "y");
  Add->setAnnotation("x + 1 \"quoted\"");
  Add->setId(5);
  B.ret(Add);

  auto Parsed = parseModule(toString(M));
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  const Function *PF = (*Parsed)->functionByName("f");
  ASSERT_NE(PF, nullptr);
  const Instruction *PAdd = PF->entry()->inst(0);
  EXPECT_EQ(PAdd->annotation(), "x + 1 \"quoted\"");
  EXPECT_EQ(PAdd->id(), 5);
}

} // namespace
