//===--- InstrumentTests.cpp - Instrumentation pass tests ----------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "gsl/Bessel.h"
#include "instrument/BoundaryPass.h"
#include "instrument/BranchDistance.h"
#include "instrument/Cloner.h"
#include "instrument/CoveragePass.h"
#include "instrument/IRWeakDistance.h"
#include "instrument/Observers.h"
#include "instrument/OverflowPass.h"
#include "instrument/PathPass.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "subjects/Fig2.h"
#include "subjects/SinModel.h"
#include "subjects/TestPrograms.h"
#include "support/FPUtils.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace wdm;
using namespace wdm::exec;
using namespace wdm::instr;
using namespace wdm::ir;

namespace {

// --------------------------------------------------------------------------
// Cloner
// --------------------------------------------------------------------------

TEST(ClonerTest, CloneIsSemanticallyIdentical) {
  Module M;
  subjects::Fig2 P = subjects::buildFig2(M);
  Function *Clone = cloneFunction(*P.F, "fig2.copy");
  ASSERT_TRUE(verifyModule(M).ok()) << verifyModule(M).message();

  Engine E(M);
  ExecContext Ctx(M);
  RNG R(21);
  for (int I = 0; I < 200; ++I) {
    double X = I < 100 ? R.uniform(-10, 10) : R.anyFiniteDouble();
    ExecResult A = E.run(P.F, {RTValue::ofDouble(X)}, Ctx);
    ExecResult B = E.run(Clone, {RTValue::ofDouble(X)}, Ctx);
    ASSERT_TRUE(A.ok() && B.ok());
    EXPECT_EQ(bitsOf(A.ReturnValue.asDouble()),
              bitsOf(B.ReturnValue.asDouble()))
        << "at x = " << X;
  }
}

TEST(ClonerTest, PreservesIdsAndAnnotations) {
  Module M;
  subjects::Fig2 P = subjects::buildFig2(M);
  SiteTable Sites = assignComparisonSites(*P.F);
  ASSERT_EQ(Sites.size(), 2u);
  std::unordered_map<const Instruction *, Instruction *> Map;
  Function *Clone = cloneFunction(*P.F, "fig2.copy", &Map);
  (void)Clone;
  for (const Site &S : Sites) {
    auto It = Map.find(S.Inst);
    ASSERT_NE(It, Map.end());
    EXPECT_EQ(It->second->id(), S.Id);
    EXPECT_EQ(It->second->annotation(), S.Inst->annotation());
  }
}

// --------------------------------------------------------------------------
// Site assignment
// --------------------------------------------------------------------------

TEST(SitesTest, CountsPerKind) {
  Module M;
  Function *F = subjects::buildClassifier(M);
  SiteTable Cmps = assignComparisonSites(*F);
  EXPECT_EQ(Cmps.size(), 4u);
  SiteTable Branches = assignBranchSites(*F);
  EXPECT_EQ(Branches.size(), 8u); // two directions per condbr

  Module M2;
  Function *S = subjects::buildStraightline(M2);
  SiteTable Ops = assignFPOpSites(*S);
  EXPECT_EQ(Ops.size(), 3u); // fadd, fsub, fmul
}

TEST(SitesTest, TableLookup) {
  Module M;
  subjects::Fig2 P = subjects::buildFig2(M);
  SiteTable Sites = assignComparisonSites(*P.F);
  const Site *First = Sites.byId(Sites[0].Id);
  ASSERT_NE(First, nullptr);
  EXPECT_EQ(First->Kind, SiteKind::Comparison);
  EXPECT_EQ(Sites.byId(99999), nullptr);
}

// --------------------------------------------------------------------------
// Branch distances (parameterized over predicate x desired outcome)
// --------------------------------------------------------------------------

struct DistCase {
  CmpPred Pred;
  bool Desired;
  double A, B;
  double Expected;
};

class BranchDistanceTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(BranchDistanceTest, Matches) {
  const DistCase &C = GetParam();
  Module M;
  Function *F = M.addFunction("f", Type::Double);
  Argument *A = F->addArg(Type::Double, "a");
  Argument *B = F->addArg(Type::Double, "b");
  IRBuilder Bld(M);
  Bld.setInsertAppend(F->addBlock("entry"));
  Instruction *Cmp = Bld.fcmp(C.Pred, A, B);
  Value *D = emitDistanceToOutcome(Bld, Cmp, C.Desired);
  Bld.ret(D);
  ASSERT_TRUE(verifyModule(M).ok()) << verifyModule(M).message();

  Engine E(M);
  ExecContext Ctx(M);
  ExecResult R =
      E.run(F, {RTValue::ofDouble(C.A), RTValue::ofDouble(C.B)}, Ctx);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue.asDouble(), C.Expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllPreds, BranchDistanceTest,
    ::testing::Values(
        // LE desired-true: a <= b ? 0 : a - b (Fig. 4's injection).
        DistCase{CmpPred::LE, true, 1.0, 3.0, 0.0},
        DistCase{CmpPred::LE, true, 5.0, 3.0, 2.0},
        DistCase{CmpPred::LE, true, 3.0, 3.0, 0.0},
        // LE desired-false == GT: strict predicates add +1 on violation.
        DistCase{CmpPred::LE, false, 3.0, 3.0, 1.0},
        DistCase{CmpPred::LE, false, 1.0, 3.0, 3.0},
        DistCase{CmpPred::LE, false, 4.0, 3.0, 0.0},
        // LT desired-true.
        DistCase{CmpPred::LT, true, 3.0, 3.0, 1.0},
        DistCase{CmpPred::LT, true, 2.0, 3.0, 0.0},
        // EQ both ways.
        DistCase{CmpPred::EQ, true, 2.0, 5.0, 3.0},
        DistCase{CmpPred::EQ, true, 5.0, 5.0, 0.0},
        DistCase{CmpPred::EQ, false, 5.0, 5.0, 1.0},
        DistCase{CmpPred::EQ, false, 2.0, 5.0, 0.0},
        // GE / GT.
        DistCase{CmpPred::GE, true, 2.0, 5.0, 3.0},
        DistCase{CmpPred::GT, true, 5.0, 5.0, 1.0},
        DistCase{CmpPred::GT, false, 5.0, 4.0, 1.0}));

TEST(BranchDistanceTest, IntegerComparison) {
  Module M;
  Function *F = M.addFunction("f", Type::Double);
  Argument *X = F->addArg(Type::Double, "x");
  IRBuilder B(M);
  B.setInsertAppend(F->addBlock("entry"));
  Value *HW = B.highword(X);
  Value *K = B.iand(HW, B.litInt(0x7fffffff));
  Instruction *Cmp = B.icmp(CmpPred::LT, K, B.litInt(0x3ff00000));
  Value *D = emitBoundaryDistance(B, Cmp);
  B.ret(D);
  Engine E(M);
  ExecContext Ctx(M);
  // |highword(2.0) & mask - 0x3ff00000| = |0x40000000 - 0x3ff00000|.
  double Expected = static_cast<double>(0x40000000 - 0x3ff00000);
  EXPECT_EQ(E.run(F, {RTValue::ofDouble(2.0)}, Ctx).ReturnValue.asDouble(),
            Expected);
  // At 1.0 the distance vanishes: boundary condition.
  EXPECT_EQ(E.run(F, {RTValue::ofDouble(1.0)}, Ctx).ReturnValue.asDouble(),
            0.0);
}

TEST(BranchDistanceTest, NegatePredInvolution) {
  for (CmpPred P : {CmpPred::EQ, CmpPred::NE, CmpPred::LT, CmpPred::LE,
                    CmpPred::GT, CmpPred::GE})
    EXPECT_EQ(negatePred(negatePred(P)), P);
}

// --------------------------------------------------------------------------
// Boundary pass
// --------------------------------------------------------------------------

/// Def. 3.1(a): W >= 0 everywhere. Property-checked over random inputs
/// for both accumulation forms.
class BoundaryFormTest
    : public ::testing::TestWithParam<instr::BoundaryForm> {};

TEST_P(BoundaryFormTest, NonNegativeEverywhere) {
  Module M;
  subjects::Fig2 P = subjects::buildFig2(M);
  BoundaryInstrumentation BI = instrumentBoundary(*P.F, GetParam());
  ASSERT_TRUE(verifyModule(M).ok()) << verifyModule(M).message();
  Engine E(M);
  ExecContext Ctx(M);
  IRWeakDistance W(E, BI.Wrapped, BI.W, BI.WInit, Ctx);

  RNG R(31);
  for (int I = 0; I < 500; ++I) {
    double X = I < 250 ? R.uniform(-20, 20) : R.anyFiniteDouble();
    double V = W({X});
    EXPECT_GE(V, 0.0) << "at x = " << X;
  }
}

TEST_P(BoundaryFormTest, ZeroExactlyOnBoundaryValues) {
  Module M;
  subjects::Fig2 P = subjects::buildFig2(M);
  BoundaryInstrumentation BI = instrumentBoundary(*P.F, GetParam());
  Engine E(M);
  ExecContext WCtx(M), PCtx(M);
  IRWeakDistance W(E, BI.Wrapped, BI.W, BI.WInit, WCtx);

  auto IsBoundary = [&](double X) {
    BoundaryHitObserver Obs;
    PCtx.resetGlobals();
    PCtx.setObserver(&Obs);
    E.run(P.F, {RTValue::ofDouble(X)}, PCtx);
    PCtx.setObserver(nullptr);
    return Obs.any();
  };

  RNG R(32);
  for (int I = 0; I < 300; ++I) {
    double X;
    switch (I % 5) {
    case 0:
      X = 1.0;
      break;
    case 1:
      X = -3.0;
      break;
    case 2:
      X = 2.0;
      break;
    default:
      X = R.uniform(-20, 20);
      break;
    }
    EXPECT_EQ(W({X}) == 0.0, IsBoundary(X)) << "at x = " << X;
  }
}

INSTANTIATE_TEST_SUITE_P(Forms, BoundaryFormTest,
                         ::testing::Values(instr::BoundaryForm::Product,
                                           instr::BoundaryForm::Min,
                                           instr::BoundaryForm::MinUlp));

TEST(BoundaryPassTest, InstrumentationPreservesSemantics) {
  Module M;
  subjects::Fig2 P = subjects::buildFig2(M);
  BoundaryInstrumentation BI = instrumentBoundary(*P.F);
  Engine E(M);
  ExecContext Ctx(M);
  RNG R(33);
  for (int I = 0; I < 200; ++I) {
    double X = R.uniform(-100, 100);
    double Orig = E.run(P.F, {RTValue::ofDouble(X)}, Ctx)
                      .ReturnValue.asDouble();
    double Wrapped = E.run(BI.Wrapped, {RTValue::ofDouble(X)}, Ctx)
                         .ReturnValue.asDouble();
    EXPECT_EQ(bitsOf(Orig), bitsOf(Wrapped)) << "at x = " << X;
  }
}

TEST(BoundaryPassTest, ProductClampPreventsNaN) {
  // A subject whose first comparison has an *infinite* |a-b| and whose
  // second hits a boundary: without the pass's clamping, the product
  // would evaluate 0 * inf = NaN and destroy the zero (a Limitation 2
  // hazard).
  Module M;
  Function *F = M.addFunction("f", Type::Double);
  Argument *X = F->addArg(Type::Double, "x");
  IRBuilder B(M);
  B.setInsertAppend(F->addBlock("entry"));
  Value *Big = B.fmul(X, B.lit(1e308)); // inf for x = 1e307
  Value *C1 = B.fcmp(CmpPred::LE, Big, B.lit(0.0));
  Value *Y = B.select(C1, B.lit(1.0), B.lit(2.0));
  Value *C2 = B.fcmp(CmpPred::EQ, X, B.lit(1e307));
  Value *Z = B.select(C2, Y, B.lit(3.0));
  B.ret(Z);
  ASSERT_TRUE(verifyModule(M).ok()) << verifyModule(M).message();

  BoundaryInstrumentation BI = instrumentBoundary(*F);
  Engine E(M);
  ExecContext Ctx(M);
  IRWeakDistance W(E, BI.Wrapped, BI.W, BI.WInit, Ctx);
  // x = 1e307: |Big - 0| = inf at the first comparison, |x - 1e307| = 0
  // at the second. The weak distance must be exactly 0, not NaN.
  EXPECT_EQ(W({1e307}), 0.0);
}

TEST(BoundaryPassTest, SinModelBoundaryExactness) {
  Module M;
  subjects::SinModel Sin = subjects::buildSinModel(M);
  BoundaryInstrumentation BI = instrumentBoundary(*Sin.F);
  Engine E(M);
  ExecContext Ctx(M);
  IRWeakDistance W(E, BI.Wrapped, BI.W, BI.WInit, Ctx);
  for (unsigned I = 0; I < 4; ++I) {
    double Ref = Sin.refBoundary(I);
    EXPECT_EQ(W({Ref}), 0.0);
    // One ulp below the threshold the high word changes, so the boundary
    // no longer triggers... but only when the low word wraps; going a full
    // high-word step away definitely leaves the boundary.
    double Away = fromBits(bitsOf(Ref) + (1ull << 33));
    EXPECT_GT(W({Away}), 0.0) << "threshold " << I;
  }
}

// --------------------------------------------------------------------------
// Path pass
// --------------------------------------------------------------------------

TEST(PathPassTest, UnreachedLegKeepsWPositive) {
  // Requiring only the inner `x == 42` branch of the classifier: inputs
  // that never reach it (x < 0) must NOT have weak distance 0.
  Module M;
  Function *F = subjects::buildClassifier(M);
  // The third condbr in layout order is `is.magic`.
  std::vector<const Instruction *> Branches;
  F->forEachInst([&](const Instruction *I) {
    if (I->opcode() == Opcode::CondBr)
      Branches.push_back(I);
  });
  ASSERT_EQ(Branches.size(), 4u);
  PathSpec Spec;
  Spec.Legs.push_back({Branches[3], true}); // is.magic == true

  PathInstrumentation PI = instrumentPath(*F, Spec);
  ASSERT_TRUE(verifyModule(M).ok()) << verifyModule(M).message();
  Engine E(M);
  ExecContext Ctx(M);
  IRWeakDistance W(E, PI.Wrapped, PI.W, PI.WInit, Ctx);

  EXPECT_EQ(W({42.0}), 0.0);
  EXPECT_GT(W({43.0}), 0.0);
  // x = -5 diverts at the first branch; the leg is never visited. The
  // first-visit discount never fires, so W stays at least 1.
  EXPECT_GE(W({-5.0}), 1.0);
}

TEST(PathPassTest, DistanceDecreasesTowardPath) {
  Module M;
  subjects::Fig2 P = subjects::buildFig2(M);
  PathSpec Spec;
  Spec.Legs.push_back({P.Branch1, true});
  Spec.Legs.push_back({P.Branch2, true});
  PathInstrumentation PI = instrumentPath(*P.F, Spec);
  Engine E(M);
  ExecContext Ctx(M);
  IRWeakDistance W(E, PI.Wrapped, PI.W, PI.WInit, Ctx);
  // Approaching the [-3, 1] solution region from the right, the weak
  // distance decreases monotonically — the gradient MO exploits.
  EXPECT_GT(W({6.0}), W({4.0}));
  EXPECT_GT(W({4.0}), W({2.0}));
  EXPECT_EQ(W({1.0}), 0.0);
}

// --------------------------------------------------------------------------
// Coverage pass
// --------------------------------------------------------------------------

TEST(CoveragePassTest, GatingTracksCoveredSet) {
  Module M;
  subjects::Fig2 P = subjects::buildFig2(M);
  CoverageInstrumentation CI = instrumentCoverage(*P.F);
  ASSERT_EQ(CI.Sites.size(), 4u);
  Engine E(M);
  ExecContext Ctx(M);
  IRWeakDistance W(E, CI.Wrapped, CI.W, CI.WInit, Ctx);

  // Everything uncovered: any input reaches some uncovered direction.
  EXPECT_EQ(W({0.0}), 0.0);

  // Cover exactly the directions x=0 takes (true, true). Then x=0 is no
  // longer interesting but x=5 (false, false) is.
  int B1True = P.Branch1->id();
  int B2True = P.Branch2->id();
  Ctx.setSiteEnabled(B1True, false);
  Ctx.setSiteEnabled(B2True, false);
  EXPECT_GT(W({0.0}), 0.0);
  EXPECT_EQ(W({5.0}), 0.0);

  // Cover the rest: no input can reach anything new.
  Ctx.setSiteEnabled(B1True + 1, false);
  Ctx.setSiteEnabled(B2True + 1, false);
  EXPECT_GT(W({0.0}), 0.0);
  EXPECT_GT(W({5.0}), 0.0);
  EXPECT_GT(W({-100.0}), 0.0);
}

// --------------------------------------------------------------------------
// Overflow pass
// --------------------------------------------------------------------------

TEST(OverflowPassTest, EarlyReturnAndLastSite) {
  Module M;
  Function *F = subjects::buildStraightline(M); // (a+b)*(a-b)
  OverflowInstrumentation OI = instrumentOverflow(*F);
  ASSERT_TRUE(verifyModule(M).ok()) << verifyModule(M).message();
  ASSERT_EQ(OI.Sites.size(), 3u);
  Engine E(M);
  ExecContext Ctx(M);
  IRWeakDistance W(E, OI.Wrapped, OI.W, OI.WInit, Ctx);

  // Benign inputs: positive weak distance, last site = last FP op.
  EXPECT_GT(W({1.0, 2.0}), 0.0);
  EXPECT_EQ(Ctx.getGlobal(OI.LastSite).asInt(), OI.Sites[2].Id);

  // a+b overflows at the first op: early return, last site = first op.
  EXPECT_EQ(W({1.7e308, 1.7e308}), 0.0);
  EXPECT_EQ(Ctx.getGlobal(OI.LastSite).asInt(), OI.Sites[0].Id);

  // Disable the first site: the same input now reports the next op that
  // overflows (a-b = 0 doesn't, (a+b)*(a-b) = inf*0 = nan does).
  Ctx.setSiteEnabled(OI.Sites[0].Id, false);
  double WVal = W({1.7e308, 1.7e308});
  EXPECT_EQ(WVal, 0.0); // nan |a| is not < MAX, so w = 0 (overflow-ish)
  EXPECT_EQ(Ctx.getGlobal(OI.LastSite).asInt(), OI.Sites[2].Id);
}

/// Guidance comparison across overflow metrics (the Section 7
/// ULP-ization applied to Instance 3): the paper's MAX - |a| form has an
/// absorption plateau below |a| ~ 2e292; the ULP gap is monotone at
/// every magnitude.
TEST(OverflowPassTest, WeakDistanceGuidesTowardOverflow) {
  for (OverflowMetric Metric :
       {OverflowMetric::AbsGap, OverflowMetric::UlpGap}) {
    Module M;
    gsl::SfFunction Bessel = gsl::buildBesselKnuScaledAsympx(M);
    OverflowInstrumentation OI = instrumentOverflow(*Bessel.F, Metric);
    Engine E(M);
    ExecContext Ctx(M);
    IRWeakDistance W(E, OI.Wrapped, OI.W, OI.WInit, Ctx);
    // Focus on one target, as Algorithm 3's rounds do: keep only the
    // mu = t * nu site enabled (later sites would otherwise reach zero
    // first for large nu).
    for (const Site &S : OI.Sites)
      Ctx.setSiteEnabled(S.Id, S.Description == "double mu = 4.0*nu * nu");
    if (Metric == OverflowMetric::AbsGap) {
      // Plateau: MAX - 4.0 rounds back to MAX.
      EXPECT_EQ(W({1.0, 1.0}), MaxDouble);
    } else {
      // No plateau: the ULP gap already distinguishes tiny |mu|.
      EXPECT_LT(W({1.0, 1.0}), MaxDouble);
      EXPECT_GT(W({1.0, 1.0}), W({1e10, 1.0}));
      EXPECT_GT(W({1e10, 1.0}), W({1e100, 1.0}));
    }
    // Both metrics are monotone inside the responsive range...
    EXPECT_GT(W({1e150, 1.0}), W({1e153, 1.0}));
    EXPECT_GT(W({1e153, 1.0}), W({2e153, 1.0}));
    // ...and share the zero set: nu ~ 1e160 -> mu = 4e320 overflows.
    EXPECT_EQ(W({1e160, 1.0}), 0.0);
  }
}

} // namespace
