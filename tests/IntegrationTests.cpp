//===--- IntegrationTests.cpp - Cross-layer integration tests ------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "analyses/BoundaryAnalysis.h"
#include "analyses/OverflowDetector.h"
#include "analyses/PathReachability.h"
#include "gsl/Airy.h"
#include "gsl/Bessel.h"
#include "gsl/Hyperg.h"
#include "instrument/CoveragePass.h"
#include "ir/IRBuilder.h"
#include "instrument/OverflowPass.h"
#include "instrument/PathPass.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/BasinHopping.h"
#include "subjects/Fig1.h"
#include "subjects/Fig2.h"
#include "subjects/SinModel.h"
#include "subjects/TestPrograms.h"
#include "support/FPUtils.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace wdm;
using namespace wdm::exec;
using namespace wdm::ir;

namespace {

/// Property: printing a module and parsing it back preserves execution
/// semantics bit-for-bit over random inputs — the round trip is tested
/// on every corpus subject, including ones with loops and calls.
class RoundTripSemanticsTest
    : public ::testing::TestWithParam<const char *> {};

Function *buildSubject(Module &M, const std::string &Name) {
  if (Name == "fig2")
    return subjects::buildFig2(M).F;
  if (Name == "fig1a")
    return subjects::buildFig1a(M).F;
  if (Name == "fig1b")
    return subjects::buildFig1b(M).F;
  if (Name == "glibc_sin")
    return subjects::buildSinModel(M).F;
  if (Name == "straightline")
    return subjects::buildStraightline(M);
  if (Name == "loop_accum")
    return subjects::buildLoopAccum(M);
  if (Name == "classifier")
    return subjects::buildClassifier(M);
  if (Name == "callchain_f")
    return subjects::buildCallChain(M);
  return nullptr;
}

TEST_P(RoundTripSemanticsTest, ExecutionPreserved) {
  std::string Name = GetParam();
  Module M;
  Function *F = buildSubject(M, Name);
  ASSERT_NE(F, nullptr);

  std::string Text = toString(M);
  auto Parsed = parseModule(Text);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  Module &M2 = **Parsed;
  Function *F2 = M2.functionByName(Name);
  ASSERT_NE(F2, nullptr);

  Engine E1(M);
  Engine E2(M2);
  ExecContext C1(M);
  ExecContext C2(M2);
  RNG R(0x12a7);
  for (int I = 0; I < 300; ++I) {
    std::vector<RTValue> Args;
    for (unsigned A = 0; A < F->numArgs(); ++A) {
      double X = I % 3 == 0 ? R.anyFiniteDouble() : R.uniform(-200, 200);
      Args.push_back(RTValue::ofDouble(X));
    }
    ExecResult A1 = E1.run(F, Args, C1);
    ExecResult A2 = E2.run(F2, Args, C2);
    ASSERT_EQ(A1.Kind, A2.Kind);
    if (A1.ok() && F->returnType() == Type::Double) {
      EXPECT_EQ(bitsOf(A1.ReturnValue.asDouble()),
                bitsOf(A2.ReturnValue.asDouble()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, RoundTripSemanticsTest,
                         ::testing::Values("fig2", "fig1a", "fig1b",
                                           "glibc_sin", "straightline",
                                           "loop_accum", "classifier",
                                           "callchain_f"));

/// Property: every instrumentation pass preserves the subject's return
/// value on inputs that do not trigger the overflow pass's early return.
TEST(InstrumentationSemanticsTest, PassesPreserveReturnValues) {
  Module M;
  subjects::Fig2 P = subjects::buildFig2(M);
  instr::BoundaryInstrumentation BI = instr::instrumentBoundary(*P.F);
  instr::PathSpec Spec;
  Spec.Legs.push_back({P.Branch1, true});
  Spec.Legs.push_back({P.Branch2, true});
  instr::PathInstrumentation PI = instr::instrumentPath(*P.F, Spec);
  instr::CoverageInstrumentation CI = instr::instrumentCoverage(*P.F);
  instr::OverflowInstrumentation OI = instr::instrumentOverflow(*P.F);
  ASSERT_TRUE(verifyModule(M).ok()) << verifyModule(M).message();

  Engine E(M);
  ExecContext Ctx(M);
  RNG R(0xfee1);
  for (int I = 0; I < 200; ++I) {
    double X = R.uniform(-50, 50);
    std::vector<RTValue> Args{RTValue::ofDouble(X)};
    double Orig = E.run(P.F, Args, Ctx).ReturnValue.asDouble();
    for (Function *Wrapped :
         {BI.Wrapped, PI.Wrapped, CI.Wrapped, OI.Wrapped}) {
      double Got = E.run(Wrapped, Args, Ctx).ReturnValue.asDouble();
      EXPECT_EQ(bitsOf(Orig), bitsOf(Got))
          << Wrapped->name() << " at x = " << X;
    }
  }
}

/// End-to-end through the parser: a module written as text, instrumented
/// and analyzed without ever touching the builder API.
TEST(TextualPipelineTest, ParseInstrumentSolve) {
  const char *Text = R"(
module "pipeline"
func @f(%x: double) -> double {
entry:
  %y = fmul %x, %x
  %c = fcmp.le %y, 25.0
  condbr %c, small, big
small:
  ret %y
big:
  ret 0.0
}
)";
  auto Parsed = parseModule(Text);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  Module &M = **Parsed;
  analyses::BoundaryAnalysis BVA(M, *M.functionByName("f"));

  opt::BasinHopping Backend;
  core::ReductionOptions Opts;
  Opts.Seed = 5;
  Opts.MaxEvals = 40'000;
  core::ReductionResult R = BVA.findOne(Backend, Opts);
  ASSERT_TRUE(R.Found);
  // Boundary: x*x == 25 exactly -> x = +-5.
  EXPECT_EQ(std::fabs(R.Witness[0]), 5.0);
}

/// Def. 3.1 as a cross-layer property: for every analysis weak distance
/// on fig2, W(x) >= 0 and W(x) == 0 iff the oracle accepts x.
TEST(WeakDistanceContractTest, AllAnalysesOnFig2) {
  Module M;
  subjects::Fig2 P = subjects::buildFig2(M);
  analyses::BoundaryAnalysis BVA(M, *P.F);
  instr::PathSpec Spec;
  Spec.Legs.push_back({P.Branch1, true});
  Spec.Legs.push_back({P.Branch2, false});
  analyses::PathReachability PR(M, *P.F, Spec);

  RNG R(0xc0ffee);
  for (int I = 0; I < 400; ++I) {
    double X = I < 200 ? R.uniform(-30, 30) : R.anyFiniteDouble();
    double WB = BVA.weak()({X});
    EXPECT_GE(WB, 0.0);
    EXPECT_EQ(WB == 0.0, !BVA.hitsFor({X}).empty()) << "x = " << X;
    double WP = PR.weak()({X});
    EXPECT_GE(WP, 0.0);
    EXPECT_EQ(WP == 0.0, PR.follows({X})) << "x = " << X;
  }
}

/// The overflow detector's end-to-end guarantee on a tiny subject:
/// every operation is classified, found inputs replay, and the "cannot
/// overflow" case is a miss, not a false positive.
TEST(OverflowEndToEndTest, ClassifiesAllSites) {
  Module M;
  // f(x) = (x * x) + 0.0 * x: the multiply overflows, the scaled term
  // cannot (0 * x is 0 or NaN, never large), the add can.
  Function *F = M.addFunction("f", Type::Double);
  Argument *X = F->addArg(Type::Double, "x");
  IRBuilder B(M);
  B.setInsertAppend(F->addBlock("entry"));
  Value *Sq = B.fmul(X, X);
  Value *Zero = B.fmul(B.lit(0.0), X);
  Value *Sum = B.fadd(Sq, Zero);
  B.ret(Sum);

  analyses::OverflowDetector Det(M, *F);
  analyses::OverflowDetector::Options Opts;
  Opts.Seed = 3;
  analyses::OverflowReport R = Det.run(Opts);
  ASSERT_EQ(R.Findings.size(), 3u);
  // x*x: overflow at |x| ~ 1.4e154.
  EXPECT_TRUE(R.Findings[0].Found);
  // 0*x: never overflows to |.| >= MAX... unless x is inf, which wild
  // starts exclude (finite doubles only); NaN results do count as
  // "overflow-ish" per the |a| < MAX check failing, and 0 * x stays 0
  // for every finite x. Must be missed.
  EXPECT_FALSE(R.Findings[1].Found);
  for (const analyses::OverflowFinding &Fd : R.Findings) {
    if (Fd.Found) {
      EXPECT_TRUE(Det.overflowsAt(Fd.SiteId, Fd.Input));
    }
  }
}

/// Determinism across the whole stack: identical seeds give identical
/// experiment outcomes (the reproducibility claim of DESIGN.md).
TEST(DeterminismTest, FullAnalysisPipeline) {
  auto Run = [] {
    Module M;
    subjects::Fig2 P = subjects::buildFig2(M);
    analyses::BoundaryAnalysis BVA(M, *P.F);
    opt::BasinHopping Backend;
    core::ReductionOptions Opts;
    Opts.Seed = 0xd00d;
    Opts.MaxEvals = 20'000;
    return BVA.findOne(Backend, Opts);
  };
  core::ReductionResult A = Run();
  core::ReductionResult B = Run();
  ASSERT_EQ(A.Found, B.Found);
  EXPECT_EQ(A.Witness, B.Witness);
  EXPECT_EQ(A.Evals, B.Evals);
  EXPECT_EQ(A.WStar, B.WStar);
}

/// The GSL trio coexists in one module with every pass applied — the
/// heaviest single-module configuration the benches use.
TEST(StressTest, AllGslModelsInstrumentedTogether) {
  Module M;
  gsl::SfFunction Bessel = gsl::buildBesselKnuScaledAsympx(M);
  gsl::SfFunction Hyperg = gsl::buildHyperg2F0(M);
  gsl::AiryModel Airy = gsl::buildAiryAi(M);

  instr::OverflowInstrumentation O1 = instr::instrumentOverflow(*Bessel.F);
  instr::OverflowInstrumentation O2 = instr::instrumentOverflow(*Hyperg.F);
  instr::OverflowInstrumentation O3 =
      instr::instrumentOverflow(*Airy.Airy.F);
  instr::BoundaryInstrumentation B1 = instr::instrumentBoundary(*Airy.Airy.F);
  Status S = verifyModule(M);
  ASSERT_TRUE(S.ok()) << S.message();

  Engine E(M);
  ExecContext Ctx(M);

  // Every wrapped function still executes.
  instr::IRWeakDistance W1(E, O1.Wrapped, O1.W, O1.WInit, Ctx);
  instr::IRWeakDistance W2(E, O2.Wrapped, O2.W, O2.WInit, Ctx);
  instr::IRWeakDistance W3(E, O3.Wrapped, O3.W, O3.WInit, Ctx);
  instr::IRWeakDistance W4(E, B1.Wrapped, B1.W, B1.WInit, Ctx);
  EXPECT_GE(W1({1.5, 2.0}), 0.0);
  EXPECT_GE(W2({1.0, 2.0, -0.5}), 0.0);
  EXPECT_GE(W3({-3.0}), 0.0);
  EXPECT_GE(W4({-3.0}), 0.0);
  // And the round trip still holds for the fully instrumented module.
  std::string Text = toString(M);
  auto Parsed = parseModule(Text);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  EXPECT_EQ(toString(**Parsed), Text);
}

} // namespace
