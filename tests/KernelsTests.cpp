//===--- KernelsTests.cpp - Analyses on realistic numeric kernels -------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "analyses/BoundaryAnalysis.h"
#include "analyses/BranchCoverage.h"
#include "analyses/OverflowDetector.h"
#include "analyses/PathReachability.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/BasinHopping.h"
#include "subjects/NumericKernels.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace wdm;
using namespace wdm::analyses;
using namespace wdm::exec;
using namespace wdm::subjects;

namespace {

TEST(QuadraticSolverTest, Semantics) {
  ir::Module M;
  QuadraticSolver P = buildQuadraticSolver(M);
  ASSERT_TRUE(ir::verifyModule(M).ok()) << ir::verifyModule(M).message();
  Engine E(M);
  ExecContext Ctx(M);
  auto Roots = [&](double A, double B, double C) {
    return E.run(P.F,
                 {RTValue::ofDouble(A), RTValue::ofDouble(B),
                  RTValue::ofDouble(C)},
                 Ctx)
        .ReturnValue.asDouble();
  };
  EXPECT_EQ(Roots(1, 0, 1), 0.0);   // x^2 + 1: no real roots
  EXPECT_EQ(Roots(1, 0, -1), 2.0);  // x^2 - 1: two roots
  EXPECT_EQ(Roots(1, 2, 1), 1.0);   // (x+1)^2: double root
  EXPECT_EQ(Roots(0, 5, 1), 1.0);   // linear
}

TEST(QuadraticSolverTest, BoundaryAnalysisFindsDoubleRootSurface) {
  // The disc == 0 surface b^2 = 4ac is measure-zero in R^3 — exactly the
  // "higher payoff" inputs boundary value analysis is for.
  ir::Module M;
  QuadraticSolver P = buildQuadraticSolver(M);
  BoundaryAnalysis BVA(M, *P.F);

  opt::BasinHopping Backend;
  core::ReductionOptions Opts;
  Opts.Seed = 0x9d;
  Opts.MaxEvals = 150'000;
  Opts.Starts = 16;
  core::ReductionResult R = BVA.findOne(Backend, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_FALSE(BVA.hitsFor(R.Witness).empty());
}

TEST(QuadraticSolverTest, PathToDoubleRoot) {
  // Reach the disc == 0 branch specifically: a != 0, disc not negative,
  // then disc == 0.
  ir::Module M;
  QuadraticSolver P = buildQuadraticSolver(M);
  // Find the disc == 0 condbr: third conditional in layout order.
  std::vector<const ir::Instruction *> Branches;
  P.F->forEachInst([&](const ir::Instruction *I) {
    if (I->opcode() == ir::Opcode::CondBr)
      Branches.push_back(I);
  });
  ASSERT_EQ(Branches.size(), 3u);
  instr::PathSpec Spec;
  Spec.Legs.push_back({Branches[0], false}); // a != 0
  Spec.Legs.push_back({Branches[1], false}); // disc >= 0
  Spec.Legs.push_back({Branches[2], true});  // disc == 0
  PathReachability PR(M, *P.F, Spec);

  // Known solution: (1, 2, 1).
  EXPECT_EQ(PR.weak()({1.0, 2.0, 1.0}), 0.0);
  EXPECT_TRUE(PR.follows({1.0, 2.0, 1.0}));
  EXPECT_FALSE(PR.follows({1.0, 0.0, 1.0}));

  opt::BasinHopping Backend;
  core::ReductionOptions Opts;
  Opts.Seed = 0x9e;
  Opts.MaxEvals = 200'000;
  Opts.Starts = 20;
  core::ReductionResult R = PR.findOne(Backend, Opts);
  if (R.Found) {
    double A = R.Witness[0], B = R.Witness[1], C = R.Witness[2];
    EXPECT_EQ(B * B - 4.0 * A * C, 0.0);
    EXPECT_NE(A, 0.0);
  }
  // (3-dimensional equality surfaces are hard; not finding one within
  // budget is acceptable incompleteness, but a found witness must be
  // genuine — checked above.)
}

TEST(RaySphereTest, SemanticsAndTangency) {
  ir::Module M;
  RaySphere P = buildRaySphere(M);
  ASSERT_TRUE(ir::verifyModule(M).ok());
  Engine E(M);
  ExecContext Ctx(M);
  auto Hit = [&](double Ox, double Dx, double R) {
    return E.run(P.F,
                 {RTValue::ofDouble(Ox), RTValue::ofDouble(Dx),
                  RTValue::ofDouble(R)},
                 Ctx)
        .ReturnValue.asDouble();
  };
  // Ray from -10 toward +: hits circle radius 1 at distance 9.
  EXPECT_DOUBLE_EQ(Hit(-10.0, 1.0, 1.0), 9.0);
  // Pointing away: the quadratic still has real roots (negative t).
  EXPECT_LE(Hit(-10.0, -1.0, 1.0), 0.0);
  // Radius zero through origin: tangency at t = 10 (disc == 0).
  EXPECT_DOUBLE_EQ(Hit(-10.0, 1.0, 0.0), 10.0);
}

TEST(RaySphereTest, CoverageReachesBothOutcomes) {
  ir::Module M;
  RaySphere P = buildRaySphere(M);
  BranchCoverage Cov(M, *P.F);
  opt::BasinHopping Backend;
  BranchCoverage::Options Opts;
  Opts.Reduce.Seed = 0xa0;
  Opts.Reduce.MaxEvals = 40'000;
  CoverageReport R = Cov.run(Backend, Opts);
  EXPECT_EQ(R.Total, 2u);
  EXPECT_EQ(R.Covered, 2u);
}

TEST(HermiteTest, SemanticsAndClampBoundaries) {
  ir::Module M;
  ir::Function *F = buildHermite(M);
  ASSERT_TRUE(ir::verifyModule(M).ok());
  Engine E(M);
  ExecContext Ctx(M);
  auto H = [&](double P0, double P1, double T) {
    return E.run(F,
                 {RTValue::ofDouble(P0), RTValue::ofDouble(P1),
                  RTValue::ofDouble(T)},
                 Ctx)
        .ReturnValue.asDouble();
  };
  EXPECT_EQ(H(2.0, 5.0, -1.0), 2.0); // clamped low
  EXPECT_EQ(H(2.0, 5.0, 3.0), 5.0);  // clamped high
  EXPECT_EQ(H(2.0, 5.0, 0.5), 3.5);  // midpoint of the smoothstep
  // Monotone on [0,1] for this blend.
  EXPECT_LT(H(0.0, 1.0, 0.25), H(0.0, 1.0, 0.75));
}

TEST(HermiteTest, BoundaryValuesAtClamps) {
  ir::Module M;
  ir::Function *F = buildHermite(M);
  BoundaryAnalysis BVA(M, *F);
  // t == 0 and t == 1 are the boundary conditions.
  EXPECT_EQ(BVA.weak()({1.0, 2.0, 0.0}), 0.0);
  EXPECT_EQ(BVA.weak()({1.0, 2.0, 1.0}), 0.0);
  EXPECT_GT(BVA.weak()({1.0, 2.0, 0.5}), 0.0);

  opt::BasinHopping Backend;
  core::ReductionOptions Opts;
  Opts.Seed = 0xa1;
  Opts.MaxEvals = 60'000;
  core::ReductionResult R = BVA.findOne(Backend, Opts);
  ASSERT_TRUE(R.Found);
  double T = R.Witness[2];
  EXPECT_TRUE(T == 0.0 || T == 1.0) << "t = " << T;
}

TEST(HermiteTest, OverflowThroughHugeSlopes) {
  ir::Module M;
  ir::Function *F = buildHermite(M);
  OverflowDetector Det(M, *F);
  OverflowDetector::Options Opts;
  Opts.Seed = 0xa2;
  OverflowReport R = Det.run(Opts);
  // span = p1 - p0 and the final fma-style ops overflow with huge
  // endpoint values; at least two operations must be triggerable.
  EXPECT_GE(R.numOverflows(), 2u);
  for (const OverflowFinding &Fd : R.Findings) {
    if (Fd.Found) {
      EXPECT_TRUE(Det.overflowsAt(Fd.SiteId, Fd.Input));
    }
  }
}

TEST(KernelsRoundTripTest, PrintParseExecute) {
  ir::Module M;
  buildQuadraticSolver(M);
  buildRaySphere(M);
  buildHermite(M);
  std::string Text = ir::toString(M);
  auto Parsed = ir::parseModule(Text);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  EXPECT_EQ(ir::toString(**Parsed), Text);
}

} // namespace
