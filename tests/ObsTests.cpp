//===--- ObsTests.cpp - src/obs/ telemetry layer tests --------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
// The observability bar: thread-sharded metrics merge exactly, the
// "metrics" section round-trips through Report JSON but never reaches
// the deterministic view, Chrome traces are valid trace-event JSON, the
// search progress stream ticks, and — the invariant everything else
// leans on — a run with telemetry off produces byte-identical
// deterministic reports to a run with everything on.
//
//===----------------------------------------------------------------------===//

#include "api/Analyzer.h"
#include "api/Report.h"
#include "obs/Progress.h"
#include "obs/Prometheus.h"
#include "obs/Telemetry.h"
#include "obs/Trace.h"
#include "support/BuildInfo.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace wdm;
using wdm::json::Value;

namespace {

/// Every test leaves the process-wide obs state exactly as it found it
/// (off, empty): the rest of the test binary depends on that.
struct ObsQuiesce {
  ObsQuiesce() { reset(); }
  ~ObsQuiesce() { reset(); }
  static void reset() {
    obs::setEnabled(false);
    obs::resetMetrics();
    obs::stopTrace();
    obs::clearTrace();
    obs::clearSearchListener();
    obs::setJobTag("");
  }
};

api::AnalysisSpec fig2BoundarySpec() {
  api::AnalysisSpec Spec;
  Spec.Task = api::TaskKind::Boundary;
  Spec.Module = api::ModuleSource::builtin("fig2");
  Spec.Search.Seed = 2019;
  Spec.Search.MaxEvals = 20000;
  Spec.Search.Threads = 1;
  return Spec;
}

//===----------------------------------------------------------------------===//
// Counters / gauges / histograms: sharding and merging
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, CountersMergeAcrossThreads) {
  ObsQuiesce Q;
  obs::setEnabled(true);
  obs::Counter C = obs::counter("t.cross_thread");

  constexpr unsigned Threads = 4, PerThread = 1000;
  std::vector<std::thread> Pool;
  for (unsigned I = 0; I < Threads; ++I)
    Pool.emplace_back([&] {
      for (unsigned K = 0; K < PerThread; ++K)
        C.add(1);
    });
  for (std::thread &T : Pool)
    T.join(); // Exited threads fold into the retired totals...
  C.add(5);   // ...and merge with the live shard of this thread.

  Value Snap = obs::snapshotJson();
  const Value *N = Snap.find("counters")->find("t.cross_thread");
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->asUint(), Threads * PerThread + 5);
}

TEST(TelemetryTest, HistogramBucketsAndMerge) {
  ObsQuiesce Q;
  obs::setEnabled(true);
  obs::Histogram H = obs::histogram("t.hist");
  // Two observations in (1,2] (log2 upper bound 1), one <= 1.
  std::thread([&] { H.observe(2.0); }).join();
  H.observe(1.5);
  H.observe(0.5);

  Value Snap = obs::snapshotJson();
  const Value *HV = Snap.find("histograms")->find("t.hist");
  ASSERT_NE(HV, nullptr);
  EXPECT_EQ(HV->find("count")->asUint(), 3u);
  EXPECT_DOUBLE_EQ(HV->find("sum")->asDouble(), 4.0);
  const Value *Buckets = HV->find("buckets");
  ASSERT_NE(Buckets, nullptr);
  uint64_t InOne = 0, InTwo = 0;
  for (size_t I = 0; I < Buckets->size(); ++I) {
    const Value &Pair = Buckets->at(I);
    if (Pair.at(0).asInt() == 0)
      InOne = Pair.at(1).asUint();
    if (Pair.at(0).asInt() == 1)
      InTwo = Pair.at(1).asUint();
  }
  EXPECT_EQ(InOne, 1u);
  EXPECT_EQ(InTwo, 2u);
}

TEST(TelemetryTest, DisabledHooksRecordNothing) {
  ObsQuiesce Q;
  ASSERT_FALSE(obs::enabled());
  obs::count("t.should_not_exist", 7);
  obs::counter("t.handle_off").add(3);
  obs::histogram("t.hist_off").observe(1.0);
  obs::setEnabled(true); // snapshot with collection on, nothing recorded
  Value Snap = obs::snapshotJson();
  EXPECT_EQ(Snap.find("counters")->find("t.should_not_exist"), nullptr);
  EXPECT_EQ(Snap.find("counters")->find("t.handle_off"), nullptr);
  EXPECT_EQ(Snap.find("histograms")->find("t.hist_off"), nullptr);
}

TEST(TelemetryTest, DeltaSubtractsSnapshots) {
  ObsQuiesce Q;
  obs::setEnabled(true);
  obs::count("t.delta", 10);
  obs::histogram("t.dhist").observe(3.0);
  Value Before = obs::snapshotJson();
  obs::count("t.delta", 4);
  obs::count("t.fresh", 2); // missing in Before: passes through
  obs::histogram("t.dhist").observe(5.0);
  Value After = obs::snapshotJson();

  Value Delta = obs::deltaJson(Before, After);
  EXPECT_EQ(Delta.find("counters")->find("t.delta")->asUint(), 4u);
  EXPECT_EQ(Delta.find("counters")->find("t.fresh")->asUint(), 2u);
  const Value *DH = Delta.find("histograms")->find("t.dhist");
  ASSERT_NE(DH, nullptr);
  EXPECT_EQ(DH->find("count")->asUint(), 1u);
  EXPECT_DOUBLE_EQ(DH->find("sum")->asDouble(), 5.0);
}

//===----------------------------------------------------------------------===//
// Prometheus exposition: the second serializer over the same snapshot
//===----------------------------------------------------------------------===//

TEST(PrometheusTest, CountersGaugesAndNamesMapFromSnapshot) {
  // Serialize a hand-built snapshot so the mapping is pinned
  // independently of the live registry.
  Value Snap = Value::object()
                   .set("counters", Value::object()
                                        .set("serve.cache_hits",
                                             Value::number(uint64_t(3)))
                                        .set("9odd-name!x",
                                             Value::number(uint64_t(1))))
                   .set("gauges", Value::object().set(
                                      "search.batch", Value::number(32.0)))
                   .set("histograms", Value::object());
  std::string Text = obs::toPrometheus(Snap);

  EXPECT_NE(Text.find("# HELP serve_cache_hits_total wdm metric "
                      "serve.cache_hits\n"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE serve_cache_hits_total counter\n"),
            std::string::npos);
  EXPECT_NE(Text.find("serve_cache_hits_total 3\n"), std::string::npos);
  // Invalid chars sanitize to '_'; a leading digit gains one too.
  EXPECT_NE(Text.find("_9odd_name_x_total 1\n"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE search_batch gauge\n"), std::string::npos);
  EXPECT_NE(Text.find("search_batch 32\n"), std::string::npos);
}

TEST(PrometheusTest, Log2HistogramBecomesCumulativeBuckets) {
  // Sparse per-bucket counts: bucket 1 (1 < v <= 2) holds 2 obs, bucket
  // 3 (4 < v <= 8) holds 1. Cumulative le-series must accumulate.
  auto Pair = [](uint64_t K, uint64_t N) {
    Value P = Value::array();
    P.push(Value::number(K));
    P.push(Value::number(N));
    return P;
  };
  Value Buckets = Value::array();
  Buckets.push(Pair(1, 2));
  Buckets.push(Pair(3, 1));
  Value H = Value::object()
                .set("count", Value::number(uint64_t(3)))
                .set("sum", Value::number(10.0))
                .set("buckets", std::move(Buckets));
  Value Snap = Value::object()
                   .set("counters", Value::object())
                   .set("gauges", Value::object())
                   .set("histograms",
                        Value::object().set("eval.w", std::move(H)));
  std::string Text = obs::toPrometheus(Snap);

  EXPECT_NE(Text.find("# TYPE eval_w histogram\n"), std::string::npos);
  EXPECT_NE(Text.find("eval_w_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(Text.find("eval_w_bucket{le=\"8\"} 3\n"), std::string::npos);
  EXPECT_NE(Text.find("eval_w_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(Text.find("eval_w_sum 10\n"), std::string::npos);
  EXPECT_NE(Text.find("eval_w_count 3\n"), std::string::npos);
}

TEST(PrometheusTest, LiveSnapshotMatchesJsonSnapshot) {
  ObsQuiesce Q;
  obs::setEnabled(true);
  obs::count("prom.live_counter", 5);
  obs::histogram("prom.live_hist").observe(3.0);
  obs::histogram("prom.live_hist").observe(100.0);

  // The two serializers must agree: snapshotPrometheus() is exactly
  // toPrometheus(snapshotJson()) over one consistent snapshot.
  Value Snap = obs::snapshotJson();
  EXPECT_EQ(obs::snapshotPrometheus(), obs::toPrometheus(Snap));

  std::string Text = obs::toPrometheus(Snap);
  EXPECT_NE(Text.find("prom_live_counter_total 5\n"), std::string::npos);
  EXPECT_NE(Text.find("prom_live_hist_count 2\n"), std::string::npos);
  // 3.0 lands in the (2,4] bucket, 100.0 in (64,128].
  EXPECT_NE(Text.find("prom_live_hist_bucket{le=\"4\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("prom_live_hist_bucket{le=\"128\"} 2\n"),
            std::string::npos);
  EXPECT_NE(Text.find("prom_live_hist_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Report metrics: round trip + deterministic stripping
//===----------------------------------------------------------------------===//

TEST(ObsReportTest, MetricsRoundTripAndDeterministicStrip) {
  ObsQuiesce Q;
  obs::setEnabled(true);
  Expected<api::Report> R = api::Analyzer::analyze(fig2BoundarySpec());
  ASSERT_TRUE(R.hasValue()) << R.error();
  ASSERT_FALSE(R->Metrics.isNull());
  const Value *Counters = R->Metrics.find("counters");
  ASSERT_NE(Counters, nullptr);
  // The instrumented pipeline leaves its fingerprints.
  EXPECT_NE(Counters->find("analyzer.module_resolutions"), nullptr);
  EXPECT_NE(Counters->find("search.starts"), nullptr);
  EXPECT_NE(Counters->find("search.evals"), nullptr);
  // Build provenance rides the metrics section.
  ASSERT_NE(R->Metrics.find("build"), nullptr);
  EXPECT_NE(R->Metrics.find("build")->find("git"), nullptr);

  // Round trip: metrics survive toJson/parse exactly.
  Expected<api::Report> Back = api::Report::parse(R->toJsonText());
  ASSERT_TRUE(Back.hasValue()) << Back.error();
  EXPECT_EQ(Back->Metrics.dump(), R->Metrics.dump());
  EXPECT_EQ(Back->toJsonText(), R->toJsonText());

  // The deterministic view strips metrics alongside the wall clock.
  Value Det = api::deterministicReportJson(R->toJson());
  EXPECT_EQ(Det.find("metrics"), nullptr);
  EXPECT_EQ(Det.find("seconds"), nullptr);
  EXPECT_NE(Det.find("task"), nullptr);
}

TEST(ObsReportTest, TelemetryOnOffBitIdentity) {
  // The invariant the whole layer is built around: flipping every obs
  // feature on changes nothing in the deterministic report.
  ObsQuiesce Q;
  Expected<api::Report> Off = api::Analyzer::analyze(fig2BoundarySpec());
  ASSERT_TRUE(Off.hasValue()) << Off.error();
  EXPECT_TRUE(Off->Metrics.isNull());

  obs::setEnabled(true);
  obs::startTrace();
  std::atomic<unsigned> Ticks{0};
  obs::setSearchListener([&](const obs::SearchTick &) { ++Ticks; });
  Expected<api::Report> On = api::Analyzer::analyze(fig2BoundarySpec());
  obs::clearSearchListener();
  obs::stopTrace();
  ASSERT_TRUE(On.hasValue()) << On.error();
  EXPECT_FALSE(On->Metrics.isNull());
  EXPECT_GT(Ticks.load(), 0u);

  EXPECT_EQ(api::deterministicReportJson(Off->toJson()).dump(),
            api::deterministicReportJson(On->toJson()).dump());
  // With telemetry off the full JSON has no metrics member at all —
  // byte-identity of the non-deterministic view too.
  EXPECT_EQ(Off->toJsonText().find("\"metrics\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Chrome trace output
//===----------------------------------------------------------------------===//

TEST(TraceTest, SpansBecomeValidTraceEventJson) {
  ObsQuiesce Q;
  obs::startTrace();
  obs::setThreadTrackName("test track");
  {
    obs::ScopedSpan Outer("outer");
    Outer.setArgs(Value::object().set("k", Value::string("v")));
    obs::ScopedSpan Inner("inner");
    obs::instant("mark");
  }
  std::thread([] {
    obs::ScopedSpan T("worker_span");
    (void)T;
  }).join();
  obs::stopTrace();

  Value Doc = obs::traceJson();
  const Value *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  bool SawOuter = false, SawInstant = false, SawName = false;
  bool SawWorker = false;
  uint64_t MainTid = 0, WorkerTid = 0;
  for (size_t I = 0; I < Events->size(); ++I) {
    const Value &E = Events->at(I);
    std::string Name = E.find("name")->asString();
    std::string Ph = E.find("ph")->asString();
    EXPECT_EQ(E.find("pid")->asUint(), 1u);
    if (Name == "outer" && Ph == "X") {
      SawOuter = true;
      MainTid = E.find("tid")->asUint();
      EXPECT_NE(E.find("dur"), nullptr);
      EXPECT_EQ(E.find("args")->find("k")->asString(), "v");
    }
    SawInstant |= Name == "mark" && Ph == "i";
    SawName |= Name == "thread_name" && Ph == "M";
    if (Name == "worker_span") {
      SawWorker = true;
      WorkerTid = E.find("tid")->asUint();
    }
  }
  EXPECT_TRUE(SawOuter);
  EXPECT_TRUE(SawInstant);
  EXPECT_TRUE(SawName);
  EXPECT_TRUE(SawWorker);
  EXPECT_NE(MainTid, WorkerTid); // one track per thread

  // writeTrace emits a parseable file with the same events.
  std::string Path = ::testing::TempDir() + "wdm_obs_trace.json";
  ASSERT_TRUE(obs::writeTrace(Path));
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Expected<Value> Reparsed = Value::parse(Buf.str());
  ASSERT_TRUE(Reparsed.hasValue()) << Reparsed.error();
  EXPECT_EQ(Reparsed->find("traceEvents")->size(), Events->size());
  std::remove(Path.c_str());
}

TEST(TraceTest, SpansAreInertWhileTracingOff) {
  ObsQuiesce Q;
  {
    obs::ScopedSpan S("off_span");
    obs::instant("off_instant");
  }
  obs::startTrace();
  obs::stopTrace();
  EXPECT_EQ(obs::traceJson().find("traceEvents")->size(), 0u);
}

//===----------------------------------------------------------------------===//
// Search convergence stream
//===----------------------------------------------------------------------===//

TEST(ProgressTest, SearchEmitsTicksWithJobTag) {
  ObsQuiesce Q;
  struct Tick {
    std::string Job;
    uint64_t Evals;
    bool Final;
  };
  std::vector<Tick> Ticks;
  obs::setSearchListener([&](const obs::SearchTick &T) {
    Ticks.push_back({T.Job, T.Evals, T.Final});
    EXPECT_LE(T.StartsDone, T.Starts);
  });
  obs::setJobTag("job-abc");
  Expected<api::Report> R = api::Analyzer::analyze(fig2BoundarySpec());
  obs::setJobTag("");
  obs::clearSearchListener();
  ASSERT_TRUE(R.hasValue()) << R.error();

  ASSERT_FALSE(Ticks.empty());
  EXPECT_TRUE(Ticks.back().Final);
  EXPECT_EQ(Ticks.back().Evals, R->Evals);
  for (const Tick &T : Ticks)
    EXPECT_EQ(T.Job, "job-abc");
}

TEST(ProgressTest, NoListenerMeansNoGate) {
  ObsQuiesce Q;
  EXPECT_FALSE(obs::hasSearchListener());
  obs::setSearchListener([](const obs::SearchTick &) {});
  EXPECT_TRUE(obs::hasSearchListener());
  obs::clearSearchListener();
  EXPECT_FALSE(obs::hasSearchListener());
  // Emitting without a listener is a harmless no-op.
  obs::emitSearchTick({});
}

//===----------------------------------------------------------------------===//
// Build info + timestamps (satellites)
//===----------------------------------------------------------------------===//

TEST(BuildInfoTest, PopulatedAndSerialized) {
  const support::BuildInfo &BI = support::buildInfo();
  EXPECT_FALSE(BI.GitDescribe.empty());
  EXPECT_FALSE(BI.Compiler.empty());
  EXPECT_FALSE(BI.BuildType.empty());
  Value Doc = support::buildInfoJson();
  EXPECT_EQ(Doc.find("git")->asString(), BI.GitDescribe);
  EXPECT_EQ(Doc.find("compiler")->asString(), BI.Compiler);
  EXPECT_EQ(Doc.find("build_type")->asString(), BI.BuildType);
  EXPECT_NE(Doc.find("flags"), nullptr);
}

TEST(BuildInfoTest, IsoUtcNowShape) {
  std::string Ts = isoUtcNow();
  // 2026-08-07T10:22:33.123Z — fixed width, fixed punctuation.
  ASSERT_EQ(Ts.size(), 24u) << Ts;
  EXPECT_EQ(Ts[4], '-');
  EXPECT_EQ(Ts[7], '-');
  EXPECT_EQ(Ts[10], 'T');
  EXPECT_EQ(Ts[13], ':');
  EXPECT_EQ(Ts[16], ':');
  EXPECT_EQ(Ts[19], '.');
  EXPECT_EQ(Ts.back(), 'Z');
  for (size_t I : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u, 11u, 12u, 14u, 15u,
                   17u, 18u, 20u, 21u, 22u})
    EXPECT_TRUE(isdigit(static_cast<unsigned char>(Ts[I]))) << Ts;
}

} // namespace
