//===--- OptTests.cpp - Optimization backend tests -----------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "opt/BasinHopping.h"
#include "opt/DifferentialEvolution.h"
#include "opt/NelderMead.h"
#include "opt/Powell.h"
#include "opt/RandomSearch.h"
#include "opt/UlpSearch.h"
#include "support/FPUtils.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace wdm;
using namespace wdm::opt;

namespace {

Objective makeSphere(unsigned Dim) {
  return Objective(
      [](const std::vector<double> &X) {
        double S = 0;
        for (double V : X)
          S += V * V;
        return S;
      },
      Dim);
}

TEST(ObjectiveTest, TracksBestAndBudget) {
  Objective Obj([](const std::vector<double> &X) { return X[0]; }, 1);
  Obj.MaxEvals = 3;
  Obj.eval({5.0});
  Obj.eval({2.0});
  EXPECT_EQ(Obj.bestF(), 2.0);
  EXPECT_EQ(Obj.numEvals(), 2u);
  EXPECT_FALSE(Obj.done());
  Obj.eval({9.0});
  EXPECT_TRUE(Obj.done()); // budget exhausted
  EXPECT_EQ(Obj.bestF(), 2.0);
}

TEST(ObjectiveTest, NanMapsToInf) {
  Objective Obj(
      [](const std::vector<double> &) { return std::nan(""); }, 1);
  EXPECT_TRUE(std::isinf(Obj.eval({0.0})));
}

TEST(ObjectiveTest, StopsAtTarget) {
  Objective Obj([](const std::vector<double> &X) { return std::fabs(X[0]); },
                1);
  Obj.eval({0.0});
  EXPECT_TRUE(Obj.reachedTarget());
  EXPECT_TRUE(Obj.done());
}

TEST(ObjectiveTest, RecorderSeesEverySample) {
  VectorRecorder Rec;
  Objective Obj([](const std::vector<double> &X) { return X[0] * X[0]; }, 1);
  Obj.setRecorder(&Rec);
  Obj.eval({1.0});
  Obj.eval({2.0});
  ASSERT_EQ(Rec.Samples.size(), 2u);
  EXPECT_EQ(Rec.Samples[1].F, 4.0);
}

TEST(BrentTest, FindsQuadraticMinimum) {
  auto Fn = [](double T) { return (T - 3.0) * (T - 3.0) + 1.0; };
  double X = brentMinimize(Fn, 0.0, 1.0, 10.0, 1e-10, 100);
  EXPECT_NEAR(X, 3.0, 1e-6);
}

TEST(BrentTest, AsymmetricFunction) {
  auto Fn = [](double T) { return std::fabs(T - 0.25) + 0.5 * T; };
  double X = brentMinimize(Fn, -2.0, 0.0, 2.0, 1e-10, 200);
  EXPECT_NEAR(X, 0.25, 1e-5);
}

TEST(PowellTest, SolvesQuadratic2D) {
  Objective Obj(
      [](const std::vector<double> &X) {
        double A = X[0] - 1.0, B = X[1] + 2.0;
        return A * A + 0.5 * A * B + B * B;
      },
      2);
  Obj.MaxEvals = 20'000;
  Powell P;
  RNG R(1);
  MinimizeOptions Opts;
  Opts.LocalBudget = 20'000;
  Opts.StopAtTarget = false;
  MinimizeResult MR = P.minimize(Obj, {5.0, 5.0}, R, Opts);
  EXPECT_NEAR(MR.X[0], 1.0, 1e-4);
  EXPECT_NEAR(MR.X[1], -2.0, 1e-4);
}

TEST(PowellTest, Rosenbrock) {
  Objective Obj(
      [](const std::vector<double> &X) {
        double A = 1.0 - X[0];
        double B = X[1] - X[0] * X[0];
        return A * A + 100.0 * B * B;
      },
      2);
  Obj.MaxEvals = 60'000;
  Powell P;
  RNG R(2);
  MinimizeOptions Opts;
  Opts.LocalBudget = 60'000;
  Opts.StopAtTarget = false;
  MinimizeResult MR = P.minimize(Obj, {-1.2, 1.0}, R, Opts);
  EXPECT_LT(MR.F, 1e-3);
}

TEST(NelderMeadTest, SolvesQuadratic) {
  Objective Obj = makeSphere(3);
  Obj.MaxEvals = 20'000;
  NelderMead NM;
  RNG R(3);
  MinimizeOptions Opts;
  Opts.LocalBudget = 20'000;
  Opts.StopAtTarget = false;
  MinimizeResult MR = NM.minimize(Obj, {2.0, -3.0, 1.0}, R, Opts);
  EXPECT_LT(MR.F, 1e-8);
}

/// Property sweep: from a start a few million ulps away, the ULP pattern
/// search lands on the *exact* double c that zeroes |x - c|, across 600
/// orders of magnitude — raw-space methods cannot do this, and it is why
/// basinhopping resolves boundary values to the last ulp (paper Table 2).
/// (Far-away starts sit on |x-c|'s floating-point *plateau* — |x-c|
/// rounds to |c| — which is the global MCMC layer's job to escape; see
/// BasinHoppingTest.ReachesHugeMagnitudes.)
class UlpSearchExactTest : public ::testing::TestWithParam<double> {};

TEST_P(UlpSearchExactTest, FindsExactZeroFromNearbyStart) {
  double C = GetParam();
  Objective Obj(
      [C](const std::vector<double> &X) {
        return std::fabs(X[0] - C);
      },
      1);
  Obj.MaxEvals = 60'000;
  UlpPatternSearch U;
  RNG R(4);
  MinimizeOptions Opts;
  Opts.LocalBudget = 60'000;
  Opts.StepBits = 30;
  double Start = clampedFromOrderedBits(orderedBits(C) + 3'000'000);
  MinimizeResult MR = U.minimize(Obj, {Start}, R, Opts);
  EXPECT_EQ(MR.F, 0.0) << "target " << C << " best " << MR.X[0];
  EXPECT_EQ(bitsOf(MR.X[0]), bitsOf(C));
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, UlpSearchExactTest,
                         ::testing::Values(1e-300, -1e-300, 1.49e-8, 0.25,
                                           -1.0, 3.14159, 1e8, -2.5e157,
                                           1.5e308));

TEST(BasinHoppingTest, EscapesLocalMinima) {
  // W(x) = |x-1| * |x^2-4| has zeros at 1, 2, -2 and plateaus between.
  Objective Obj(
      [](const std::vector<double> &X) {
        return std::fabs(X[0] - 1.0) *
               std::fabs(X[0] * X[0] - 4.0);
      },
      1);
  Obj.MaxEvals = 30'000;
  BasinHopping BH;
  RNG R(5);
  MinimizeOptions Opts;
  MinimizeResult MR = BH.minimize(Obj, {50.0}, R, Opts);
  EXPECT_EQ(MR.F, 0.0);
  EXPECT_TRUE(MR.ReachedTarget);
}

TEST(BasinHoppingTest, DeterministicGivenSeed) {
  auto Run = [](uint64_t Seed) {
    Objective Obj(
        [](const std::vector<double> &X) {
          return std::fabs(std::sin(X[0]) - 0.5) + 0.001 * std::fabs(X[0]);
        },
        1);
    Obj.MaxEvals = 5'000;
    Obj.StopAtTarget = false;
    BasinHopping BH;
    RNG R(Seed);
    MinimizeOptions Opts;
    return BH.minimize(Obj, {10.0}, R, Opts);
  };
  MinimizeResult A = Run(99), B = Run(99), C = Run(100);
  EXPECT_EQ(A.F, B.F);
  EXPECT_EQ(A.X, B.X);
  // A different seed explores differently (value may coincide, path not).
  EXPECT_EQ(C.Evals, C.Evals); // sanity use
}

TEST(BasinHoppingTest, EarlyStopSavesBudget) {
  uint64_t EvalsWith, EvalsWithout;
  for (bool Stop : {true, false}) {
    Objective Obj(
        [](const std::vector<double> &X) { return std::fabs(X[0]); }, 1);
    Obj.MaxEvals = 10'000;
    BasinHopping BH;
    RNG R(6);
    MinimizeOptions Opts;
    Opts.StopAtTarget = Stop;
    MinimizeResult MR = BH.minimize(Obj, {3.0}, R, Opts);
    (Stop ? EvalsWith : EvalsWithout) = MR.Evals;
    EXPECT_EQ(MR.F, 0.0);
  }
  EXPECT_LT(EvalsWith, EvalsWithout);
}

TEST(BasinHoppingTest, ReachesHugeMagnitudes) {
  // Overflow-style objective: minimized by |x| >= 1e308.
  Objective Obj(
      [](const std::vector<double> &X) {
        double A = std::fabs(4.0 * X[0] * X[0]);
        return A < MaxDouble ? MaxDouble - A : 0.0;
      },
      1);
  Obj.MaxEvals = 40'000;
  BasinHopping BH;
  RNG R(7);
  MinimizeOptions Opts;
  MinimizeResult MR = BH.minimize(Obj, {1.0}, R, Opts);
  EXPECT_EQ(MR.F, 0.0);
  EXPECT_GT(std::fabs(MR.X[0]), 1e150);
}

TEST(DifferentialEvolutionTest, SolvesSphereInBox) {
  Objective Obj = makeSphere(2);
  Obj.MaxEvals = 30'000;
  DifferentialEvolution DE;
  RNG R(8);
  MinimizeOptions Opts;
  Opts.Lo = -10.0;
  Opts.Hi = 10.0;
  Opts.StopAtTarget = false;
  MinimizeResult MR = DE.minimize(Obj, {5.0, 5.0}, R, Opts);
  EXPECT_LT(MR.F, 1e-10);
}

TEST(DifferentialEvolutionTest, RespectsBounds) {
  Objective Obj(
      [](const std::vector<double> &X) {
        EXPECT_GE(X[0], -2.0);
        EXPECT_LE(X[0], 2.0);
        return X[0] * X[0];
      },
      1);
  Obj.MaxEvals = 2'000;
  DifferentialEvolution DE;
  RNG R(9);
  MinimizeOptions Opts;
  Opts.Lo = -2.0;
  Opts.Hi = 2.0;
  Opts.StopAtTarget = false;
  DE.minimize(Obj, {1.0}, R, Opts);
}

TEST(RandomSearchTest, EventuallyHitsEasyRegion) {
  // Characteristic function of [0, 100] — flat elsewhere, the Fig. 7
  // degenerate case. Random search finds it; gradient-style guidance
  // could not do better.
  Objective Obj(
      [](const std::vector<double> &X) {
        return X[0] >= 0.0 && X[0] <= 100.0 ? 0.0 : 1.0;
      },
      1);
  Obj.MaxEvals = 100'000;
  RandomSearch RS;
  RNG R(10);
  MinimizeOptions Opts;
  Opts.Lo = -1e4;
  Opts.Hi = 1e4;
  MinimizeResult MR = RS.minimize(Obj, {-500.0}, R, Opts);
  EXPECT_EQ(MR.F, 0.0);
}

TEST(OptimizerTest, AllBackendsRespectEvalBudget) {
  std::unique_ptr<Optimizer> Backends[] = {
      std::make_unique<BasinHopping>(),
      std::make_unique<DifferentialEvolution>(),
      std::make_unique<Powell>(),
      std::make_unique<NelderMead>(),
      std::make_unique<UlpPatternSearch>(),
      std::make_unique<RandomSearch>(),
  };
  for (auto &Backend : Backends) {
    Objective Obj(
        [](const std::vector<double> &X) {
          return X[0] * X[0] + 1.0; // never reaches 0
        },
        1);
    Obj.MaxEvals = 500;
    RNG R(11);
    MinimizeOptions Opts;
    Opts.LocalBudget = 500;
    MinimizeResult MR = Backend->minimize(Obj, {4.0}, R, Opts);
    // Allow a small overshoot for in-flight sweeps.
    EXPECT_LE(MR.Evals, 600u) << Backend->name();
    EXPECT_FALSE(MR.ReachedTarget) << Backend->name();
  }
}

} // namespace
