//===--- RandomModule.h - Shared randomized-module generator ---*- C++ -*-===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The randomized forward-CFG module generator shared by the VM
/// differential tests and the abstract-interpretation soundness fuzz:
/// verifier-clean modules exercising every construct the lowering (and
/// the absint transfer functions) handle, plus the deterministic input
/// battery of ordinary magnitudes, wild bit patterns, and IEEE specials.
///
//===----------------------------------------------------------------------===//

#ifndef WDM_TESTS_RANDOMMODULE_H
#define WDM_TESTS_RANDOMMODULE_H

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "support/RNG.h"

#include <limits>
#include <string>
#include <vector>

namespace wdm::testutil {

/// Deterministic input battery: ordinary magnitudes, wild bit patterns,
/// and the IEEE specials every engine disagreement hides behind.
inline std::vector<double> drawInput(RNG &Rand, unsigned Dim) {
  static const double Specials[] = {
      0.0,
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      1.0e308,
      -1.0e308,
      4.9e-324,
      -1.0,
      1.0,
  };
  std::vector<double> X(Dim);
  for (double &V : X) {
    double P = Rand.uniform();
    if (P < 0.5)
      V = Rand.uniform(-100.0, 100.0);
    else if (P < 0.8)
      V = Rand.anyFiniteDouble();
    else
      V = Specials[Rand.below(sizeof(Specials) / sizeof(Specials[0]))];
  }
  return X;
}

/// Generates a verifier-clean random module: forward-only CFGs over
/// doubles/ints/bools, globals, allocas, site gates, select, a helper
/// call, and an occasional trap — every construct the lowering handles.
inline void buildRandomModule(ir::Module &M, RNG &Rand) {
  ir::IRBuilder B(M);
  ir::GlobalVar *GD = M.addGlobalDouble("gd", 1.5);
  ir::GlobalVar *GI = M.addGlobalInt("gi", 7);
  for (int K = 0; K < 4; ++K)
    M.allocateSiteId();

  // A small always-terminating helper the main function can call.
  ir::Function *Helper = M.addFunction("helper", ir::Type::Double);
  {
    ir::Argument *A = Helper->addArg(ir::Type::Double, "a");
    ir::Argument *Bv = Helper->addArg(ir::Type::Double, "b");
    ir::BasicBlock *HEntry = Helper->addBlock("entry");
    ir::BasicBlock *HT = Helper->addBlock("t");
    ir::BasicBlock *HF = Helper->addBlock("f");
    B.setInsertAppend(HEntry);
    ir::Instruction *C = B.fcmp(ir::CmpPred::LT, A, Bv);
    B.condbr(C, HT, HF);
    B.setInsertAppend(HT);
    B.ret(B.fadd(A, B.sin(Bv)));
    B.setInsertAppend(HF);
    B.ret(B.fmul(A, B.fsub(Bv, B.lit(0.5))));
  }

  unsigned NumArgs = 1 + static_cast<unsigned>(Rand.below(3));
  ir::Function *F = M.addFunction("f", ir::Type::Double);
  std::vector<ir::Value *> ArgVals;
  for (unsigned K = 0; K < NumArgs; ++K)
    ArgVals.push_back(F->addArg(ir::Type::Double, "x" + std::to_string(K)));

  unsigned NumBlocks = 3 + static_cast<unsigned>(Rand.below(5));
  std::vector<ir::BasicBlock *> Blocks;
  for (unsigned K = 0; K < NumBlocks; ++K)
    Blocks.push_back(F->addBlock("b" + std::to_string(K)));

  // Dominance discipline: only entry-block definitions (which dominate
  // everything) and current-block definitions are used as operands.
  std::vector<ir::Value *> EntryD = ArgVals, EntryI, EntryB;
  std::vector<ir::Instruction *> Allocas;

  for (unsigned BI = 0; BI < NumBlocks; ++BI) {
    ir::BasicBlock *BB = Blocks[BI];
    B.setInsertAppend(BB);
    bool IsEntry = BI == 0;
    std::vector<ir::Value *> D = EntryD, IV = EntryI, BV = EntryB;

    if (IsEntry) {
      // A couple of stack slots, entry-only so every use is dominated.
      for (int K = 0; K < 2; ++K) {
        ir::Instruction *Slot = B.alloca_(ir::Type::Double);
        B.store(Slot, D[Rand.below(D.size())]);
        Allocas.push_back(Slot);
      }
    }

    unsigned NumOps = 2 + static_cast<unsigned>(Rand.below(5));
    for (unsigned K = 0; K < NumOps; ++K) {
      ir::Value *X = D[Rand.below(D.size())];
      ir::Value *Y = D[Rand.below(D.size())];
      switch (Rand.below(14)) {
      case 0:
        D.push_back(B.fadd(X, Y));
        break;
      case 1:
        D.push_back(B.fmul(X, Y));
        break;
      case 2:
        D.push_back(B.fdiv(X, B.fadd(Y, B.lit(0.25))));
        break;
      case 3:
        D.push_back(B.sin(X));
        break;
      case 4:
        D.push_back(B.fmin(X, B.sqrt(B.fabs(Y))));
        break;
      case 5:
        BV.push_back(B.fcmp(
            static_cast<ir::CmpPred>(Rand.below(6)), X, Y));
        break;
      case 6:
        IV.push_back(B.highword(X));
        break;
      case 7:
        if (!IV.empty()) {
          ir::Value *I1 = IV[Rand.below(IV.size())];
          ir::Value *I2 = IV[Rand.below(IV.size())];
          IV.push_back(B.iadd(B.ixor(I1, I2), B.litInt(3)));
          BV.push_back(
              B.icmp(static_cast<ir::CmpPred>(Rand.below(6)), I1, I2));
        }
        break;
      case 8:
        if (!BV.empty())
          D.push_back(B.select(BV[Rand.below(BV.size())], X, Y));
        break;
      case 9:
        B.storeg(GD, X);
        D.push_back(B.loadg(GD));
        break;
      case 10:
        IV.push_back(B.loadg(GI));
        break;
      case 11:
        // Ids 0..3 are allocated; 4 exercises the beyond-range path
        // (reads enabled in both tiers).
        BV.push_back(B.siteEnabled(static_cast<int>(Rand.below(5))));
        break;
      case 12:
        if (!Allocas.empty()) {
          ir::Instruction *Slot = Allocas[Rand.below(Allocas.size())];
          B.store(Slot, X);
          D.push_back(B.load(Slot));
        }
        break;
      case 13:
        D.push_back(B.call(Helper, {X, Y}));
        break;
      }
    }
    if (IsEntry) {
      EntryD = D;
      EntryI = IV;
      EntryB = BV;
    }

    // Terminator: forward-only control flow, so every run terminates.
    if (BI + 1 == NumBlocks) {
      B.ret(D[Rand.below(D.size())]);
    } else if (Rand.chance(0.05)) {
      B.trap(100 + static_cast<int>(BI), "random trap");
    } else if (!BV.empty() && Rand.chance(0.7) && BI + 2 < NumBlocks) {
      size_t T1 = BI + 1 + Rand.below(NumBlocks - BI - 1);
      size_t T2 = BI + 1 + Rand.below(NumBlocks - BI - 1);
      B.condbr(BV[Rand.below(BV.size())], Blocks[T1], Blocks[T2]);
    } else {
      B.br(Blocks[BI + 1 + Rand.below(NumBlocks - BI - 1)]);
    }
  }
}

} // namespace wdm::testutil

#endif // WDM_TESTS_RANDOMMODULE_H
