//===--- SatTests.cpp - FP satisfiability (Instance 5) tests --------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "analyses/PathReachability.h"
#include "opt/BasinHopping.h"
#include "ir/Verifier.h"
#include "sat/Distance.h"
#include "sat/LowerToIR.h"
#include "sat/SExprParser.h"
#include "sat/Solver.h"
#include "support/FPUtils.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace wdm;
using namespace wdm::sat;

namespace {

CNF parse(const char *Text) {
  Expected<CNF> C = parseConstraint(Text);
  EXPECT_TRUE(C.hasValue()) << (C.hasValue() ? "" : C.error());
  return C.take();
}

// --------------------------------------------------------------------------
// Parser and evaluation
// --------------------------------------------------------------------------

TEST(SExprParserTest, ParsesConjunctionsAndDisjunctions) {
  CNF C = parse("(and (or (< x 1.0) (>= y 2.0)) (= (* x y) 3.5))");
  EXPECT_EQ(C.Clauses.size(), 2u);
  EXPECT_EQ(C.NumVars, 2u);
  EXPECT_EQ(C.VarNames[0], "x");
  EXPECT_EQ(C.Clauses[0].Atoms.size(), 2u);
  EXPECT_EQ(C.Clauses[1].Atoms.size(), 1u);
}

TEST(SExprParserTest, SingleAtomConstraint) {
  CNF C = parse("(<= (+ x 1.0) 2.0)");
  EXPECT_EQ(C.Clauses.size(), 1u);
  EXPECT_TRUE(C.satisfiedBy({0.5}));
  EXPECT_FALSE(C.satisfiedBy({1.5}));
}

TEST(SExprParserTest, TranscendentalFunctions) {
  CNF C = parse("(< (+ x (tan x)) 2.0)");
  EXPECT_EQ(C.NumVars, 1u);
  EXPECT_TRUE(C.satisfiedBy({0.5}));
}

TEST(SExprParserTest, UnaryMinus) {
  CNF C = parse("(= (- x) 3.0)");
  EXPECT_TRUE(C.satisfiedBy({-3.0}));
}

TEST(SExprParserTest, Errors) {
  EXPECT_FALSE(parseConstraint("(and)").hasValue());
  EXPECT_FALSE(parseConstraint("(< x)").hasValue());
  EXPECT_FALSE(parseConstraint("(frobnicate x 1)").hasValue());
  EXPECT_FALSE(parseConstraint("(< x 1").hasValue());
  EXPECT_FALSE(parseConstraint("(< x 1)) extra").hasValue());
}

TEST(ConstraintTest, ToStringRoundTrips) {
  CNF C = parse("(and (or (< x 1.0) (>= y 2.0)) (= (* x y) 3.5))");
  CNF C2 = parse(C.toString().c_str());
  EXPECT_EQ(C2.Clauses.size(), C.Clauses.size());
  EXPECT_EQ(C2.NumVars, C.NumVars);
  for (const std::vector<double> &X :
       {std::vector<double>{0.5, 7.0}, {3.5, 1.0}, {2.0, 1.75}})
    EXPECT_EQ(C.satisfiedBy(X), C2.satisfiedBy(X));
}

TEST(ConstraintTest, IEEEComparisonSemantics) {
  CNF C = parse("(= (/ x x) 1.0)");
  EXPECT_TRUE(C.satisfiedBy({2.0}));
  EXPECT_FALSE(C.satisfiedBy({0.0})); // 0/0 = NaN != 1
  CNF C2 = parse("(!= (/ x x) (/ x x))");
  EXPECT_TRUE(C2.satisfiedBy({0.0})); // NaN != NaN
}

// --------------------------------------------------------------------------
// Atom distances, parameterized across metrics
// --------------------------------------------------------------------------

class AtomDistanceTest : public ::testing::TestWithParam<DistanceMetric> {};

TEST_P(AtomDistanceTest, ZeroIffHolds) {
  DistanceMetric Metric = GetParam();
  const char *Atoms[] = {
      "(< x 1.0)",  "(<= x 1.0)", "(> x 1.0)",
      "(>= x 1.0)", "(= x 1.0)",  "(!= x 1.0)",
  };
  RNG R(41);
  for (const char *Text : Atoms) {
    CNF C = parse(Text);
    const Atom &A = C.Clauses[0].Atoms[0];
    for (int I = 0; I < 200; ++I) {
      double X = I == 0 ? 1.0 : R.uniform(-5, 5);
      double D = atomDistance(A, {X}, Metric);
      EXPECT_GE(D, 0.0);
      EXPECT_EQ(D == 0.0, A.holds({X}))
          << Text << " at x = " << X << " metric "
          << (Metric == DistanceMetric::Ulp ? "ulp" : "abs");
    }
  }
}

TEST_P(AtomDistanceTest, DecreasesTowardSatisfaction) {
  DistanceMetric Metric = GetParam();
  CNF C = parse("(<= x 1.0)");
  const Atom &A = C.Clauses[0].Atoms[0];
  EXPECT_GT(atomDistance(A, {9.0}, Metric), atomDistance(A, {5.0}, Metric));
  EXPECT_GT(atomDistance(A, {5.0}, Metric), atomDistance(A, {2.0}, Metric));
}

INSTANTIATE_TEST_SUITE_P(Metrics, AtomDistanceTest,
                         ::testing::Values(DistanceMetric::Absolute,
                                           DistanceMetric::Ulp));

TEST(CNFWeakDistanceTest, Def31Properties) {
  CNF C = parse("(and (or (< x 0.0) (> x 10.0)) (= (* x x) 400.0))");
  CNFWeakDistance W(C, DistanceMetric::Ulp);
  RNG R(42);
  for (int I = 0; I < 300; ++I) {
    double X = I == 0 ? 20.0 : (I == 1 ? -20.0 : R.uniform(-50, 50));
    double D = W({X});
    EXPECT_GE(D, 0.0);
    EXPECT_EQ(D == 0.0, C.satisfiedBy({X})) << "x = " << X;
  }
}

// --------------------------------------------------------------------------
// Solver
// --------------------------------------------------------------------------

TEST(XSatSolverTest, PaperSection1Formula) {
  // x < 1 AND x + 1 >= 2: satisfiable under round-to-nearest exactly at
  // the largest double below 1 (the MathSAT example from Section 1).
  CNF C = parse("(and (< x 1.0) (>= (+ x 1.0) 2.0))");
  XSatSolver Solver;
  XSatSolver::Options Opts;
  Opts.Reduce.Seed = 43;
  Opts.Reduce.MaxEvals = 120'000;
  SatResult R = Solver.solve(C, Opts);
  ASSERT_TRUE(R.Sat);
  EXPECT_EQ(R.Model[0], 0.9999999999999999);
}

TEST(XSatSolverTest, TanVariantFromFig1b) {
  // x < 1 AND x + tan(x) >= 2 — the formula SMT solvers struggle with
  // (system-dependent tan, Fig. 1(b)).
  CNF C = parse("(and (< x 1.0) (>= (+ x (tan x)) 2.0))");
  XSatSolver Solver;
  XSatSolver::Options Opts;
  Opts.Reduce.Seed = 44;
  Opts.Reduce.MaxEvals = 150'000;
  SatResult R = Solver.solve(C, Opts);
  ASSERT_TRUE(R.Sat);
  EXPECT_TRUE(C.satisfiedBy(R.Model));
  EXPECT_LT(R.Model[0], 1.0);
}

TEST(XSatSolverTest, SimpleUnsat) {
  CNF C = parse("(and (> x 1.0) (< x 0.0))");
  XSatSolver Solver;
  XSatSolver::Options Opts;
  Opts.Reduce.Seed = 45;
  Opts.Reduce.MaxEvals = 20'000;
  Opts.Reduce.Starts = 8;
  SatResult R = Solver.solve(C, Opts);
  EXPECT_FALSE(R.Sat);
  EXPECT_GT(R.WStar, 0.0);
}

TEST(XSatSolverTest, MultiVariableNonlinear) {
  CNF C = parse("(and (= (+ x y) 10.0) (= (* x y) 21.0) (< x y))");
  XSatSolver Solver;
  XSatSolver::Options Opts;
  Opts.Reduce.Seed = 46;
  Opts.Reduce.MaxEvals = 200'000;
  Opts.Reduce.Starts = 16;
  SatResult R = Solver.solve(C, Opts);
  ASSERT_TRUE(R.Sat);
  EXPECT_TRUE(C.satisfiedBy(R.Model));
}

TEST(XSatSolverTest, DisjunctionPicksEitherBranch) {
  CNF C = parse("(and (or (= x 2.0) (= x 5.0)) (> x 3.0))");
  XSatSolver Solver;
  XSatSolver::Options Opts;
  Opts.Reduce.Seed = 47;
  Opts.Reduce.MaxEvals = 60'000;
  SatResult R = Solver.solve(C, Opts);
  ASSERT_TRUE(R.Sat);
  EXPECT_EQ(R.Model[0], 5.0);
}

TEST(XSatSolverTest, BothMetricsSolve) {
  CNF C = parse("(= (* x x) 4.0)");
  for (DistanceMetric Metric :
       {DistanceMetric::Absolute, DistanceMetric::Ulp}) {
    XSatSolver Solver;
    XSatSolver::Options Opts;
    Opts.Metric = Metric;
    Opts.Reduce.Seed = 48;
    Opts.Reduce.MaxEvals = 120'000;
    SatResult R = Solver.solve(C, Opts);
    ASSERT_TRUE(R.Sat);
    EXPECT_TRUE(C.satisfiedBy(R.Model));
  }
}

TEST(XSatSolverTest, TwoIsNotAFloatingPointSquare) {
  // A delightful binary64 fact: no double satisfies x*x == 2.0 — the
  // squares of the doubles adjacent to sqrt(2) round to
  // 1.9999999999999996 and 2.0000000000000004. A semantics-faithful
  // solver must report UNSAT where real-arithmetic reasoning says SAT.
  CNF C = parse("(= (* x x) 2.0)");
  XSatSolver Solver;
  XSatSolver::Options Opts;
  Opts.Reduce.Seed = 52;
  Opts.Reduce.MaxEvals = 60'000;
  SatResult R = Solver.solve(C, Opts);
  EXPECT_FALSE(R.Sat);
  // The search gets within one ulp of the "real" solution even so.
  EXPECT_LE(R.WStar, 4.0);
}

// --------------------------------------------------------------------------
// Instance 5 equivalence: solver vs path reachability on the lowering
// --------------------------------------------------------------------------

class Instance5EquivalenceTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(Instance5EquivalenceTest, SolverAgreesWithPathReachability) {
  CNF C = parse(GetParam());

  // Route A: the XSat-style solver.
  XSatSolver Solver;
  XSatSolver::Options SOpts;
  SOpts.Reduce.Seed = 49;
  SOpts.Reduce.MaxEvals = 120'000;
  SatResult SR = Solver.solve(C, SOpts);

  // Route B: lower to `if (c)` and solve path reachability to the true
  // branch (paper: "the two problems are equivalent").
  ir::Module M;
  LoweredCNF L = lowerToIR(C, M, "cnf_prog");
  ASSERT_TRUE(ir::verifyModule(M).ok()) << ir::verifyModule(M).message();
  instr::PathSpec Spec;
  Spec.Legs.push_back({L.Branch, true});
  analyses::PathReachability PR(M, *L.F, Spec);
  opt::BasinHopping Backend;
  core::ReductionOptions POpts;
  POpts.Seed = 50;
  POpts.MaxEvals = 120'000;
  core::ReductionResult RR = PR.findOne(Backend, POpts);

  EXPECT_EQ(SR.Sat, RR.Found) << GetParam();
  if (SR.Sat) {
    EXPECT_TRUE(C.satisfiedBy(SR.Model));
  }
  if (RR.Found) {
    EXPECT_TRUE(C.satisfiedBy(RR.Witness));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formulas, Instance5EquivalenceTest,
    ::testing::Values("(and (< x 1.0) (>= (+ x 1.0) 2.0))",
                      "(= (* x x) 4.0)",
                      "(and (<= 0.0 x) (<= x 10.0) (= (sin x) 0.0))",
                      "(and (> x 1.0) (< x 0.0))",
                      "(and (or (< x -5.0) (> x 5.0)) (= (* x x) 49.0))"));

// --------------------------------------------------------------------------
// Lowered program semantics
// --------------------------------------------------------------------------

TEST(LowerToIRTest, AgreesWithDirectEvaluation) {
  CNF C = parse("(and (or (< x 1.0) (>= y 2.0)) (= (* x y) 3.5))");
  ir::Module M;
  LoweredCNF L = lowerToIR(C, M, "check");
  exec::Engine E(M);
  exec::ExecContext Ctx(M);
  RNG R(51);
  for (int I = 0; I < 300; ++I) {
    std::vector<double> X{R.uniform(-4, 4), R.uniform(-4, 4)};
    if (I == 0)
      X = {0.5, 7.0};
    exec::ExecResult ER = E.run(
        L.F, {exec::RTValue::ofDouble(X[0]), exec::RTValue::ofDouble(X[1])},
        Ctx);
    ASSERT_TRUE(ER.ok());
    EXPECT_EQ(ER.ReturnValue.asInt() == 1, C.satisfiedBy(X));
  }
}

} // namespace
