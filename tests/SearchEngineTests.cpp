//===--- SearchEngineTests.cpp - Parallel multi-start driver tests -------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "core/SearchEngine.h"

#include "analyses/BoundaryAnalysis.h"
#include "opt/BasinHopping.h"
#include "opt/DifferentialEvolution.h"
#include "opt/Powell.h"
#include "opt/RandomSearch.h"
#include "subjects/Fig2.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

using namespace wdm;
using namespace wdm::core;

namespace {

class LambdaWeak : public WeakDistance {
public:
  using Fn = std::function<double(const std::vector<double> &)>;
  LambdaWeak(Fn F, unsigned Dim) : F(std::move(F)), Dim(Dim) {}
  unsigned dim() const override { return Dim; }
  double operator()(const std::vector<double> &X) override { return F(X); }

private:
  Fn F;
  unsigned Dim;
};

/// Mints LambdaWeak evaluators sharing one pure callable — the
/// thread-safe analogue of the per-worker interpreter contexts.
class LambdaWeakFactory : public WeakDistanceFactory {
public:
  LambdaWeakFactory(LambdaWeak::Fn F, unsigned Dim)
      : F(std::move(F)), Dim(Dim) {}
  unsigned dim() const override { return Dim; }
  std::unique_ptr<WeakDistance> make() override {
    return std::make_unique<LambdaWeak>(F, Dim);
  }

private:
  LambdaWeak::Fn F;
  unsigned Dim;
};

class LambdaProblem : public AnalysisProblem {
public:
  using Fn = std::function<bool(const std::vector<double> &)>;
  LambdaProblem(Fn F, unsigned Dim) : F(std::move(F)), Dim(Dim) {}
  unsigned dim() const override { return Dim; }
  bool contains(const std::vector<double> &X) override { return F(X); }

private:
  Fn F;
  unsigned Dim;
};

void expectSameResult(const SearchResult &A, const SearchResult &B) {
  EXPECT_EQ(A.Found, B.Found);
  EXPECT_EQ(A.Witness, B.Witness);
  EXPECT_EQ(A.WStar, B.WStar);
  EXPECT_EQ(A.WStarAt, B.WStarAt);
  EXPECT_EQ(A.Evals, B.Evals);
  EXPECT_EQ(A.StartsUsed, B.StartsUsed);
  EXPECT_EQ(A.UnsoundCandidates, B.UnsoundCandidates);
}

TEST(SearchEngineTest, ThreadCountInvarianceWhenNotFound) {
  // Strictly positive weak distance: every start must exhaust its exact
  // budget slice, so Evals/StartsUsed are maximally sensitive to any
  // scheduling dependence.
  auto Run = [](unsigned Threads) {
    LambdaWeakFactory Factory(
        [](const std::vector<double> &X) { return X[0] * X[0] + 1.0; }, 1);
    SearchEngine Engine(Factory, nullptr);
    opt::RandomSearch Backend;
    SearchOptions Opts;
    Opts.Seed = 11;
    Opts.Starts = 6;
    Opts.MaxEvals = 6'000;
    Opts.Threads = Threads;
    return Engine.solve(Backend, Opts);
  };
  SearchResult Sequential = Run(1);
  SearchResult Parallel = Run(4);
  EXPECT_FALSE(Sequential.Found);
  EXPECT_EQ(Sequential.Evals, 6'000u);
  EXPECT_EQ(Sequential.StartsUsed, 6u);
  expectSameResult(Sequential, Parallel);
}

TEST(SearchEngineTest, ThreadCountInvarianceWhenFound) {
  auto Run = [](unsigned Threads) {
    LambdaWeakFactory Factory(
        [](const std::vector<double> &X) { return std::fabs(X[0] - 7.0); },
        1);
    LambdaProblem Problem(
        [](const std::vector<double> &X) { return X[0] == 7.0; }, 1);
    SearchEngine Engine(Factory, &Problem);
    opt::BasinHopping Backend;
    SearchOptions Opts;
    Opts.Seed = 1;
    Opts.Starts = 12;
    Opts.MaxEvals = 36'000;
    Opts.Threads = Threads;
    return Engine.solve(Backend, Opts);
  };
  SearchResult Sequential = Run(1);
  SearchResult Parallel = Run(4);
  ASSERT_TRUE(Sequential.Found);
  EXPECT_EQ(Sequential.Witness[0], 7.0);
  expectSameResult(Sequential, Parallel);
}

TEST(SearchEngineTest, CountsUnsoundCandidatesAtEveryThreadCount) {
  // Deliberately FP-inaccurate weak distance (Limitation 2): it claims 0
  // on a whole interval, but only x == 3 is in S. Verification must
  // reject the spurious zeros, count them, and keep the counts identical
  // across thread counts.
  auto Run = [](unsigned Threads) {
    LambdaWeakFactory Factory(
        [](const std::vector<double> &X) {
          return std::fabs(X[0] - 3.0) < 0.5 ? 0.0
                                             : std::fabs(X[0] - 3.0);
        },
        1);
    LambdaProblem Problem(
        [](const std::vector<double> &X) { return X[0] == 3.0; }, 1);
    SearchEngine Engine(Factory, &Problem);
    opt::RandomSearch Backend;
    SearchOptions Opts;
    Opts.Seed = 33;
    Opts.Starts = 8;
    Opts.MaxEvals = 8'000;
    Opts.StartLo = -5.0;
    Opts.StartHi = 5.0;
    Opts.Threads = Threads;
    Opts.VerifySolutions = true;
    return Engine.solve(Backend, Opts);
  };
  SearchResult Sequential = Run(1);
  SearchResult Parallel = Run(4);
  // The box puts plenty of probability mass on the fake-zero interval;
  // every start that lands there must be rejected.
  EXPECT_GT(Sequential.UnsoundCandidates, 0u);
  if (Sequential.Found)
    EXPECT_EQ(Sequential.Witness[0], 3.0);
  expectSameResult(Sequential, Parallel);
}

TEST(SearchEngineTest, FacadeMatchesSharedEvaluatorEngine) {
  // Reduction is a façade over SearchEngine; both entries must produce
  // bit-identical results for the same seed.
  LambdaWeak W(
      [](const std::vector<double> &X) {
        return std::fabs(std::sin(X[0]) + 0.3) + 0.001;
      },
      1);
  opt::BasinHopping Backend;
  ReductionOptions Opts;
  Opts.Seed = 6;
  Opts.MaxEvals = 3'000;

  Reduction Facade(W, nullptr);
  ReductionResult A = Facade.solve(Backend, Opts);
  SearchEngine Engine(W, nullptr);
  SearchResult B = Engine.solve(Backend, Opts);
  expectSameResult(A, B);
}

TEST(SearchEngineTest, PortfolioRoundRobinIsDeterministicAndSolves) {
  opt::BasinHopping BH;
  opt::DifferentialEvolution DE;
  opt::Powell PW;
  auto Run = [&] {
    LambdaWeakFactory Factory(
        [](const std::vector<double> &X) { return std::fabs(X[0] - 3.0); },
        1);
    SearchEngine Engine(Factory, nullptr);
    SearchOptions Opts;
    Opts.Seed = 99;
    Opts.Starts = 9;
    Opts.MaxEvals = 27'000;
    Opts.Portfolio = {{&BH, 1.0}, {&DE, 1.0}, {&PW, 1.0}};
    return Engine.run(Opts);
  };
  SearchResult A = Run();
  SearchResult B = Run();
  EXPECT_TRUE(A.Found);
  expectSameResult(A, B);
}

TEST(SearchEngineTest, WeightedPortfolioIsDeterministic) {
  opt::BasinHopping BH;
  opt::RandomSearch RS;
  auto Run = [&] {
    LambdaWeakFactory Factory(
        [](const std::vector<double> &X) { return X[0] * X[0] + 2.0; }, 1);
    SearchEngine Engine(Factory, nullptr);
    SearchOptions Opts;
    Opts.Seed = 7;
    Opts.Starts = 10;
    Opts.MaxEvals = 5'000;
    Opts.Portfolio = {{&BH, 0.25}, {&RS, 0.75}};
    Opts.Assignment = PortfolioAssign::Weighted;
    return Engine.run(Opts);
  };
  SearchResult A = Run();
  SearchResult B = Run();
  EXPECT_FALSE(A.Found);
  expectSameResult(A, B);
}

TEST(SearchEngineTest, StartBoxFlowsIntoBackendBox) {
  // With MinOpts.Lo/Hi left unset (NaN), the engine hands the start box
  // to the backend — DE (a hard-box method) must then never sample
  // outside [StartLo, StartHi].
  LambdaWeak W(
      [](const std::vector<double> &X) { return std::fabs(X[0]) + 1.0; },
      1);
  SearchEngine Engine(W, nullptr);
  opt::DifferentialEvolution DE;
  opt::VectorRecorder Rec;
  SearchOptions Opts;
  Opts.Seed = 42;
  Opts.Starts = 2;
  Opts.MaxEvals = 600;
  Opts.StartLo = 2.0;
  Opts.StartHi = 5.0;
  Opts.WildStartProb = 0.0;
  Engine.solve(DE, Opts, &Rec);
  ASSERT_GT(Rec.Samples.size(), 0u);
  for (const auto &Sample : Rec.Samples) {
    EXPECT_GE(Sample.X[0], 2.0);
    EXPECT_LE(Sample.X[0], 5.0);
  }
}

TEST(SearchEngineTest, DifferentialEvolutionHonorsExplicitBox) {
  opt::DifferentialEvolution DE;
  opt::VectorRecorder Rec;
  opt::Objective Obj(
      [](const std::vector<double> &X) { return X[0] * X[0] + 1.0; }, 1);
  Obj.MaxEvals = 500;
  Obj.setRecorder(&Rec);
  opt::MinimizeOptions Opts;
  Opts.Lo = -3.0;
  Opts.Hi = -1.0;
  RNG Rand(5);
  DE.minimize(Obj, {-2.0}, Rand, Opts);
  ASSERT_GT(Rec.Samples.size(), 0u);
  for (const auto &Sample : Rec.Samples) {
    EXPECT_GE(Sample.X[0], -3.0);
    EXPECT_LE(Sample.X[0], -1.0);
  }
}

TEST(SearchEngineTest, InvalidBoxFallsBackToDefaults) {
  // Lo >= Hi is an invalid box; sanitizedBox must fall back to the
  // defaults instead of tripping RNG::uniform's Lo < Hi contract.
  opt::RandomSearch RS;
  opt::Objective Obj(
      [](const std::vector<double> &X) { return std::fabs(X[0]) + 1.0; },
      1);
  Obj.MaxEvals = 200;
  opt::MinimizeOptions Opts;
  Opts.Lo = 4.0;
  Opts.Hi = 4.0;
  RNG Rand(9);
  opt::MinimizeResult R = RS.minimize(Obj, {1.0}, Rand, Opts);
  EXPECT_EQ(R.Evals, 200u);
}

TEST(SearchEngineTest, BudgetIsRespectedExactly) {
  // The audit contract: no backend calls eval() once done() holds, so a
  // multi-start run consumes exactly its budget when nothing is found.
  opt::BasinHopping BH;
  opt::Powell PW;
  opt::Optimizer *Backends[] = {&BH, &PW};
  for (opt::Optimizer *Backend : Backends) {
    LambdaWeak W(
        [](const std::vector<double> &X) { return X[0] * X[0] + 1.0; }, 1);
    SearchEngine Engine(W, nullptr);
    SearchOptions Opts;
    Opts.Seed = 13;
    Opts.Starts = 4;
    Opts.MaxEvals = 2'000;
    SearchResult R = Engine.solve(*Backend, Opts);
    EXPECT_LE(R.Evals, Opts.MaxEvals) << Backend->name();
  }
}

TEST(SearchEngineTest, BoundaryAnalysisRunsParallelThroughFactory) {
  // End-to-end: interpreter-backed weak distance, per-worker contexts
  // minted by IRWeakDistanceFactory, verification through the shared
  // oracle — same findings at every thread count.
  auto Run = [](unsigned Threads) {
    ir::Module M;
    subjects::Fig2 P = subjects::buildFig2(M);
    analyses::BoundaryAnalysis BVA(M, *P.F);
    opt::BasinHopping Backend;
    ReductionOptions Opts;
    Opts.Seed = 2019;
    Opts.MaxEvals = 30'000;
    Opts.Threads = Threads;
    return BVA.findOne(Backend, Opts);
  };
  SearchResult Sequential = Run(1);
  SearchResult Parallel = Run(4);
  ASSERT_TRUE(Sequential.Found);
  expectSameResult(Sequential, Parallel);
}

} // namespace
