//===--- ServeTests.cpp - src/serve/ daemon layer tests -------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
// The service bar: the HTTP wire layer parses incrementally and
// enforces its limits; the result cache is content-addressed exactly
// like the suite layer (formatting/limits-invariant), survives disk
// corruption, and single-flights concurrent identical requests; warm
// execution state makes a second request skip resolve/lower/compile
// while staying bit-identical; and the daemon itself — driven both
// in-process over real sockets and as a forked `wdm serve` — honors
// the deterministic-report contract, serves valid Prometheus, and
// drains gracefully on SIGTERM with an in-flight suite.
//
//===----------------------------------------------------------------------===//

#include "api/Analyzer.h"
#include "api/Report.h"
#include "api/Warm.h"
#include "obs/Telemetry.h"
#include "obs/Trace.h"
#include "serve/Client.h"
#include "serve/Http.h"
#include "serve/ResultCache.h"
#include "serve/Server.h"
#include "support/Hash.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace wdm;
using namespace wdm::serve;
using wdm::json::Value;

namespace {

std::string tempDir(const std::string &Stem) {
  std::string D = ::testing::TempDir() + "wdm_serve_" +
                  std::to_string(getpid()) + "_" + Stem;
  ::mkdir(D.c_str(), 0755);
  return D;
}

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(Out) << Path;
  Out << Text;
}

std::string readFileText(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Serve tests flip the global telemetry registry on (Server::start
/// does); leave the process state as found.
struct ObsQuiesce {
  ObsQuiesce() { reset(); }
  ~ObsQuiesce() { reset(); }
  static void reset() {
    obs::setEnabled(false);
    obs::resetMetrics();
    obs::stopTrace();
    obs::clearTrace();
  }
};

const char *Fig2SpecText = R"({
  "task": "boundary",
  "module": {"builtin": "fig2"},
  "search": {"seed": 2019, "max_evals": 20000, "threads": 1, "engine": "vm"}
})";

uint64_t counterIn(const Value &Snapshot, const std::string &Name) {
  if (const Value *Cs = Snapshot.find("counters"))
    if (const Value *C = Cs->find(Name))
      return static_cast<uint64_t>(C->asDouble());
  return 0;
}

/// Parses the serialized response the Server::handle seam returns.
struct ParsedResponse {
  int Status = 0;
  std::string Body;
  std::string ContentType;
};

ParsedResponse parseResponse(const std::string &Raw) {
  ParsedResponse P;
  size_t HeadEnd = Raw.find("\r\n\r\n");
  EXPECT_NE(HeadEnd, std::string::npos) << Raw;
  if (HeadEnd == std::string::npos)
    return P;
  size_t Sp = Raw.find(' ');
  P.Status = std::atoi(Raw.c_str() + Sp + 1);
  size_t Ct = Raw.find("Content-Type: ");
  if (Ct != std::string::npos && Ct < HeadEnd)
    P.ContentType = Raw.substr(Ct + 14, Raw.find("\r\n", Ct) - Ct - 14);
  P.Body = Raw.substr(HeadEnd + 4);
  return P;
}

//===----------------------------------------------------------------------===//
// HttpParser: incremental parsing and limits
//===----------------------------------------------------------------------===//

TEST(HttpParserTest, ParsesPostByteByByte) {
  std::string Raw = "POST /v1/run?x=1 HTTP/1.1\r\n"
                    "Host: localhost\r\n"
                    "Content-Type: application/json\r\n"
                    "Content-Length: 9\r\n"
                    "\r\n"
                    "{\"a\": 1}\n";
  HttpParser P;
  for (char C : Raw)
    P.feed(&C, 1);
  ASSERT_TRUE(P.done());
  const HttpRequest &R = P.request();
  EXPECT_EQ(R.Method, "POST");
  EXPECT_EQ(R.Target, "/v1/run?x=1");
  EXPECT_EQ(R.path(), "/v1/run");
  EXPECT_EQ(R.query(), "x=1");
  EXPECT_EQ(R.Version, "HTTP/1.1");
  EXPECT_EQ(R.header("content-type"), "application/json");
  EXPECT_EQ(R.header("HOST"), "localhost"); // Case-insensitive.
  EXPECT_EQ(R.header("absent"), "");
  EXPECT_EQ(R.Body, "{\"a\": 1}\n");
}

TEST(HttpParserTest, GetWithoutBodyCompletesAtHeaderEnd) {
  std::string Raw = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  HttpParser P;
  EXPECT_EQ(P.feed(Raw.data(), Raw.size()), HttpParser::State::Done);
  EXPECT_EQ(P.request().Method, "GET");
  EXPECT_TRUE(P.request().Body.empty());
}

TEST(HttpParserTest, MalformedRequestLineIs400) {
  std::string Raw = "NONSENSE\r\n\r\n";
  HttpParser P;
  P.feed(Raw.data(), Raw.size());
  ASSERT_TRUE(P.failed());
  EXPECT_EQ(P.errorStatus(), 400);
}

TEST(HttpParserTest, HeaderLimitIs431) {
  HttpParser::Limits L;
  L.MaxHeaderBytes = 64;
  HttpParser P(L);
  std::string Raw = "GET / HTTP/1.1\r\nX-Big: " + std::string(100, 'a');
  P.feed(Raw.data(), Raw.size());
  ASSERT_TRUE(P.failed());
  EXPECT_EQ(P.errorStatus(), 431);
}

TEST(HttpParserTest, BodyLimitIs413) {
  HttpParser::Limits L;
  L.MaxBodyBytes = 16;
  HttpParser P(L);
  std::string Raw = "POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
  P.feed(Raw.data(), Raw.size());
  ASSERT_TRUE(P.failed());
  EXPECT_EQ(P.errorStatus(), 413);
}

TEST(HttpParserTest, ChunkedUploadsAre501) {
  std::string Raw =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  HttpParser P;
  P.feed(Raw.data(), Raw.size());
  ASSERT_TRUE(P.failed());
  EXPECT_EQ(P.errorStatus(), 501);
}

TEST(HttpParserTest, SerializeResponseFramesBody) {
  std::string R = serializeResponse(404, "application/json", "{}");
  EXPECT_NE(R.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(R.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(R.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(R.substr(R.size() - 6), "\r\n\r\n{}");
}

//===----------------------------------------------------------------------===//
// Content addressing: canonicalization invariance
//===----------------------------------------------------------------------===//

TEST(SpecHashTest, FormattingAndMemberOrderInvariant) {
  Expected<std::string> A = specHash(R"({
    "task": "boundary", "module": {"builtin": "fig2"},
    "search": {"seed": 7, "max_evals": 1000}
  })");
  Expected<std::string> B = specHash(
      "{\"search\":{\"max_evals\":1000,\"seed\":7},"
      "\"module\":{\"builtin\":\"fig2\"},\"task\":\"boundary\"}");
  ASSERT_TRUE(A.hasValue()) << A.error();
  ASSERT_TRUE(B.hasValue()) << B.error();
  EXPECT_EQ(*A, *B);
}

TEST(SpecHashTest, LimitsBlockDoesNotChangeIdentity) {
  // PR 9's invariant carried into the cache: supervision policy is not
  // part of job identity, so a spec with a "limits" block hits the
  // entry its unsupervised twin populated.
  Expected<std::string> Bare = specHash(Fig2SpecText);
  std::string WithLimits = Fig2SpecText;
  WithLimits.insert(WithLimits.rfind('}'),
                    ", \"limits\": {\"timeout_sec\": 5, \"retries\": 2}");
  Expected<std::string> Limited = specHash(WithLimits);
  ASSERT_TRUE(Bare.hasValue()) << Bare.error();
  ASSERT_TRUE(Limited.hasValue()) << Limited.error();
  EXPECT_EQ(*Bare, *Limited);
}

TEST(SpecHashTest, BadSpecIsAnError) {
  EXPECT_FALSE(specHash("not json").hasValue());
  EXPECT_FALSE(specHash("[1,2]").hasValue());
  EXPECT_FALSE(specHash("{\"task\": \"nope\"}").hasValue());
}

//===----------------------------------------------------------------------===//
// ResultCache: LRU, disk level, corruption, single-flight
//===----------------------------------------------------------------------===//

TEST(ResultCacheTest, MissThenFulfillThenHit) {
  ResultCache C({"", 8});
  ResultCache::Lease L = C.acquire("aaaa");
  EXPECT_FALSE(L.Hit);
  C.fulfill("aaaa", "{\"r\": 1}");
  ResultCache::Lease L2 = C.acquire("aaaa");
  ASSERT_TRUE(L2.Hit);
  EXPECT_EQ(L2.CachedJson, "{\"r\": 1}");
  EXPECT_EQ(C.stats().Misses, 1u);
  EXPECT_EQ(C.stats().Hits, 1u);
  EXPECT_EQ(C.stats().MemoryHits, 1u);
}

TEST(ResultCacheTest, AbandonedLeaseLeavesNoEntry) {
  ResultCache C({"", 8});
  EXPECT_FALSE(C.acquire("x").Hit);
  C.abandon("x");
  EXPECT_FALSE(C.acquire("x").Hit); // Leads again, not a hit.
  C.abandon("x");
  EXPECT_EQ(C.memorySize(), 0u);
}

TEST(ResultCacheTest, MemoryLruEvictsOldest) {
  ResultCache C({"", 2});
  for (const char *H : {"h1", "h2", "h3"}) {
    EXPECT_FALSE(C.acquire(H).Hit);
    C.fulfill(H, std::string("{\"v\": \"") + H + "\"}");
  }
  EXPECT_EQ(C.memorySize(), 2u);
  EXPECT_GE(C.stats().Evictions, 1u);
  EXPECT_FALSE(C.acquire("h1").Hit); // Evicted (memory-only cache).
  C.abandon("h1");
  EXPECT_TRUE(C.acquire("h3").Hit);
}

TEST(ResultCacheTest, DiskLevelSurvivesRestart) {
  std::string Dir = tempDir("disk");
  {
    ResultCache C({Dir, 8});
    EXPECT_FALSE(C.acquire("00deadbeef001122").Hit);
    C.fulfill("00deadbeef001122", "{\"r\": 42}");
  }
  // A fresh instance (a restarted daemon) finds the entry on disk.
  ResultCache C2({Dir, 8});
  ResultCache::Lease L = C2.acquire("00deadbeef001122");
  ASSERT_TRUE(L.Hit);
  EXPECT_EQ(L.CachedJson, "{\"r\": 42}");
  EXPECT_EQ(C2.stats().DiskHits, 1u);

  uint64_t Entries = 0, Bytes = 0;
  ASSERT_TRUE(ResultCache::diskStats(Dir, Entries, Bytes).ok());
  EXPECT_EQ(Entries, 1u);
  EXPECT_GT(Bytes, 0u);

  uint64_t Removed = 0;
  ASSERT_TRUE(ResultCache::diskClear(Dir, Removed).ok());
  EXPECT_EQ(Removed, 1u);
  ASSERT_TRUE(ResultCache::diskStats(Dir, Entries, Bytes).ok());
  EXPECT_EQ(Entries, 0u);
}

TEST(ResultCacheTest, CorruptDiskEntryIsAMissNotACrash) {
  std::string Dir = tempDir("corrupt");
  ::mkdir((Dir + "/ab").c_str(), 0755);
  writeFile(Dir + "/ab/ab00000000000000.json", "{truncated garbage");
  ResultCache C({Dir, 8});
  ResultCache::Lease L = C.acquire("ab00000000000000");
  EXPECT_FALSE(L.Hit); // Parse failure degrades to a miss.
  C.fulfill("ab00000000000000", "{\"ok\": true}");
  ResultCache C2({Dir, 8});
  ResultCache::Lease L2 = C2.acquire("ab00000000000000");
  ASSERT_TRUE(L2.Hit); // The rewrite healed the entry.
  EXPECT_EQ(L2.CachedJson, "{\"ok\": true}");
}

TEST(ResultCacheTest, DetHashRoundTripsThroughBothLevels) {
  std::string Dir = tempDir("dethash");
  {
    ResultCache C({Dir, 8});
    EXPECT_FALSE(C.acquire("cd00000000000000").Hit);
    C.fulfill("cd00000000000000", "{\"r\": 7}\n", "feedface00000001");
    // Memory level carries the hash...
    ResultCache::Lease L = C.acquire("cd00000000000000");
    ASSERT_TRUE(L.Hit);
    EXPECT_EQ(L.CachedJson, "{\"r\": 7}\n");
    EXPECT_EQ(L.CachedHash, "feedface00000001");
  }
  // ...and so does the disk level, with the report text restored
  // byte-identically (the wrapper is unwrap-on-read).
  ResultCache C2({Dir, 8});
  ResultCache::Lease L2 = C2.acquire("cd00000000000000");
  ASSERT_TRUE(L2.Hit);
  EXPECT_EQ(L2.CachedJson, "{\"r\": 7}\n");
  EXPECT_EQ(L2.CachedHash, "feedface00000001");
  // Entries fulfilled without a hash stay bare and report an empty one.
  EXPECT_FALSE(C2.acquire("ce00000000000000").Hit);
  C2.fulfill("ce00000000000000", "{\"r\": 8}");
  EXPECT_EQ(C2.acquire("ce00000000000000").CachedHash, "");
}

TEST(ResultCacheTest, SingleFlightCoalescesConcurrentMisses) {
  ResultCache C({"", 8});
  std::atomic<int> Leaders{0}, Followers{0};
  std::atomic<bool> LeaderIn{false};

  auto Worker = [&] {
    ResultCache::Lease L = C.acquire("flight");
    if (L.Hit) {
      ++Followers;
      EXPECT_EQ(L.CachedJson, "{\"once\": 1}");
    } else {
      ++Leaders;
      LeaderIn.store(true);
      // Hold the flight open long enough that the others pile up.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      C.fulfill("flight", "{\"once\": 1}");
    }
  };

  std::vector<std::thread> Ts;
  Ts.emplace_back(Worker);
  while (!LeaderIn.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  for (int I = 0; I < 3; ++I)
    Ts.emplace_back(Worker);
  for (std::thread &T : Ts)
    T.join();

  EXPECT_EQ(Leaders.load(), 1);   // The search would have run once.
  EXPECT_EQ(Followers.load(), 3); // Everyone else waited and hit.
  EXPECT_EQ(C.stats().Hits, 3u);
  EXPECT_EQ(C.stats().Misses, 1u);
}

//===----------------------------------------------------------------------===//
// Warm execution state
//===----------------------------------------------------------------------===//

api::AnalysisSpec fig2Spec(uint64_t Seed) {
  api::AnalysisSpec Spec;
  Spec.Task = api::TaskKind::Boundary;
  Spec.Module = api::ModuleSource::builtin("fig2");
  Spec.Search.Seed = Seed;
  Spec.Search.MaxEvals = 20000;
  Spec.Search.Threads = 1;
  return Spec;
}

TEST(WarmCacheTest, KeyIgnoresVolatileSearchKnobsOnly) {
  api::AnalysisSpec A = fig2Spec(1);
  api::AnalysisSpec B = fig2Spec(999); // Different seed/evals: same key.
  B.Search.MaxEvals = 777;
  B.Search.Starts = 9;
  EXPECT_EQ(api::WarmCache::keyFor(A), api::WarmCache::keyFor(B));
  EXPECT_FALSE(api::WarmCache::keyFor(A).empty());

  api::AnalysisSpec C = fig2Spec(1); // Different engine: different IR.
  C.Search.Engine = "interp";
  EXPECT_NE(api::WarmCache::keyFor(A), api::WarmCache::keyFor(C));

  api::AnalysisSpec D = fig2Spec(1); // Stateful task: never warmed.
  D.Task = api::TaskKind::Overflow;
  D.Module = api::ModuleSource::builtin("bessel");
  EXPECT_TRUE(api::WarmCache::keyFor(D).empty());
}

TEST(WarmCacheTest, WarmRerunIsBitIdenticalAndSkipsLowering) {
  ObsQuiesce Quiesce;
  obs::setEnabled(true);

  api::WarmCache Warm(8);
  api::AnalysisSpec Spec = fig2Spec(2019);

  api::Analyzer Cold(Spec);
  Cold.setWarmCache(&Warm);
  Expected<api::Report> R1 = Cold.run();
  ASSERT_TRUE(R1.hasValue()) << R1.error();
  EXPECT_FALSE(Cold.lastRunWarm());
  Value AfterCold = obs::snapshotJson();
  EXPECT_GE(counterIn(AfterCold, "vm.module_lowerings"), 1u);

  api::Analyzer WarmRun(Spec);
  WarmRun.setWarmCache(&Warm);
  Expected<api::Report> R2 = WarmRun.run();
  ASSERT_TRUE(R2.hasValue()) << R2.error();
  EXPECT_TRUE(WarmRun.lastRunWarm());
  Value AfterWarm = obs::snapshotJson();

  // The warm request skipped resolve -> verify -> lower entirely.
  EXPECT_EQ(counterIn(AfterWarm, "vm.module_lowerings"),
            counterIn(AfterCold, "vm.module_lowerings"));
  EXPECT_EQ(counterIn(AfterWarm, "analyzer.module_resolutions"),
            counterIn(AfterCold, "analyzer.module_resolutions"));
  EXPECT_GE(counterIn(AfterWarm, "analyzer.warm_hits"), 1u);

  // And stayed bit-identical in the deterministic view.
  EXPECT_EQ(api::deterministicReportJson(R1->toJson()).dump(),
            api::deterministicReportJson(R2->toJson()).dump());

  // A cold Analyzer without the cache agrees too.
  Expected<api::Report> R3 = api::Analyzer::analyze(Spec);
  ASSERT_TRUE(R3.hasValue()) << R3.error();
  EXPECT_EQ(api::deterministicReportJson(R1->toJson()).dump(),
            api::deterministicReportJson(R3->toJson()).dump());
}

TEST(WarmCacheTest, DifferentVolatileKnobsShareOneEntry) {
  ObsQuiesce Quiesce;
  api::WarmCache Warm(8);
  for (uint64_t Seed : {1u, 2u, 3u}) {
    api::Analyzer A(fig2Spec(Seed));
    A.setWarmCache(&Warm);
    Expected<api::Report> R = A.run();
    ASSERT_TRUE(R.hasValue()) << R.error();
  }
  EXPECT_EQ(Warm.size(), 1u); // One module entry served all three.
  EXPECT_EQ(Warm.stats().Hits, 2u);
}

//===----------------------------------------------------------------------===//
// Server::handle — the no-socket routing seam
//===----------------------------------------------------------------------===//

HttpRequest makeReq(const std::string &Method, const std::string &Target,
                    const std::string &Body = "") {
  HttpRequest R;
  R.Method = Method;
  R.Target = Target;
  R.Version = "HTTP/1.1";
  R.Body = Body;
  return R;
}

TEST(ServerHandleTest, HealthVersionAndRouting) {
  ObsQuiesce Quiesce;
  Server S({});
  ParsedResponse H = parseResponse(S.handle(makeReq("GET", "/healthz")));
  EXPECT_EQ(H.Status, 200);
  EXPECT_NE(H.Body.find("\"ok\""), std::string::npos);

  ParsedResponse V = parseResponse(S.handle(makeReq("GET", "/version")));
  EXPECT_EQ(V.Status, 200);
  Expected<Value> VDoc = Value::parse(V.Body);
  ASSERT_TRUE(VDoc.hasValue());
  EXPECT_TRUE(VDoc->find("compiler") != nullptr);

  EXPECT_EQ(parseResponse(S.handle(makeReq("GET", "/nope"))).Status, 404);
  EXPECT_EQ(parseResponse(S.handle(makeReq("GET", "/v1/run"))).Status,
            405);
  EXPECT_EQ(
      parseResponse(S.handle(makeReq("GET", "/v1/jobs/absent"))).Status,
      404);
}

TEST(ServerHandleTest, RunExecutesCachesAndStaysDeterministic) {
  ObsQuiesce Quiesce;
  Server S({});

  ParsedResponse Bad =
      parseResponse(S.handle(makeReq("POST", "/v1/run", "{nope")));
  EXPECT_EQ(Bad.Status, 400);

  ParsedResponse R1 = parseResponse(
      S.handle(makeReq("POST", "/v1/run", Fig2SpecText)));
  ASSERT_EQ(R1.Status, 200);
  Expected<Value> D1 = Value::parse(R1.Body);
  ASSERT_TRUE(D1.hasValue()) << D1.error();
  EXPECT_FALSE(D1->find("cached")->asBool());

  ParsedResponse R2 = parseResponse(
      S.handle(makeReq("POST", "/v1/run", Fig2SpecText)));
  ASSERT_EQ(R2.Status, 200);
  Expected<Value> D2 = Value::parse(R2.Body);
  ASSERT_TRUE(D2.hasValue());
  EXPECT_TRUE(D2->find("cached")->asBool());
  EXPECT_EQ(D1->find("report_hash")->asString(),
            D2->find("report_hash")->asString());
  EXPECT_EQ(D1->find("spec_hash")->asString(),
            D2->find("spec_hash")->asString());
  EXPECT_EQ(api::deterministicReportJson(*D1->find("report")).dump(),
            api::deterministicReportJson(*D2->find("report")).dump());

  // The hit envelope is spliced from stored bytes (no re-parse on the
  // hot path) — it must still be byte-identical to the cold envelope
  // apart from the cached flag.
  std::string ColdAsHit = R1.Body;
  const std::string ColdFlag = "\"cached\": false";
  size_t FlagAt = ColdAsHit.find(ColdFlag);
  ASSERT_NE(FlagAt, std::string::npos);
  ColdAsHit.replace(FlagAt, ColdFlag.size(), "\"cached\": true");
  EXPECT_EQ(R2.Body, ColdAsHit);

  // The served report is bit-identical (deterministic view) to a direct
  // Analyzer run of the same spec — what `wdm run` executes.
  Expected<api::AnalysisSpec> Spec = api::AnalysisSpec::parse(Fig2SpecText);
  ASSERT_TRUE(Spec.hasValue());
  Expected<api::Report> Direct = api::Analyzer::analyze(*Spec);
  ASSERT_TRUE(Direct.hasValue());
  EXPECT_EQ(api::deterministicReportJson(*D1->find("report")).dump(),
            api::deterministicReportJson(Direct->toJson()).dump());
}

TEST(ServerHandleTest, MetricsEndpointServesPrometheus) {
  ObsQuiesce Quiesce;
  obs::setEnabled(true);
  Server S({});
  parseResponse(S.handle(makeReq("GET", "/healthz")));
  ParsedResponse M = parseResponse(S.handle(makeReq("GET", "/metrics")));
  EXPECT_EQ(M.Status, 200);
  EXPECT_NE(M.ContentType.find("text/plain"), std::string::npos);
  EXPECT_NE(M.Body.find("serve_requests_total"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The daemon over real sockets (in-process Server + blocking client)
//===----------------------------------------------------------------------===//

/// Every exposition line is a comment or `name[{labels}] value`.
void expectValidPrometheus(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;
  size_t Samples = 0;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    if (Line.rfind("# HELP ", 0) == 0 || Line.rfind("# TYPE ", 0) == 0)
      continue;
    ASSERT_NE(Line[0], '#') << "unknown comment form: " << Line;
    size_t Sp = Line.rfind(' ');
    ASSERT_NE(Sp, std::string::npos) << Line;
    std::string Name = Line.substr(0, Sp);
    if (size_t Brace = Name.find('{'); Brace != std::string::npos) {
      EXPECT_EQ(Name.back(), '}') << Line;
      Name = Name.substr(0, Brace);
    }
    ASSERT_FALSE(Name.empty()) << Line;
    EXPECT_TRUE(std::isalpha((unsigned char)Name[0]) || Name[0] == '_')
        << Line;
    for (char C : Name)
      EXPECT_TRUE(std::isalnum((unsigned char)C) || C == '_') << Line;
    std::string Val = Line.substr(Sp + 1);
    EXPECT_FALSE(Val.empty()) << Line;
    char *End = nullptr;
    std::strtod(Val.c_str(), &End);
    EXPECT_TRUE(End && (*End == '\0' || Val == "+Inf")) << Line;
    ++Samples;
  }
  EXPECT_GT(Samples, 0u);
}

double prometheusValue(const std::string &Text, const std::string &Name) {
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line))
    if (Line.rfind(Name + " ", 0) == 0)
      return std::strtod(Line.c_str() + Name.size() + 1, nullptr);
  return -1;
}

TEST(ServeSocketTest, EndToEndRunCacheWarmAndMetrics) {
  ObsQuiesce Quiesce;
  ServerOptions SO;
  SO.CacheDir = tempDir("sock_cache");
  Server S(SO);
  ASSERT_TRUE(S.start().ok());
  ASSERT_NE(S.port(), 0);

  // Cold run.
  Expected<HttpResponse> R1 =
      httpRequest("127.0.0.1", S.port(), "POST", "/v1/run", Fig2SpecText);
  ASSERT_TRUE(R1.hasValue()) << R1.error();
  ASSERT_EQ(R1->Status, 200) << R1->Body;
  Expected<Value> D1 = Value::parse(R1->Body);
  ASSERT_TRUE(D1.hasValue());
  EXPECT_FALSE(D1->find("cached")->asBool());

  Expected<HttpResponse> M1 =
      httpRequest("127.0.0.1", S.port(), "GET", "/metrics");
  ASSERT_TRUE(M1.hasValue()) << M1.error();
  double Lowerings1 = prometheusValue(M1->Body, "vm_module_lowerings_total");
  EXPECT_GE(Lowerings1, 1);

  // Identical spec again: a cache hit — no search, no evals.
  Expected<HttpResponse> R2 =
      httpRequest("127.0.0.1", S.port(), "POST", "/v1/run", Fig2SpecText);
  ASSERT_TRUE(R2.hasValue()) << R2.error();
  Expected<Value> D2 = Value::parse(R2->Body);
  ASSERT_TRUE(D2.hasValue());
  EXPECT_TRUE(D2->find("cached")->asBool());
  EXPECT_EQ(D1->find("report_hash")->asString(),
            D2->find("report_hash")->asString());

  // Same module at a new seed: misses the result cache (new identity)
  // but runs warm — the lowering counter must not move.
  std::string Reseeded = Fig2SpecText;
  size_t SeedPos = Reseeded.find("2019");
  Reseeded.replace(SeedPos, 4, "7777");
  Expected<HttpResponse> R3 =
      httpRequest("127.0.0.1", S.port(), "POST", "/v1/run", Reseeded);
  ASSERT_TRUE(R3.hasValue()) << R3.error();
  Expected<Value> D3 = Value::parse(R3->Body);
  ASSERT_TRUE(D3.hasValue());
  EXPECT_FALSE(D3->find("cached")->asBool());

  Expected<HttpResponse> M2 =
      httpRequest("127.0.0.1", S.port(), "GET", "/metrics");
  ASSERT_TRUE(M2.hasValue()) << M2.error();
  expectValidPrometheus(M2->Body);
  EXPECT_EQ(prometheusValue(M2->Body, "vm_module_lowerings_total"),
            Lowerings1); // Warm: zero new lowerings for request 3.
  EXPECT_GE(prometheusValue(M2->Body, "serve_cache_hits_total"), 1);
  EXPECT_GE(prometheusValue(M2->Body, "serve_cache_misses_total"), 2);
  EXPECT_GE(prometheusValue(M2->Body, "analyzer_warm_hits_total"), 1);
  EXPECT_GE(prometheusValue(M2->Body, "serve_requests_total"), 5);

  // Spec errors map to 400 (the exit-2 class on the client).
  Expected<HttpResponse> Bad = httpRequest("127.0.0.1", S.port(), "POST",
                                           "/v1/run", "{\"task\": \"x\"}");
  ASSERT_TRUE(Bad.hasValue()) << Bad.error();
  EXPECT_EQ(Bad->Status, 400);

  S.requestStop();
  S.wait();

  // The disk level survived the daemon: a fresh server on the same dir
  // answers the original spec from cache.
  Server S2(SO);
  ASSERT_TRUE(S2.start().ok());
  Expected<HttpResponse> R4 =
      httpRequest("127.0.0.1", S2.port(), "POST", "/v1/run", Fig2SpecText);
  ASSERT_TRUE(R4.hasValue()) << R4.error();
  Expected<Value> D4 = Value::parse(R4->Body);
  ASSERT_TRUE(D4.hasValue());
  EXPECT_TRUE(D4->find("cached")->asBool());
  EXPECT_EQ(D1->find("report_hash")->asString(),
            D4->find("report_hash")->asString());
  S2.requestStop();
  S2.wait();
}

TEST(ServeSocketTest, AsyncSuiteLifecycleAndEvents) {
  ObsQuiesce Quiesce;
  ServerOptions SO;
  SO.StateDir = tempDir("suite_state");
  SO.SuiteShards = 2;
  Server S(SO);
  ASSERT_TRUE(S.start().ok());

  const char *SuiteText = R"({
    "suite": "served",
    "defaults": {"search": {"max_evals": 20000, "threads": 1}},
    "matrix": {"subjects": ["fig2"], "tasks": ["boundary"],
               "seed_base": 40, "seed_count": 4}
  })";
  Expected<HttpResponse> Posted =
      httpRequest("127.0.0.1", S.port(), "POST", "/v1/suite", SuiteText);
  ASSERT_TRUE(Posted.hasValue()) << Posted.error();
  ASSERT_EQ(Posted->Status, 202) << Posted->Body;
  Expected<Value> Ack = Value::parse(Posted->Body);
  ASSERT_TRUE(Ack.hasValue());
  std::string JobId = Ack->find("job")->asString();
  ASSERT_FALSE(JobId.empty());

  // Poll until done.
  Expected<Value> Last = Value::parse("{}");
  for (int I = 0; I < 600; ++I) {
    Expected<HttpResponse> St = httpRequest("127.0.0.1", S.port(), "GET",
                                            "/v1/jobs/" + JobId);
    ASSERT_TRUE(St.hasValue()) << St.error();
    ASSERT_EQ(St->Status, 200);
    Last = Value::parse(St->Body);
    ASSERT_TRUE(Last.hasValue());
    if (Last->find("state")->asString() != "running")
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_EQ(Last->find("state")->asString(), "done") << Last->dump();
  EXPECT_EQ((int)Last->find("exit_code")->asDouble(), 1); // Findings.
  const Value *Suite = Last->find("suite");
  ASSERT_NE(Suite, nullptr);
  EXPECT_EQ(Suite->find("jobs")->asDouble(), 4);

  Expected<HttpResponse> Ev = httpRequest(
      "127.0.0.1", S.port(), "GET", "/v1/jobs/" + JobId + "/events");
  ASSERT_TRUE(Ev.hasValue()) << Ev.error();
  EXPECT_NE(Ev->header("content-type").find("ndjson"), std::string::npos);
  EXPECT_NE(Ev->Body.find("\"suite_started\""), std::string::npos);
  EXPECT_NE(Ev->Body.find("\"suite_done\""), std::string::npos);

  S.requestStop();
  S.wait();
}

TEST(ServeSocketTest, OversizedBodyGets413) {
  ObsQuiesce Quiesce;
  ServerOptions SO;
  SO.Limits.MaxBodyBytes = 256;
  Server S(SO);
  ASSERT_TRUE(S.start().ok());
  std::string Huge = "{\"pad\": \"" + std::string(1024, 'x') + "\"}";
  Expected<HttpResponse> R =
      httpRequest("127.0.0.1", S.port(), "POST", "/v1/run", Huge);
  ASSERT_TRUE(R.hasValue()) << R.error();
  EXPECT_EQ(R->Status, 413);
  S.requestStop();
  S.wait();
}

//===----------------------------------------------------------------------===//
// The forked daemon: the real binary, signals and all
//===----------------------------------------------------------------------===//
#ifdef WDM_CLI_EXE

struct ForkedDaemon {
  pid_t Pid = -1;
  int OutFd = -1;
  uint16_t Port = 0;
  std::string Captured;

  /// fork/execs `wdm serve --port=0 <extra...>` and parses the
  /// "listening on host:port" line off its stdout.
  void start(std::vector<std::string> Extra) {
    int Pipe[2];
    ASSERT_EQ(::pipe(Pipe), 0);
    Pid = ::fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      ::dup2(Pipe[1], 1);
      ::close(Pipe[0]);
      ::close(Pipe[1]);
      std::vector<std::string> Args = {WDM_CLI_EXE, "serve", "--port=0"};
      Args.insert(Args.end(), Extra.begin(), Extra.end());
      std::vector<char *> Argv;
      for (std::string &A : Args)
        Argv.push_back(A.data());
      Argv.push_back(nullptr);
      ::execv(WDM_CLI_EXE, Argv.data());
      _exit(127);
    }
    ::close(Pipe[1]);
    OutFd = Pipe[0];

    std::string Line;
    char C;
    while (::read(OutFd, &C, 1) == 1 && C != '\n')
      Line += C;
    Captured = Line + "\n";
    size_t Colon = Line.rfind(':');
    ASSERT_NE(Colon, std::string::npos) << "no listen line: " << Line;
    Port = (uint16_t)std::atoi(Line.c_str() + Colon + 1);
    ASSERT_NE(Port, 0) << Line;
  }

  /// SIGTERM + waitpid; returns the exit status and drains stdout.
  int stop() {
    ::kill(Pid, SIGTERM);
    char Buf[4096];
    ssize_t N;
    while ((N = ::read(OutFd, Buf, sizeof(Buf))) > 0)
      Captured.append(Buf, (size_t)N);
    ::close(OutFd);
    int WStatus = 0;
    ::waitpid(Pid, &WStatus, 0);
    Pid = -1;
    return WStatus;
  }

  ~ForkedDaemon() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, nullptr, 0);
    }
  }
};

TEST(ForkedDaemonTest, SubmitTwiceThenSigtermDrains) {
  std::string CacheDir = tempDir("forked_cache");
  ForkedDaemon D;
  D.start({"--cache-dir=" + CacheDir});
  if (::testing::Test::HasFatalFailure())
    return;

  Expected<HttpResponse> R1 =
      httpRequest("127.0.0.1", D.Port, "POST", "/v1/run", Fig2SpecText);
  ASSERT_TRUE(R1.hasValue()) << R1.error();
  ASSERT_EQ(R1->Status, 200) << R1->Body;
  Expected<HttpResponse> R2 =
      httpRequest("127.0.0.1", D.Port, "POST", "/v1/run", Fig2SpecText);
  ASSERT_TRUE(R2.hasValue()) << R2.error();
  Expected<Value> D1 = Value::parse(R1->Body), D2 = Value::parse(R2->Body);
  ASSERT_TRUE(D1.hasValue() && D2.hasValue());
  EXPECT_FALSE(D1->find("cached")->asBool());
  EXPECT_TRUE(D2->find("cached")->asBool());
  EXPECT_EQ(D1->find("report_hash")->asString(),
            D2->find("report_hash")->asString());

  Expected<HttpResponse> M =
      httpRequest("127.0.0.1", D.Port, "GET", "/metrics");
  ASSERT_TRUE(M.hasValue()) << M.error();
  expectValidPrometheus(M->Body);
  EXPECT_GE(prometheusValue(M->Body, "serve_cache_hits_total"), 1);

  int WStatus = D.stop();
  ASSERT_TRUE(WIFEXITED(WStatus));
  EXPECT_EQ(WEXITSTATUS(WStatus), 0);
  EXPECT_NE(D.Captured.find("drained"), std::string::npos) << D.Captured;
}

TEST(ForkedDaemonTest, SigtermInterruptsInFlightSuiteGracefully) {
  std::string StateDir = tempDir("forked_state");
  ForkedDaemon D;
  D.start({"--state-dir=" + StateDir, "--shards=2"});
  if (::testing::Test::HasFatalFailure())
    return;

  // Enough work that SIGTERM lands mid-suite: the unsatisfiable fpsat
  // constraints always run to max_evals.
  Value Jobs = Value::array();
  for (int Seed = 1; Seed <= 6; ++Seed)
    Jobs.push(*Value::parse(
        "{\"task\": \"fpsat\","
        " \"constraint\": \"(and (< x 0.0) (> x 1.0))\","
        " \"search\": {\"seed\": " +
        std::to_string(Seed) +
        ", \"max_evals\": 4000000, \"threads\": 1}}"));
  std::string SuiteText = Value::object()
                              .set("suite", Value::string("drainme"))
                              .set("jobs", std::move(Jobs))
                              .dump();

  Expected<HttpResponse> Posted =
      httpRequest("127.0.0.1", D.Port, "POST", "/v1/suite", SuiteText);
  ASSERT_TRUE(Posted.hasValue()) << Posted.error();
  ASSERT_EQ(Posted->Status, 202) << Posted->Body;
  Expected<Value> Ack = Value::parse(Posted->Body);
  ASSERT_TRUE(Ack.hasValue());
  std::string JobId = Ack->find("job")->asString();

  // Wait until the suite has demonstrably started.
  bool Started = false;
  for (int I = 0; I < 100 && !Started; ++I) {
    Expected<HttpResponse> Ev = httpRequest(
        "127.0.0.1", D.Port, "GET", "/v1/jobs/" + JobId + "/events");
    ASSERT_TRUE(Ev.hasValue()) << Ev.error();
    Started = Ev->Body.find("\"job_started\"") != std::string::npos;
    if (!Started)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(Started);

  int WStatus = D.stop();
  ASSERT_TRUE(WIFEXITED(WStatus)); // Drained, not killed.
  EXPECT_EQ(WEXITSTATUS(WStatus), 0);
  EXPECT_NE(D.Captured.find("drained"), std::string::npos) << D.Captured;

  // The event log is a valid checkpoint: it ends with
  // suite_interrupted (or suite_done if every job won the race).
  std::string Log = readFileText(StateDir + "/jobs/" + JobId + ".ndjson");
  ASSERT_FALSE(Log.empty());
  EXPECT_TRUE(Log.find("\"suite_interrupted\"") != std::string::npos ||
              Log.find("\"suite_done\"") != std::string::npos)
      << Log;
}

#endif // WDM_CLI_EXE

} // namespace
