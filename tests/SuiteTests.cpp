//===--- SuiteTests.cpp - wdm::api suite layer tests ----------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
// The suite layer's correctness bar: deterministic content-addressed
// expansion, bit-identical per-job Reports across inprocess /
// subprocess / shard-count run configurations, and resume-from-
// checkpoint equal to an uninterrupted run. Subprocess-mode tests drive
// the real `wdm` binary (WDM_CLI_EXE, injected by CMake).
//
//===----------------------------------------------------------------------===//

#include "api/Analyzer.h"
#include "api/JobScheduler.h"
#include "api/SuiteReport.h"
#include "api/SuiteSpec.h"
#include "support/Hash.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <sys/wait.h>
#include <unistd.h>

using namespace wdm;
using namespace wdm::api;
using wdm::json::Value;

namespace {

const char *QuickstartIr = R"(
module "quickstart"
func @prog(%x: double) -> double {
entry:
  %xs = alloca double
  store %xs, %x
  %c1 = fcmp.le %x, 1.0
  condbr %c1, inc, mid
inc:
  %x1 = fadd %x, 1.0
  store %xs, %x1
  br mid
mid:
  %xv = load %xs
  %y = fmul %xv, %xv
  %c2 = fcmp.le %y, 4.0
  condbr %c2, dec, done
dec:
  %x2 = fsub %xv, 1.0
  store %xs, %x2
  br done
done:
  %r = load %xs
  ret %r
}
)";

std::string tempPath(const std::string &Stem) {
  return ::testing::TempDir() + "wdm_suite_" + std::to_string(getpid()) +
         "_" + Stem;
}

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(Out) << Path;
  Out << Text;
}

std::string readFileText(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// A fast, deterministic four-job study: fig2 boundary at four seeds.
SuiteSpec smallMatrixSuite() {
  Expected<SuiteSpec> Suite = SuiteSpec::parse(R"({
    "suite": "small",
    "defaults": {"search": {"max_evals": 20000, "threads": 1}},
    "matrix": {
      "subjects": ["fig2"],
      "tasks": ["boundary"],
      "seed_base": 40, "seed_count": 4
    }
  })");
  EXPECT_TRUE(Suite.hasValue()) << Suite.error();
  return Suite.take();
}

std::map<std::string, std::string>
deterministicHashes(const SuiteReport &R) {
  std::map<std::string, std::string> Out;
  for (const JobResult &J : R.Results)
    if (J.hasReport())
      Out[J.Id] = fnv1a64Hex(deterministicReportJson(J.R.toJson()).dump());
  return Out;
}

/// The deterministic slice of the aggregates (everything but wall
/// clock), comparable across resumed/sharded/mode variants.
std::string aggregateKey(const SuiteReport &R) {
  std::ostringstream Out;
  Out << R.Jobs << "/" << R.Executed + R.Skipped << "/" << R.Failed << "/"
      << R.Succeeded << "/" << R.Findings << "/" << R.Evals;
  for (const SuiteReport::TaskStats &T : R.PerTask)
    Out << "|" << T.Task << ":" << T.Jobs << ":" << T.Succeeded << ":"
        << T.Findings << ":" << T.Evals;
  return Out.str();
}

//===----------------------------------------------------------------------===//
// JSON layer additions
//===----------------------------------------------------------------------===//

TEST(JsonMergeTest, DeepMergeSemantics) {
  Value Base = *Value::parse(
      R"({"a": 1, "search": {"seed": 7, "starts": 2}, "list": [1, 2]})");
  Value Overlay = *Value::parse(
      R"({"search": {"seed": 9}, "list": [3], "extra": true})");
  Value Merged = json::deepMerge(Base, Overlay);
  EXPECT_EQ(Merged.find("a")->asUint(), 1u);
  EXPECT_EQ(Merged.find("search")->find("seed")->asUint(), 9u);  // overlay
  EXPECT_EQ(Merged.find("search")->find("starts")->asUint(), 2u); // base
  EXPECT_EQ(Merged.find("list")->size(), 1u); // arrays replace
  EXPECT_TRUE(Merged.find("extra")->asBool());

  // Null overlay leaves the base untouched; non-object overlay wins.
  EXPECT_EQ(json::deepMerge(Base, Value()).dump(), Base.dump());
  EXPECT_EQ(json::deepMerge(Base, Value::number(3.5)).asDouble(), 3.5);
}

TEST(JsonMergeTest, NdjsonReaderSkipsTruncatedTail) {
  std::string Path = tempPath("ndjson_tail.ndjson");
  writeFile(Path, "{\"a\": 1}\n\n{\"b\": 2}\n{\"trunc");
  auto Docs = json::readNdjsonFile(Path);
  ASSERT_TRUE(Docs.hasValue()) << Docs.error();
  ASSERT_EQ(Docs->size(), 2u);
  EXPECT_EQ((*Docs)[0].find("a")->asUint(), 1u);
  EXPECT_EQ((*Docs)[1].find("b")->asUint(), 2u);
  std::remove(Path.c_str());

  EXPECT_FALSE(json::readNdjsonFile(Path).hasValue()); // missing file
}

//===----------------------------------------------------------------------===//
// SuiteSpec round trip + expansion
//===----------------------------------------------------------------------===//

TEST(SuiteSpecTest, JsonRoundTripFixedPoint) {
  Expected<SuiteSpec> Suite = SuiteSpec::parse(R"json({
    "suite": "rt",
    "defaults": {"search": {"starts": 3}},
    "jobs": [{"task": "fpsat", "constraint": "(= x 1.5)"}],
    "matrix": {
      "subjects": ["bessel", "airy"],
      "tasks": ["overflow", "inconsistency"],
      "configs": [{"overflow_metric": "absgap"}],
      "seeds": [7, 9],
      "seed_base": 100, "seed_count": 2
    }
  })json");
  ASSERT_TRUE(Suite.hasValue()) << Suite.error();
  EXPECT_EQ(Suite->Name, "rt");
  EXPECT_EQ(Suite->Jobs.size(), 1u);
  EXPECT_EQ(Suite->Matrix.Subjects,
            (std::vector<std::string>{"bessel", "airy"}));
  ASSERT_EQ(Suite->Matrix.Tasks.size(), 2u);
  EXPECT_EQ(Suite->Matrix.Tasks[0], TaskKind::Overflow);
  EXPECT_EQ(Suite->Matrix.seedList(),
            (std::vector<uint64_t>{7, 9, 100, 101}));

  std::string Text = Suite->toJsonText();
  Expected<SuiteSpec> Back = SuiteSpec::parse(Text);
  ASSERT_TRUE(Back.hasValue()) << Back.error();
  EXPECT_EQ(Back->toJsonText(), Text);
}

TEST(SuiteSpecTest, MatrixExpansionOrderAndIds) {
  SuiteSpec Suite;
  Suite.Matrix.Subjects = {"fig2", "fig1a"};
  Suite.Matrix.Tasks = {TaskKind::Boundary};
  Suite.Matrix.Seeds = {1, 2};
  Expected<std::vector<SuiteJob>> Jobs = Suite.expand();
  ASSERT_TRUE(Jobs.hasValue()) << Jobs.error();
  ASSERT_EQ(Jobs->size(), 4u); // subjects × seeds, seeds innermost
  EXPECT_EQ((*Jobs)[0].Spec.Module.Text, "fig2");
  EXPECT_EQ(*(*Jobs)[0].Spec.Search.Seed, 1u);
  EXPECT_EQ(*(*Jobs)[1].Spec.Search.Seed, 2u);
  EXPECT_EQ((*Jobs)[2].Spec.Module.Text, "fig1a");

  // IDs are the hash of the canonical spec text.
  for (const SuiteJob &J : *Jobs) {
    EXPECT_EQ(J.Id, fnv1a64Hex(J.CanonicalSpec));
    // Canonicalization is a fixed point: parse(text).toJson().dump() is
    // the text itself.
    Expected<AnalysisSpec> Re = AnalysisSpec::parse(J.CanonicalSpec);
    ASSERT_TRUE(Re.hasValue()) << Re.error();
    EXPECT_EQ(Re->toJson().dump(), J.CanonicalSpec);
  }

  // Content addressing: reordering the matrix permutes the job list but
  // leaves every ID unchanged.
  SuiteSpec Reordered;
  Reordered.Matrix.Subjects = {"fig1a", "fig2"};
  Reordered.Matrix.Tasks = {TaskKind::Boundary};
  Reordered.Matrix.Seeds = {2, 1};
  Expected<std::vector<SuiteJob>> Jobs2 = Reordered.expand();
  ASSERT_TRUE(Jobs2.hasValue()) << Jobs2.error();
  auto Ids = [](const std::vector<SuiteJob> &Js) {
    std::set<std::string> Out;
    for (const SuiteJob &J : Js)
      Out.insert(J.Id);
    return Out;
  };
  EXPECT_EQ(Ids(*Jobs), Ids(*Jobs2));
  EXPECT_NE((*Jobs)[0].Id, (*Jobs2)[0].Id);
}

TEST(SuiteSpecTest, DefaultsMergeUnderJobFields) {
  Expected<SuiteSpec> Suite = SuiteSpec::parse(R"({
    "defaults": {"search": {"max_evals": 111, "starts": 3}},
    "jobs": [
      {"task": "boundary", "module": {"builtin": "fig2"}},
      {"task": "boundary", "module": {"builtin": "fig2"},
       "search": {"max_evals": 222}}
    ]
  })");
  ASSERT_TRUE(Suite.hasValue()) << Suite.error();
  Expected<std::vector<SuiteJob>> Jobs = Suite->expand();
  ASSERT_TRUE(Jobs.hasValue()) << Jobs.error();
  ASSERT_EQ(Jobs->size(), 2u);
  EXPECT_EQ(*(*Jobs)[0].Spec.Search.MaxEvals, 111u); // default applies
  EXPECT_EQ(*(*Jobs)[1].Spec.Search.MaxEvals, 222u); // job wins
  EXPECT_EQ(*(*Jobs)[1].Spec.Search.Starts, 3u);     // sibling survives
}

TEST(SuiteSpecTest, PruneFlowsThroughDefaultsAndJobs) {
  // search.prune rides the same deep-merge as every search field: the
  // suite default applies, a job override wins, and bad values fail
  // expansion with provenance.
  Expected<SuiteSpec> Suite = SuiteSpec::parse(R"({
    "defaults": {"search": {"prune": "sites"}},
    "jobs": [
      {"task": "boundary", "module": {"builtin": "fig2"}},
      {"task": "boundary", "module": {"builtin": "fig2"},
       "search": {"prune": "sites+box"}},
      {"task": "boundary", "module": {"builtin": "fig2"},
       "search": {"prune": "off"}}
    ]
  })");
  ASSERT_TRUE(Suite.hasValue()) << Suite.error();
  Expected<std::vector<SuiteJob>> Jobs = Suite->expand();
  ASSERT_TRUE(Jobs.hasValue()) << Jobs.error();
  ASSERT_EQ(Jobs->size(), 3u);
  EXPECT_EQ((*Jobs)[0].Spec.Search.pruneMode(), api::PruneMode::Sites);
  EXPECT_EQ((*Jobs)[1].Spec.Search.pruneMode(), api::PruneMode::SitesBox);
  EXPECT_EQ((*Jobs)[2].Spec.Search.pruneMode(), api::PruneMode::Off);

  Expected<SuiteSpec> Bad = SuiteSpec::parse(R"({
    "defaults": {"search": {"prune": "everything"}},
    "jobs": [{"task": "boundary", "module": {"builtin": "fig2"}}]
  })");
  ASSERT_TRUE(Bad.hasValue()) << Bad.error();
  Expected<std::vector<SuiteJob>> BadJobs = Bad->expand();
  ASSERT_FALSE(BadJobs.hasValue());
  EXPECT_NE(BadJobs.error().find("prune"), std::string::npos);
}

TEST(SuiteSpecTest, ExpansionErrors) {
  // Duplicate jobs (identical canonical spec) are rejected.
  Expected<SuiteSpec> Dup = SuiteSpec::parse(R"({
    "jobs": [
      {"task": "boundary", "module": {"builtin": "fig2"}},
      {"task": "boundary", "module": {"builtin": "fig2"}}
    ]
  })");
  ASSERT_TRUE(Dup.hasValue()) << Dup.error();
  Expected<std::vector<SuiteJob>> R = Dup->expand();
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.error().find("duplicate job"), std::string::npos);

  // Suites with no job sources fail at parse; invalid member jobs fail
  // at expansion with provenance.
  EXPECT_FALSE(SuiteSpec::parse(R"({"suite": "empty"})").hasValue());
  Expected<SuiteSpec> Bad = SuiteSpec::parse(
      R"({"jobs": [{"task": "boundary"}]})"); // missing module
  ASSERT_TRUE(Bad.hasValue()) << Bad.error();
  Expected<std::vector<SuiteJob>> BadJobs = Bad->expand();
  ASSERT_FALSE(BadJobs.hasValue());
  EXPECT_NE(BadJobs.error().find("job #0"), std::string::npos);

  // Unknown matrix vocabulary is a parse error.
  EXPECT_FALSE(SuiteSpec::parse(R"({
    "matrix": {"subjects": ["fig2"], "tasks": ["frobnicate"]}
  })")
                   .hasValue());
  EXPECT_FALSE(SuiteSpec::parse(R"({
    "matrix": {"tasks": ["boundary"]}
  })")
                   .hasValue());
}

TEST(SuiteSpecTest, EnvOverridesChangeJobIdentity) {
  SuiteSpec Suite;
  Suite.Matrix.Subjects = {"fig2"};
  Suite.Matrix.Tasks = {TaskKind::Boundary};
  Suite.Matrix.Seeds = {5};

  unsetenv("WDM_STARTS");
  unsetenv("WDM_THREADS");
  unsetenv("WDM_SEED");
  Expected<std::vector<SuiteJob>> Plain = Suite.expand(true);
  ASSERT_TRUE(Plain.hasValue()) << Plain.error();

  setenv("WDM_SEED", "99", 1);
  Expected<std::vector<SuiteJob>> Env = Suite.expand(true);
  unsetenv("WDM_SEED");
  ASSERT_TRUE(Env.hasValue()) << Env.error();
  EXPECT_EQ(*(*Env)[0].Spec.Search.Seed, 99u); // env wins over matrix
  EXPECT_NE((*Env)[0].Id, (*Plain)[0].Id);     // identity follows content

  // Without ApplyEnvOverrides the env knobs are ignored entirely.
  setenv("WDM_SEED", "99", 1);
  Expected<std::vector<SuiteJob>> Off = Suite.expand(false);
  unsetenv("WDM_SEED");
  ASSERT_TRUE(Off.hasValue()) << Off.error();
  EXPECT_EQ((*Off)[0].Id, (*Plain)[0].Id);
}

//===----------------------------------------------------------------------===//
// SearchConfig::applyEnv precedence (satellite)
//===----------------------------------------------------------------------===//

TEST(ApplyEnvTest, EnvWinsOverExplicitSpecFields) {
  setenv("WDM_STARTS", "5", 1);
  setenv("WDM_THREADS", "3", 1);
  setenv("WDM_SEED", "0x12", 1); // hex accepted
  SearchConfig C;
  C.Starts = 2;
  C.Threads = 8;
  C.Seed = 7;
  C.MaxEvals = 4000;
  C.applyEnv();
  EXPECT_EQ(*C.Starts, 5u);
  EXPECT_EQ(*C.Threads, 3u);
  EXPECT_EQ(*C.Seed, 0x12u);
  EXPECT_EQ(*C.MaxEvals, 4000u); // untouched: no env knob for it

  SearchConfig FromEnv = SearchConfig::fromEnv();
  EXPECT_EQ(*FromEnv.Starts, 5u);
  EXPECT_EQ(*FromEnv.Threads, 3u);
  EXPECT_EQ(*FromEnv.Seed, 0x12u);
  unsetenv("WDM_STARTS");
  unsetenv("WDM_THREADS");
  unsetenv("WDM_SEED");
}

TEST(ApplyEnvTest, UnsetAndMalformedEnvLeaveFieldsAlone) {
  unsetenv("WDM_STARTS");
  unsetenv("WDM_THREADS");
  unsetenv("WDM_SEED");
  SearchConfig C;
  C.Starts = 7;
  C.applyEnv();
  EXPECT_EQ(*C.Starts, 7u); // explicit field survives unset env
  EXPECT_FALSE(C.Threads.has_value());
  EXPECT_FALSE(C.Seed.has_value());

  EXPECT_FALSE(SearchConfig::fromEnv().Starts.has_value());

  setenv("WDM_SEED", "not-a-number", 1);
  setenv("WDM_STARTS", "2000000", 1); // beyond envUnsigned plausibility
  SearchConfig D;
  D.Seed = 5;
  D.applyEnv();
  EXPECT_EQ(*D.Seed, 5u);
  EXPECT_FALSE(D.Starts.has_value());
  unsetenv("WDM_SEED");
  unsetenv("WDM_STARTS");

  // WDM_STARTS=0 clamps to 1 (a zero-start search is meaningless).
  setenv("WDM_STARTS", "0", 1);
  SearchConfig Z;
  Z.applyEnv();
  EXPECT_EQ(*Z.Starts, 1u);
  unsetenv("WDM_STARTS");
}

//===----------------------------------------------------------------------===//
// Report round trip
//===----------------------------------------------------------------------===//

TEST(ReportRoundTripTest, FromJsonIsExactInverse) {
  AnalysisSpec Spec;
  Spec.Task = TaskKind::Overflow;
  Spec.Module = ModuleSource::builtin("bessel");
  Spec.Search.Seed = 0xbe55;
  Spec.Search.MaxEvals = 2000;
  Spec.Search.Starts = 2;
  Expected<Report> R = Analyzer::analyze(Spec);
  ASSERT_TRUE(R.hasValue()) << R.error();
  ASSERT_FALSE(R->Findings.empty());

  Expected<Report> Back = Report::parse(R->toJsonText());
  ASSERT_TRUE(Back.hasValue()) << Back.error();
  EXPECT_EQ(Back->toJsonText(), R->toJsonText());

  EXPECT_FALSE(Report::parse("{\"no_task\": 1}").hasValue());
  EXPECT_FALSE(Report::parse("[]").hasValue());
}

TEST(ReportRoundTripTest, DeterministicViewStripsWallClock) {
  Value Doc = *Value::parse(
      R"({"task": "inconsistency", "seconds": 1.5,
          "extra": {"num_ops": 3, "detector_seconds": 0.7},
          "evals": 9})");
  Value Det = deterministicReportJson(Doc);
  EXPECT_EQ(Det.find("seconds"), nullptr);
  EXPECT_EQ(Det.find("extra")->find("detector_seconds"), nullptr);
  EXPECT_EQ(Det.find("extra")->find("num_ops")->asUint(), 3u);
  EXPECT_EQ(Det.find("evals")->asUint(), 9u);
  EXPECT_EQ(Det.find("task")->asString(), "inconsistency");
}

//===----------------------------------------------------------------------===//
// JobScheduler: modes, shards, identity
//===----------------------------------------------------------------------===//

TEST(SchedulerTest, InProcessMatchesDirectAnalyzer) {
  // The GslStudy re-plumb bar: a one-job suite through the scheduler
  // reproduces the direct Analyzer::analyze call bit-for-bit.
  AnalysisSpec Spec;
  Spec.Task = TaskKind::Boundary;
  Spec.Module = ModuleSource::inlineText(QuickstartIr);
  Spec.Search.Seed = 2019;
  Spec.Search.MaxEvals = 40000;
  Expected<Report> Direct = Analyzer::analyze(Spec);
  ASSERT_TRUE(Direct.hasValue()) << Direct.error();

  SuiteSpec Suite;
  Suite.Name = "one";
  Suite.addJob(Spec);
  SuiteRunOptions Opts;
  Opts.Shards = 1;
  Expected<SuiteReport> R = JobScheduler::execute(Suite, Opts);
  ASSERT_TRUE(R.hasValue()) << R.error();
  ASSERT_EQ(R->Executed, 1u);
  EXPECT_EQ(deterministicReportJson(R->Results[0].R.toJson()).dump(),
            deterministicReportJson(Direct->toJson()).dump());
  EXPECT_EQ(R->Findings, Direct->Findings.size());
  EXPECT_EQ(R->Evals, Direct->Evals);
  ASSERT_EQ(R->PerTask.size(), 1u);
  EXPECT_EQ(R->PerTask[0].Task, "boundary");
  EXPECT_EQ(R->exitCode(), 1); // findings → 1 per the contract
}

TEST(SchedulerTest, ShardCountInvariance) {
  SuiteRunOptions Seq;
  Seq.Shards = 1;
  Expected<SuiteReport> A = JobScheduler::execute(smallMatrixSuite(), Seq);
  ASSERT_TRUE(A.hasValue()) << A.error();
  ASSERT_EQ(A->Executed, 4u);

  SuiteRunOptions Wide;
  Wide.Shards = 4;
  Expected<SuiteReport> B =
      JobScheduler::execute(smallMatrixSuite(), Wide);
  ASSERT_TRUE(B.hasValue()) << B.error();

  EXPECT_EQ(deterministicHashes(*A), deterministicHashes(*B));
  EXPECT_EQ(aggregateKey(*A), aggregateKey(*B));
  EXPECT_EQ(B->Shards, 4u);
}

TEST(SchedulerTest, WorkStealingMatchesRoundRobinBitForBit) {
  // The dispatch policy moves jobs between shards, never into them:
  // per-job Reports and the aggregates are bit-identical across the
  // work-stealing deques and the legacy shared-counter pop.
  SuiteRunOptions Steal;
  Steal.Shards = 4;
  Steal.Dispatch = SuiteDispatch::WorkStealing;
  Expected<SuiteReport> A =
      JobScheduler::execute(smallMatrixSuite(), Steal);
  ASSERT_TRUE(A.hasValue()) << A.error();
  ASSERT_EQ(A->Executed, 4u);

  SuiteRunOptions Legacy;
  Legacy.Shards = 4;
  Legacy.Dispatch = SuiteDispatch::RoundRobin;
  Expected<SuiteReport> B =
      JobScheduler::execute(smallMatrixSuite(), Legacy);
  ASSERT_TRUE(B.hasValue()) << B.error();

  EXPECT_EQ(deterministicHashes(*A), deterministicHashes(*B));
  EXPECT_EQ(aggregateKey(*A), aggregateKey(*B));
}

TEST(SchedulerTest, WorkStealingShardCountInvariance) {
  // And under stealing specifically, any shard count produces the same
  // deterministic reports (the bar round-robin already clears).
  std::map<std::string, std::string> Baseline;
  std::string BaselineAgg;
  for (unsigned Shards : {1u, 2u, 4u}) {
    SuiteRunOptions Opts;
    Opts.Shards = Shards;
    Opts.Dispatch = SuiteDispatch::WorkStealing;
    Expected<SuiteReport> R =
        JobScheduler::execute(smallMatrixSuite(), Opts);
    ASSERT_TRUE(R.hasValue()) << R.error();
    ASSERT_EQ(R->Executed, 4u);
    if (Shards == 1) {
      Baseline = deterministicHashes(*R);
      BaselineAgg = aggregateKey(*R);
      continue;
    }
    EXPECT_EQ(deterministicHashes(*R), Baseline) << Shards << " shards";
    EXPECT_EQ(aggregateKey(*R), BaselineAgg) << Shards << " shards";
  }
}

TEST(SchedulerTest, DispatchNamesRoundTrip) {
  EXPECT_STREQ(suiteDispatchName(SuiteDispatch::WorkStealing), "steal");
  EXPECT_STREQ(suiteDispatchName(SuiteDispatch::RoundRobin),
               "roundrobin");
  SuiteDispatch D;
  EXPECT_TRUE(suiteDispatchByName("steal", D));
  EXPECT_EQ(D, SuiteDispatch::WorkStealing);
  EXPECT_TRUE(suiteDispatchByName("roundrobin", D));
  EXPECT_EQ(D, SuiteDispatch::RoundRobin);
  EXPECT_FALSE(suiteDispatchByName("random", D));
}

TEST(SchedulerTest, StopFlagDrainsLikeASignal) {
  // The serve daemon's drain seam: a pre-set StopFlag stops dispatch
  // before the first job and stamps the report "stopped".
  std::atomic<bool> Stop{true};
  SuiteRunOptions Opts;
  Opts.Shards = 2;
  Opts.StopFlag = &Stop;
  Expected<SuiteReport> R =
      JobScheduler::execute(smallMatrixSuite(), Opts);
  ASSERT_TRUE(R.hasValue()) << R.error();
  EXPECT_EQ(R->Executed, 0u);
  EXPECT_EQ(R->Stopped, "stopped");
  EXPECT_EQ(R->exitCode(), 4); // Interrupted, by the shared contract.
}

TEST(SchedulerTest, DryModeExecutesNothing) {
  SuiteRunOptions Opts;
  Opts.Mode = SuiteMode::Dry;
  Expected<SuiteReport> R =
      JobScheduler::execute(smallMatrixSuite(), Opts);
  ASSERT_TRUE(R.hasValue()) << R.error();
  EXPECT_EQ(R->Jobs, 4u);
  EXPECT_EQ(R->Executed, 0u);
  EXPECT_EQ(R->Evals, 0u);
  for (const JobResult &J : R->Results)
    EXPECT_EQ(J.S, JobResult::State::Listed);
  EXPECT_EQ(R->exitCode(), 0);
}

TEST(SchedulerTest, FailedJobIsIsolated) {
  SuiteSpec Suite;
  AnalysisSpec Good;
  Good.Task = TaskKind::Boundary;
  Good.Module = ModuleSource::builtin("fig2");
  Good.Search.Seed = 3;
  Good.Search.MaxEvals = 20000;
  Suite.addJob(Good);
  AnalysisSpec Bad = Good;
  Bad.Module = ModuleSource::file("/nonexistent/suite_job.wir");
  Suite.addJob(Bad);

  SuiteRunOptions Opts;
  Opts.Shards = 1;
  Expected<SuiteReport> R = JobScheduler::execute(Suite, Opts);
  ASSERT_TRUE(R.hasValue()) << R.error();
  EXPECT_EQ(R->Executed, 1u);
  EXPECT_EQ(R->Failed, 1u);
  EXPECT_EQ(R->Results[0].S, JobResult::State::Executed);
  EXPECT_TRUE(R->Results[0].R.Success);
  EXPECT_EQ(R->Results[1].S, JobResult::State::Failed);
  EXPECT_FALSE(R->Results[1].Error.empty());
  EXPECT_EQ(R->exitCode(), 3); // worker failure dominates
}

//===----------------------------------------------------------------------===//
// Event log + resume
//===----------------------------------------------------------------------===//

TEST(SchedulerTest, EventLogSchemaAndResume) {
  std::string LogPath = tempPath("events.ndjson");
  SuiteRunOptions Opts;
  Opts.Shards = 1;
  Opts.EventLog = LogPath;
  Expected<SuiteReport> Full =
      JobScheduler::execute(smallMatrixSuite(), Opts);
  ASSERT_TRUE(Full.hasValue()) << Full.error();
  ASSERT_EQ(Full->Executed, 4u);

  // -- Schema: suite_started, 4×(job_started + job_finished with the
  // full report + matching hashes), suite_done.
  auto Events = json::readNdjsonFile(LogPath);
  ASSERT_TRUE(Events.hasValue()) << Events.error();
  ASSERT_EQ(Events->size(), 10u);
  EXPECT_EQ(Events->front().find("event")->asString(), "suite_started");
  // Every event is timestamped, and suite_started carries build info.
  for (const Value &Ev : *Events) {
    const Value *Ts = Ev.find("ts");
    ASSERT_NE(Ts, nullptr);
    EXPECT_EQ(Ts->asString().size(), 24u); // ISO-8601 UTC, fixed width
    EXPECT_EQ(Ts->asString().back(), 'Z');
  }
  const Value *Build = Events->front().find("build");
  ASSERT_NE(Build, nullptr);
  EXPECT_NE(Build->find("git"), nullptr);
  EXPECT_NE(Build->find("compiler"), nullptr);
  EXPECT_EQ(Events->back().find("event")->asString(), "suite_done");
  EXPECT_EQ(Events->back().find("executed")->asUint(), 4u);
  unsigned Started = 0, Finished = 0;
  std::vector<std::string> FinishedLines;
  {
    std::ifstream In(LogPath);
    std::string Line;
    while (std::getline(In, Line))
      if (Line.find("\"event\": \"job_finished\"") != std::string::npos)
        FinishedLines.push_back(Line);
  }
  for (const Value &Ev : *Events) {
    std::string Kind = Ev.find("event")->asString();
    Started += Kind == "job_started";
    if (Kind != "job_finished")
      continue;
    ++Finished;
    EXPECT_EQ(Ev.find("job")->asString(), Ev.find("spec_hash")->asString());
    const Value *Rep = Ev.find("report");
    ASSERT_NE(Rep, nullptr);
    EXPECT_EQ(Ev.find("report_hash")->asString(),
              fnv1a64Hex(deterministicReportJson(*Rep).dump()));
  }
  EXPECT_EQ(Started, 4u);
  EXPECT_EQ(Finished, 4u);

  // -- Kill simulation: a log holding only 2 finished records (plus a
  // crash-truncated partial line) resumes the remaining 2 jobs and
  // reproduces the uninterrupted aggregates and per-job reports.
  std::string Partial = tempPath("partial.ndjson");
  writeFile(Partial, FinishedLines[0] + "\n" + FinishedLines[2] + "\n" +
                         FinishedLines[1].substr(0, 40));
  SuiteRunOptions Resume;
  Resume.Shards = 1;
  Resume.EventLog = Partial;
  Resume.Resume = true;
  Expected<SuiteReport> Resumed =
      JobScheduler::execute(smallMatrixSuite(), Resume);
  ASSERT_TRUE(Resumed.hasValue()) << Resumed.error();
  EXPECT_EQ(Resumed->Skipped, 2u);
  EXPECT_EQ(Resumed->Executed, 2u);
  EXPECT_EQ(aggregateKey(*Resumed), aggregateKey(*Full));
  EXPECT_EQ(deterministicHashes(*Resumed), deterministicHashes(*Full));

  // -- Resume idempotence: a second resume over the now-complete log
  // executes zero jobs and still reports identical aggregates.
  Expected<SuiteReport> Again =
      JobScheduler::execute(smallMatrixSuite(), Resume);
  ASSERT_TRUE(Again.hasValue()) << Again.error();
  EXPECT_EQ(Again->Executed, 0u);
  EXPECT_EQ(Again->Skipped, 4u);
  EXPECT_EQ(aggregateKey(*Again), aggregateKey(*Full));
  EXPECT_EQ(deterministicHashes(*Again), deterministicHashes(*Full));

  // -- Changing the suite changes job identity: nothing resumes.
  SuiteSpec Changed = smallMatrixSuite();
  Changed.Matrix.SeedBase = 400;
  Expected<SuiteReport> Fresh = JobScheduler::execute(Changed, Resume);
  ASSERT_TRUE(Fresh.hasValue()) << Fresh.error();
  EXPECT_EQ(Fresh->Skipped, 0u);
  EXPECT_EQ(Fresh->Executed, 4u);

  // -- Without --resume the log is truncated and rewritten.
  Expected<SuiteReport> Overwrite =
      JobScheduler::execute(smallMatrixSuite(), Opts);
  ASSERT_TRUE(Overwrite.hasValue());
  EXPECT_EQ(Overwrite->Executed, 4u);

  // Resume without a log path is a driver error.
  SuiteRunOptions NoLog;
  NoLog.Resume = true;
  EXPECT_FALSE(JobScheduler::execute(smallMatrixSuite(), NoLog).hasValue());

  std::remove(LogPath.c_str());
  std::remove(Partial.c_str());
}

//===----------------------------------------------------------------------===//
// job_progress heartbeats (LiveProgress)
//===----------------------------------------------------------------------===//

TEST(SchedulerTest, LiveProgressStreamsJobHeartbeats) {
  std::string LogPath = tempPath("progress.ndjson");
  SuiteRunOptions Opts;
  Opts.Shards = 2;
  Opts.EventLog = LogPath;
  Opts.LiveProgress = true;
  Opts.ProgressPeriodSec = 0; // every search tick
  Expected<SuiteReport> R =
      JobScheduler::execute(smallMatrixSuite(), Opts);
  ASSERT_TRUE(R.hasValue()) << R.error();
  ASSERT_EQ(R->Executed, 4u);

  auto Events = json::readNdjsonFile(LogPath);
  ASSERT_TRUE(Events.hasValue()) << Events.error();
  std::set<std::string> JobsWithTicks;
  unsigned Heartbeats = 0;
  for (const Value &Ev : *Events) {
    if (Ev.find("event")->asString() != "job_progress")
      continue;
    ++Heartbeats;
    ASSERT_NE(Ev.find("job"), nullptr);
    JobsWithTicks.insert(Ev.find("job")->asString());
    EXPECT_NE(Ev.find("evals"), nullptr);
    EXPECT_NE(Ev.find("best_w"), nullptr);
    EXPECT_NE(Ev.find("evals_per_sec"), nullptr);
    EXPECT_NE(Ev.find("ts"), nullptr);
  }
  EXPECT_GE(Heartbeats, 4u);            // at least the final tick per job
  EXPECT_EQ(JobsWithTicks.size(), 4u);  // attributed to every job

  // The heartbeat stream does not perturb the checkpoint protocol: the
  // same log still resumes to zero executed jobs.
  SuiteRunOptions Resume = Opts;
  Resume.Resume = true;
  Resume.LiveProgress = false;
  Expected<SuiteReport> Again =
      JobScheduler::execute(smallMatrixSuite(), Resume);
  ASSERT_TRUE(Again.hasValue()) << Again.error();
  EXPECT_EQ(Again->Executed, 0u);
  EXPECT_EQ(Again->Skipped, 4u);
  std::remove(LogPath.c_str());
}

TEST(SchedulerTest, NoHeartbeatsWithoutLiveProgress) {
  // Off by default: the event log holds exactly the historical kinds.
  std::string LogPath = tempPath("no_progress.ndjson");
  SuiteRunOptions Opts;
  Opts.Shards = 1;
  Opts.EventLog = LogPath;
  Expected<SuiteReport> R =
      JobScheduler::execute(smallMatrixSuite(), Opts);
  ASSERT_TRUE(R.hasValue()) << R.error();
  auto Events = json::readNdjsonFile(LogPath);
  ASSERT_TRUE(Events.hasValue()) << Events.error();
  for (const Value &Ev : *Events) {
    std::string Kind = Ev.find("event")->asString();
    EXPECT_TRUE(Kind == "suite_started" || Kind == "job_started" ||
                Kind == "job_finished" || Kind == "job_failed" ||
                Kind == "job_skipped" || Kind == "suite_done")
        << Kind;
  }
  std::remove(LogPath.c_str());
}

//===----------------------------------------------------------------------===//
// Subprocess mode + the CLI exit-code contract (drives the wdm binary)
//===----------------------------------------------------------------------===//

#ifdef WDM_CLI_EXE

TEST(SubprocessTest, MatchesInProcessBitForBit) {
  SuiteRunOptions InP;
  InP.Shards = 2;
  Expected<SuiteReport> A = JobScheduler::execute(smallMatrixSuite(), InP);
  ASSERT_TRUE(A.hasValue()) << A.error();

  SuiteRunOptions Sub;
  Sub.Mode = SuiteMode::Subprocess;
  Sub.Shards = 2;
  Sub.WorkerExe = WDM_CLI_EXE;
  Expected<SuiteReport> B = JobScheduler::execute(smallMatrixSuite(), Sub);
  ASSERT_TRUE(B.hasValue()) << B.error();
  ASSERT_EQ(B->Executed, 4u) << B->Results[0].Error;

  EXPECT_EQ(deterministicHashes(*A), deterministicHashes(*B));
  EXPECT_EQ(aggregateKey(*A), aggregateKey(*B));
}

TEST(SubprocessTest, LiveProgressForwardsChildHeartbeats) {
  // Subprocess heartbeats ride the existing stdout protocol: the child
  // prints job_progress event lines, the driver peels and re-tags them,
  // and the final report line still parses bit-for-bit.
  std::string LogPath = tempPath("sub_progress.ndjson");
  SuiteRunOptions Sub;
  Sub.Mode = SuiteMode::Subprocess;
  Sub.Shards = 2;
  Sub.WorkerExe = WDM_CLI_EXE;
  Sub.EventLog = LogPath;
  Sub.LiveProgress = true;
  Sub.ProgressPeriodSec = 0;
  Expected<SuiteReport> R =
      JobScheduler::execute(smallMatrixSuite(), Sub);
  ASSERT_TRUE(R.hasValue()) << R.error();
  ASSERT_EQ(R->Executed, 4u) << R->Results[0].Error;

  auto Events = json::readNdjsonFile(LogPath);
  ASSERT_TRUE(Events.hasValue()) << Events.error();
  std::set<std::string> JobsWithTicks;
  for (const Value &Ev : *Events)
    if (Ev.find("event")->asString() == "job_progress") {
      ASSERT_NE(Ev.find("job"), nullptr); // driver re-tags child ticks
      JobsWithTicks.insert(Ev.find("job")->asString());
      EXPECT_NE(Ev.find("evals"), nullptr);
    }
  EXPECT_EQ(JobsWithTicks.size(), 4u);

  // Identical deterministic reports to a quiet inprocess run.
  SuiteRunOptions InP;
  InP.Shards = 1;
  Expected<SuiteReport> A = JobScheduler::execute(smallMatrixSuite(), InP);
  ASSERT_TRUE(A.hasValue()) << A.error();
  EXPECT_EQ(deterministicHashes(*A), deterministicHashes(*R));
  std::remove(LogPath.c_str());
}

TEST(SubprocessTest, CrashIsolationAndInlineIr) {
  // Inline-IR specs survive the canonical-text handoff to the worker,
  // and one failing shard (unreadable module) cannot take down the
  // study.
  SuiteSpec Suite;
  AnalysisSpec Inline;
  Inline.Task = TaskKind::Boundary;
  Inline.Module = ModuleSource::inlineText(QuickstartIr);
  Inline.Search.Seed = 2019;
  Inline.Search.MaxEvals = 40000;
  Suite.addJob(Inline);
  AnalysisSpec Bad = Inline;
  Bad.Module = ModuleSource::file("/nonexistent/suite_job.wir");
  Suite.addJob(Bad);

  SuiteRunOptions Sub;
  Sub.Mode = SuiteMode::Subprocess;
  Sub.Shards = 2;
  Sub.WorkerExe = WDM_CLI_EXE;
  Expected<SuiteReport> R = JobScheduler::execute(Suite, Sub);
  ASSERT_TRUE(R.hasValue()) << R.error();
  EXPECT_EQ(R->Executed, 1u);
  EXPECT_EQ(R->Failed, 1u);
  EXPECT_TRUE(R->Results[0].R.Success);
  EXPECT_NE(R->Results[1].Error.find("worker exit 2"), std::string::npos)
      << R->Results[1].Error;
  EXPECT_EQ(R->exitCode(), 3);

  Expected<Report> Direct = Analyzer::analyze(Inline);
  ASSERT_TRUE(Direct.hasValue());
  EXPECT_EQ(deterministicReportJson(R->Results[0].R.toJson()).dump(),
            deterministicReportJson(Direct->toJson()).dump());
}

int runCli(const std::string &Args) {
  std::string Cmd = std::string(WDM_CLI_EXE) + " " + Args +
                    " > /dev/null 2> /dev/null";
  int Status = std::system(Cmd.c_str());
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

TEST(ExitCodeTest, ContractSharedByRunAndRunJob) {
  // Findings → 1.
  std::string Findings = tempPath("findings.json");
  writeFile(Findings, R"({"task": "boundary",
                          "module": {"builtin": "fig2"},
                          "search": {"seed": 7, "max_evals": 20000}})");
  EXPECT_EQ(runCli("run " + Findings), 1);
  EXPECT_EQ(runCli("run-job " + Findings), 1);

  // Ran clean, no findings → 0 (a 10-eval search cannot hit the
  // boundary; pinned seed keeps it deterministic).
  std::string Clean = tempPath("clean.json");
  writeFile(Clean, R"({"task": "boundary",
                       "module": {"builtin": "fig2"},
                       "search": {"seed": 7, "max_evals": 10,
                                  "starts": 1, "threads": 1}})");
  EXPECT_EQ(runCli("run " + Clean), 0);
  EXPECT_EQ(runCli("run-job " + Clean), 0);

  // Spec/usage error → 2.
  std::string Bad = tempPath("bad.json");
  writeFile(Bad, R"({"task": "frobnicate"})");
  EXPECT_EQ(runCli("run " + Bad), 2);
  EXPECT_EQ(runCli("run-job " + Bad), 2);
  EXPECT_EQ(runCli("run /nonexistent/spec.json"), 2);
  EXPECT_EQ(runCli("frobnicate"), 2);

  // suite run shares the contract: findings → 1, and a failing worker
  // → 3 (exercised through the CLI to pin the documented behavior).
  std::string SuiteFindings = tempPath("suite_findings.json");
  writeFile(SuiteFindings,
            R"({"suite": "s", "jobs": [
                 {"task": "boundary", "module": {"builtin": "fig2"},
                  "search": {"seed": 7, "max_evals": 20000}}]})");
  EXPECT_EQ(runCli("suite run " + SuiteFindings), 1);
  std::string SuiteBad = tempPath("suite_bad.json");
  writeFile(SuiteBad,
            R"({"suite": "s", "jobs": [
                 {"task": "boundary",
                  "module": {"file": "/nonexistent/x.wir"}}]})");
  EXPECT_EQ(runCli("suite run " + SuiteBad), 3);
  EXPECT_EQ(runCli("suite run /nonexistent/suite.json"), 2);

  for (const std::string &P :
       {Findings, Clean, Bad, SuiteFindings, SuiteBad})
    std::remove(P.c_str());
}

TEST(ApplyEnvTest, CliFlagsOverrideEnvKnobs) {
  // Precedence is spec fields < env knobs < explicit CLI flags. The
  // deterministic report view makes runs with the same effective seed
  // comparable byte-for-byte.
  auto AnalyzeReport = [&](const std::string &Extra) {
    std::string Out = tempPath("env_cli.json");
    EXPECT_EQ(runCli("analyze --task=boundary --builtin=fig2 "
                     "--evals=20000 --threads=1 " +
                     Extra + " --json " + Out),
              1);
    auto Doc = json::Value::parse(readFileText(Out));
    EXPECT_TRUE(Doc.hasValue());
    std::remove(Out.c_str());
    return Doc ? deterministicReportJson(*Doc).dump() : std::string();
  };

  // A flag beats the env knob: env seed 123 + --seed=7 equals a plain
  // --seed=7 run.
  setenv("WDM_SEED", "123", 1);
  std::string FlagWithEnv = AnalyzeReport("--seed=7");
  unsetenv("WDM_SEED");
  EXPECT_EQ(FlagWithEnv, AnalyzeReport("--seed=7"));

  // The env knob alone behaves exactly like the flag it shadows.
  setenv("WDM_SEED", "123", 1);
  std::string EnvOnly = AnalyzeReport("");
  unsetenv("WDM_SEED");
  EXPECT_EQ(EnvOnly, AnalyzeReport("--seed=123"));
}

TEST(ExitCodeTest, SuiteResumeIdempotenceThroughCli) {
  std::string SuitePath = tempPath("resume_suite.json");
  std::string LogPath = tempPath("resume_log.ndjson");
  std::string OutPath = tempPath("resume_report.json");
  writeFile(SuitePath,
            R"({"suite": "r", "matrix": {
                 "subjects": ["fig2"], "tasks": ["boundary"],
                 "seeds": [1, 2],
                 "configs": [{"search": {"max_evals": 20000,
                                         "threads": 1}}]}})");
  EXPECT_EQ(runCli("suite run " + SuitePath + " --ndjson " + LogPath), 1);
  EXPECT_EQ(runCli("suite run " + SuitePath + " --resume --ndjson " +
                   LogPath + " --json " + OutPath),
            1);
  auto Doc = json::Value::parse(readFileText(OutPath));
  ASSERT_TRUE(Doc.hasValue()) << Doc.error();
  EXPECT_EQ(Doc->find("executed")->asUint(), 0u);
  EXPECT_EQ(Doc->find("skipped")->asUint(), 2u);

  std::remove(SuitePath.c_str());
  std::remove(LogPath.c_str());
  std::remove(OutPath.c_str());
}

#endif // WDM_CLI_EXE

} // namespace
