//===--- SupportTests.cpp - Support library unit tests -----------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/Error.h"
#include "support/FPUtils.h"
#include "support/RNG.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TableWriter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

using namespace wdm;

namespace {

// --------------------------------------------------------------------------
// FPUtils
// --------------------------------------------------------------------------

TEST(FPUtilsTest, BitsRoundTrip) {
  for (double X : {0.0, -0.0, 1.0, -1.5, 1e308, 5e-324,
                   std::numeric_limits<double>::infinity()})
    EXPECT_EQ(bitsOf(fromBits(bitsOf(X))), bitsOf(X));
}

TEST(FPUtilsTest, HighWordMatchesGlibcConvention) {
  // 1.0 = 0x3ff0000000000000.
  EXPECT_EQ(highWord(1.0), 0x3ff00000u);
  EXPECT_EQ(lowWord(1.0), 0u);
  // Sign lives in the high word.
  EXPECT_EQ(highWord(-1.0), 0xbff00000u);
  EXPECT_EQ(highWord(-1.0) & 0x7fffffffu, 0x3ff00000u);
}

TEST(FPUtilsTest, OrderedBitsZeroesCoincide) {
  EXPECT_EQ(orderedBits(0.0), 0);
  EXPECT_EQ(orderedBits(-0.0), 0);
  EXPECT_EQ(ulpDistance(0.0, -0.0), 0u);
}

TEST(FPUtilsTest, UlpDistanceAdjacent) {
  EXPECT_EQ(ulpDistance(1.0, nextUp(1.0)), 1u);
  EXPECT_EQ(ulpDistance(1.0, nextDown(1.0)), 1u);
  EXPECT_EQ(ulpDistance(-1.0, nextUp(-1.0)), 1u);
  EXPECT_EQ(ulpDistance(0.0, 5e-324), 1u); // smallest denormal
  EXPECT_EQ(ulpDistance(-5e-324, 5e-324), 2u);
}

TEST(FPUtilsTest, UlpDistanceNaN) {
  EXPECT_EQ(ulpDistance(std::nan(""), 1.0), ~0ull);
}

TEST(FPUtilsTest, FromOrderedBitsInverse) {
  for (double X : {0.0, 1.0, -1.0, 3.25e-300, -7.5e300, 5e-324})
    EXPECT_EQ(bitsOf(fromOrderedBits(orderedBits(X))), bitsOf(X))
        << "at " << X;
}

TEST(FPUtilsTest, ClampedFromOrderedBitsStaysFinite) {
  EXPECT_TRUE(std::isfinite(clampedFromOrderedBits(maxOrderedFinite() + 5)));
  EXPECT_TRUE(
      std::isfinite(clampedFromOrderedBits(-maxOrderedFinite() - 5)));
  EXPECT_EQ(clampedFromOrderedBits(maxOrderedFinite()), MaxDouble);
}

/// Property: orderedBits is strictly monotone across magnitude decades.
class OrderedBitsMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(OrderedBitsMonotoneTest, MonotoneAroundPoint) {
  double X = GetParam();
  EXPECT_LT(orderedBits(nextDown(X)), orderedBits(X));
  EXPECT_LT(orderedBits(X), orderedBits(nextUp(X)));
  EXPECT_LT(orderedBits(-X), orderedBits(X));
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, OrderedBitsMonotoneTest,
                         ::testing::Values(1e-300, 1e-30, 1e-8, 0.5, 1.0,
                                           3.0, 1e8, 1e30, 1e300));

// --------------------------------------------------------------------------
// RNG
// --------------------------------------------------------------------------

TEST(RNGTest, DeterministicForSeed) {
  RNG A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNGTest, DifferentSeedsDiffer) {
  RNG A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I < 10; ++I)
    AnyDiff |= A.next() != B.next();
  EXPECT_TRUE(AnyDiff);
}

TEST(RNGTest, UniformInRange) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform(-2.0, 3.0);
    EXPECT_GE(U, -2.0);
    EXPECT_LT(U, 3.0);
  }
}

TEST(RNGTest, BelowIsInRangeAndHitsAll) {
  RNG R(9);
  bool Seen[5] = {};
  for (int I = 0; I < 500; ++I) {
    uint64_t V = R.below(5);
    ASSERT_LT(V, 5u);
    Seen[V] = true;
  }
  for (bool S : Seen)
    EXPECT_TRUE(S);
}

TEST(RNGTest, NormalMoments) {
  RNG R(11);
  RunningStat S;
  for (int I = 0; I < 20000; ++I)
    S.push(R.normal());
  EXPECT_NEAR(S.mean(), 0.0, 0.05);
  EXPECT_NEAR(S.stddev(), 1.0, 0.05);
}

TEST(RNGTest, AnyFiniteDoubleIsFinite) {
  RNG R(13);
  for (int I = 0; I < 1000; ++I)
    EXPECT_TRUE(std::isfinite(R.anyFiniteDouble()));
}

TEST(RNGTest, SplitDecorrelates) {
  RNG A(17);
  RNG B = A.split();
  bool AnyDiff = false;
  for (int I = 0; I < 10; ++I)
    AnyDiff |= A.next() != B.next();
  EXPECT_TRUE(AnyDiff);
}

// --------------------------------------------------------------------------
// Statistics
// --------------------------------------------------------------------------

TEST(StatisticsTest, RunningStatKnownValues) {
  RunningStat S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.push(X);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_EQ(S.min(), 2.0);
  EXPECT_EQ(S.max(), 9.0);
  EXPECT_NEAR(S.variance(), 32.0 / 7.0, 1e-12);
}

TEST(StatisticsTest, EmptyStat) {
  RunningStat S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.variance(), 0.0);
}

TEST(StatisticsTest, Quantiles) {
  std::vector<double> Data{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(quantile(Data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(Data, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(Data, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(Data, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

// --------------------------------------------------------------------------
// StringUtils
// --------------------------------------------------------------------------

TEST(StringUtilsTest, Formatf) {
  EXPECT_EQ(formatf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(formatf("%s", ""), "");
}

TEST(StringUtilsTest, FormatDoubleSpecials) {
  EXPECT_EQ(formatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(formatDouble(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(formatDouble(std::nan("")), "nan");
}

/// Property: formatDouble round-trips through strtod exactly.
class FormatRoundTripTest : public ::testing::TestWithParam<double> {};

TEST_P(FormatRoundTripTest, RoundTrips) {
  double X = GetParam();
  std::string S = formatDouble(X);
  double Back = std::strtod(S.c_str(), nullptr);
  EXPECT_EQ(bitsOf(Back), bitsOf(X)) << S;
}

INSTANTIATE_TEST_SUITE_P(
    Values, FormatRoundTripTest,
    ::testing::Values(0.0, -0.0, 1.0, 0.1, 0.9999999999999999, 1e-300,
                      -2.2250738585072014e-308, 1.7976931348623157e308,
                      5e-324, 3.141592653589793));

TEST(StringUtilsTest, FormatDoubleCompact) {
  EXPECT_EQ(formatDoubleCompact(1.79e308), "1.8e308");
  EXPECT_EQ(formatDoubleCompact(-1.5e2), "-1.5e2");
  EXPECT_EQ(formatDoubleCompact(3.2e157), "3.2e157");
  EXPECT_EQ(formatDoubleCompact(-7.6e-1), "-7.6e-1");
}

TEST(StringUtilsTest, SplitAndTrim) {
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
}

// --------------------------------------------------------------------------
// TableWriter
// --------------------------------------------------------------------------

TEST(TableWriterTest, AlignedOutput) {
  Table T({"name", "v"});
  T.addRow({"a", "1"});
  T.addRow({"longer", "22"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  // All lines share the same width structure: header rule present.
  EXPECT_NE(Out.find("----"), std::string::npos);
}

TEST(TableWriterTest, CSVOutput) {
  Table T({"a", "b"});
  T.addRow({"1", "2"});
  T.addSeparator();
  T.addRow({"3", "4"});
  std::ostringstream OS;
  T.printCSV(OS);
  EXPECT_EQ(OS.str(), "a,b\n1,2\n3,4\n");
}

// --------------------------------------------------------------------------
// Error / Expected
// --------------------------------------------------------------------------

TEST(ErrorTest, StatusBasics) {
  Status Ok = Status::success();
  EXPECT_TRUE(Ok.ok());
  Status Bad = Status::error("boom");
  EXPECT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.message(), "boom");
}

TEST(ErrorTest, ExpectedValueAndError) {
  Expected<int> V(7);
  ASSERT_TRUE(V.hasValue());
  EXPECT_EQ(*V, 7);
  Expected<int> E = Expected<int>::error("nope");
  ASSERT_FALSE(E.hasValue());
  EXPECT_EQ(E.error(), "nope");
}

} // namespace
