//===--- VMTests.cpp - Compiled tiers vs interpreter equivalence ----------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
// The compiled tiers' contract is *bit-for-bit* agreement with the
// interpreter: same return values, same step counts, same traps, same
// branch traces, same global/site end states — on every builtin subject
// and on randomly generated modules, under every rounding mode and
// budget. The differential harness runs every available tier (the VM
// always, the JIT on hosts that have it) against the interpreter
// reference; these tests are the contract's enforcement.
//
//===----------------------------------------------------------------------===//

#include "analyses/BoundaryAnalysis.h"
#include "analyses/OverflowDetector.h"
#include "api/Subjects.h"
#include "gsl/Bessel.h"
#include "instrument/Observers.h"
#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "jit/JITCompile.h"
#include "jit/JITWeakDistance.h"
#include "opt/BasinHopping.h"
#include "subjects/SinModel.h"
#include "support/FPUtils.h"
#include "support/RNG.h"
#include "vm/Lowering.h"
#include "vm/Machine.h"
#include "vm/VMWeakDistance.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace wdm;

namespace {

//===----------------------------------------------------------------------===//
// Differential harness
//===----------------------------------------------------------------------===//

std::vector<uint64_t> globalBits(const exec::ExecContext &Ctx,
                                 const ir::Module &M) {
  std::vector<uint64_t> Bits;
  for (size_t I = 0; I < M.numGlobals(); ++I) {
    exec::RTValue V = Ctx.getGlobal(M.global(I));
    if (V.type() == ir::Type::Double)
      Bits.push_back(bitsOf(V.asDouble()));
    else
      Bits.push_back(static_cast<uint64_t>(V.asInt()));
  }
  return Bits;
}

void expectSameResult(const exec::ExecResult &I, const exec::ExecResult &V,
                      const std::string &Ctx) {
  EXPECT_EQ(static_cast<int>(I.Kind), static_cast<int>(V.Kind)) << Ctx;
  EXPECT_EQ(I.Steps, V.Steps) << Ctx;
  EXPECT_EQ(I.TrapId, V.TrapId) << Ctx;
  EXPECT_EQ(I.TrapMessage, V.TrapMessage) << Ctx;
  ASSERT_EQ(static_cast<int>(I.ReturnValue.type()),
            static_cast<int>(V.ReturnValue.type()))
      << Ctx;
  switch (I.ReturnValue.type()) {
  case ir::Type::Double:
    EXPECT_EQ(bitsOf(I.ReturnValue.asDouble()),
              bitsOf(V.ReturnValue.asDouble()))
        << Ctx;
    break;
  case ir::Type::Int:
    EXPECT_EQ(I.ReturnValue.asInt(), V.ReturnValue.asInt()) << Ctx;
    break;
  case ir::Type::Bool:
    EXPECT_EQ(I.ReturnValue.asBool(), V.ReturnValue.asBool()) << Ctx;
    break;
  case ir::Type::Void:
    break;
  }
}

void expectSameTrace(const instr::BranchTraceObserver &I,
                     const instr::BranchTraceObserver &V,
                     const std::string &Ctx) {
  ASSERT_EQ(I.visits().size(), V.visits().size()) << Ctx;
  for (size_t K = 0; K < I.visits().size(); ++K) {
    EXPECT_EQ(I.visits()[K].Branch, V.visits()[K].Branch) << Ctx;
    EXPECT_EQ(I.visits()[K].TakenTrue, V.visits()[K].TakenTrue) << Ctx;
  }
}

/// Deterministic input battery: ordinary magnitudes, wild bit patterns,
/// and the IEEE specials every engine disagreement hides behind.
std::vector<double> drawInput(RNG &Rand, unsigned Dim) {
  static const double Specials[] = {
      0.0,
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      1.0e308,
      -1.0e308,
      4.9e-324,
      -1.0,
      1.0,
  };
  std::vector<double> X(Dim);
  for (double &V : X) {
    double P = Rand.uniform();
    if (P < 0.5)
      V = Rand.uniform(-100.0, 100.0);
    else if (P < 0.8)
      V = Rand.anyFiniteDouble();
    else
      V = Specials[Rand.below(sizeof(Specials) / sizeof(Specials[0]))];
  }
  return X;
}

/// Runs every all-double-arg function of \p M through the interpreter
/// reference and every available compiled tier (VM always, JIT on hosts
/// that have it) on \p NumInputs inputs (optionally with some sites
/// disabled) and asserts full observable equality against the
/// interpreter.
void diffModule(const ir::Module &M, uint64_t Seed, unsigned NumInputs,
                bool DisableSomeSites,
                const exec::ExecOptions &Opts = {}) {
  exec::Engine E(M);
  vm::CompiledModule CM = vm::compile(M);
  jit::CompiledModule JM = jit::compile(CM);
  const bool Jit = jit::available();

  exec::ExecContext CtxI(M), CtxV(M), CtxJ(M);
  if (DisableSomeSites)
    for (int Id = 0; Id < M.numSiteIds(); Id += 2) {
      CtxI.setSiteEnabled(Id, false);
      CtxV.setSiteEnabled(Id, false);
      CtxJ.setSiteEnabled(Id, false);
    }

  instr::BranchTraceObserver ObsI, ObsV, ObsJ;
  CtxI.setObserver(&ObsI);
  CtxV.setObserver(&ObsV);
  CtxJ.setObserver(&ObsJ);

  vm::Machine Mach(CM);
  RNG Rand(Seed);

  for (const auto &FPtr : M) {
    const ir::Function *F = FPtr.get();
    bool AllDouble = true;
    for (unsigned I = 0; I < F->numArgs(); ++I)
      AllDouble &= F->arg(I)->type() == ir::Type::Double;
    if (!AllDouble)
      continue;
    const vm::CompiledFunction *CF = CM.lookup(F);
    ASSERT_NE(CF, nullptr);
    ASSERT_TRUE(CF->Ok) << F->name() << ": " << CF->RejectReason;
    const jit::CompiledFunction *JF = JM.lookup(F);
    if (Jit) {
      // The JIT must take everything the VM lowering takes.
      ASSERT_NE(JF, nullptr);
      ASSERT_TRUE(JF->Ok) << F->name() << ": " << JF->RejectReason;
    }

    for (unsigned K = 0; K < NumInputs; ++K) {
      std::vector<double> X = drawInput(Rand, F->numArgs());
      std::vector<exec::RTValue> Args;
      for (double V : X)
        Args.push_back(exec::RTValue::ofDouble(V));

      std::string Where = M.name() + "::" + F->name() + " input #" +
                          std::to_string(K);
      CtxI.resetGlobals();
      CtxV.resetGlobals();
      ObsI.clear();
      ObsV.clear();

      exec::ExecResult RI = E.run(F, Args, CtxI, Opts);
      exec::ExecResult RV = Mach.run(*CF, Args, CtxV, Opts);

      expectSameResult(RI, RV, Where + " [vm]");
      expectSameTrace(ObsI, ObsV, Where + " [vm]");
      EXPECT_EQ(globalBits(CtxI, M), globalBits(CtxV, M))
          << Where << " [vm]";
      EXPECT_EQ(CtxI.siteDisabledTable(), CtxV.siteDisabledTable())
          << Where << " [vm]";

      if (Jit) {
        CtxJ.resetGlobals();
        ObsJ.clear();
        exec::ExecResult RJ = jit::run(JM, *JF, Args, CtxJ, Opts);
        expectSameResult(RI, RJ, Where + " [jit]");
        expectSameTrace(ObsI, ObsJ, Where + " [jit]");
        EXPECT_EQ(globalBits(CtxI, M), globalBits(CtxJ, M))
            << Where << " [jit]";
        EXPECT_EQ(CtxI.siteDisabledTable(), CtxJ.siteDisabledTable())
            << Where << " [jit]";
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Builtin subjects
//===----------------------------------------------------------------------===//

TEST(VMLoweringTest, EveryBuiltinSubjectCompiles) {
  for (const api::BuiltinInfo &Info : api::builtinSubjects()) {
    ir::Module M(Info.Name);
    auto Sub = api::buildBuiltinSubject(M, Info.Name);
    ASSERT_TRUE(Sub.hasValue()) << Info.Name;
    vm::CompiledModule CM = vm::compile(M);
    for (const vm::CompiledFunction &CF : CM.Functions)
      EXPECT_TRUE(CF.Ok) << Info.Name << "::" << CF.Source->name() << ": "
                         << CF.RejectReason;
  }
}

TEST(VMDifferentialTest, BuiltinSubjectsMatchInterpreter) {
  uint64_t Seed = 0x5eed;
  for (const api::BuiltinInfo &Info : api::builtinSubjects()) {
    ir::Module M(Info.Name);
    auto Sub = api::buildBuiltinSubject(M, Info.Name);
    ASSERT_TRUE(Sub.hasValue()) << Info.Name;
    diffModule(M, Seed++, 20, /*DisableSomeSites=*/false);
  }
}

TEST(VMDifferentialTest, InstrumentedSubjectsMatchWithSiteState) {
  // Instrumentation introduces site_enabled gates and the w global; the
  // site-state-sensitive behavior (Algorithm 3's evolving L) must agree
  // too, including with half the sites disabled.
  uint64_t Seed = 0x11;
  for (const char *Name : {"fig2", "sin", "bessel", "airy"}) {
    ir::Module M(Name);
    auto Sub = api::buildBuiltinSubject(M, Name);
    ASSERT_TRUE(Sub.hasValue()) << Name;
    instr::OverflowInstrumentation OI =
        instr::instrumentOverflow(*Sub->F);
    ASSERT_NE(OI.Wrapped, nullptr);
    diffModule(M, Seed++, 15, /*DisableSomeSites=*/false);
    diffModule(M, Seed++, 15, /*DisableSomeSites=*/true);
  }
}

TEST(VMDifferentialTest, RoundingModesMatch) {
  ir::Module M("sin");
  subjects::SinModel P = subjects::buildSinModel(M);
  ASSERT_NE(P.F, nullptr);
  for (exec::RoundingMode RM :
       {exec::RoundingMode::NearestEven, exec::RoundingMode::TowardZero,
        exec::RoundingMode::Upward, exec::RoundingMode::Downward}) {
    exec::ExecOptions Opts;
    Opts.Rounding = RM;
    diffModule(M, 0x40d + static_cast<uint64_t>(RM), 12,
               /*DisableSomeSites=*/false, Opts);
  }
}

TEST(VMDifferentialTest, StepBudgetsMatch) {
  ir::Module M("sin");
  subjects::buildSinModel(M);
  for (uint64_t MaxSteps : {1ull, 2ull, 7ull, 33ull, 100ull}) {
    exec::ExecOptions Opts;
    Opts.MaxSteps = MaxSteps;
    diffModule(M, 0x57e9 + MaxSteps, 6, /*DisableSomeSites=*/false, Opts);
  }
}

//===----------------------------------------------------------------------===//
// Randomly generated modules
//===----------------------------------------------------------------------===//

/// Generates a verifier-clean random module: forward-only CFGs over
/// doubles/ints/bools, globals, allocas, site gates, select, a helper
/// call, and an occasional trap — every construct the lowering handles.
void buildRandomModule(ir::Module &M, RNG &Rand) {
  ir::IRBuilder B(M);
  ir::GlobalVar *GD = M.addGlobalDouble("gd", 1.5);
  ir::GlobalVar *GI = M.addGlobalInt("gi", 7);
  for (int K = 0; K < 4; ++K)
    M.allocateSiteId();

  // A small always-terminating helper the main function can call.
  ir::Function *Helper = M.addFunction("helper", ir::Type::Double);
  {
    ir::Argument *A = Helper->addArg(ir::Type::Double, "a");
    ir::Argument *Bv = Helper->addArg(ir::Type::Double, "b");
    ir::BasicBlock *HEntry = Helper->addBlock("entry");
    ir::BasicBlock *HT = Helper->addBlock("t");
    ir::BasicBlock *HF = Helper->addBlock("f");
    B.setInsertAppend(HEntry);
    ir::Instruction *C = B.fcmp(ir::CmpPred::LT, A, Bv);
    B.condbr(C, HT, HF);
    B.setInsertAppend(HT);
    B.ret(B.fadd(A, B.sin(Bv)));
    B.setInsertAppend(HF);
    B.ret(B.fmul(A, B.fsub(Bv, B.lit(0.5))));
  }

  unsigned NumArgs = 1 + static_cast<unsigned>(Rand.below(3));
  ir::Function *F = M.addFunction("f", ir::Type::Double);
  std::vector<ir::Value *> ArgVals;
  for (unsigned K = 0; K < NumArgs; ++K)
    ArgVals.push_back(F->addArg(ir::Type::Double, "x" + std::to_string(K)));

  unsigned NumBlocks = 3 + static_cast<unsigned>(Rand.below(5));
  std::vector<ir::BasicBlock *> Blocks;
  for (unsigned K = 0; K < NumBlocks; ++K)
    Blocks.push_back(F->addBlock("b" + std::to_string(K)));

  // Dominance discipline: only entry-block definitions (which dominate
  // everything) and current-block definitions are used as operands.
  std::vector<ir::Value *> EntryD = ArgVals, EntryI, EntryB;
  std::vector<ir::Instruction *> Allocas;

  for (unsigned BI = 0; BI < NumBlocks; ++BI) {
    ir::BasicBlock *BB = Blocks[BI];
    B.setInsertAppend(BB);
    bool IsEntry = BI == 0;
    std::vector<ir::Value *> D = EntryD, IV = EntryI, BV = EntryB;

    if (IsEntry) {
      // A couple of stack slots, entry-only so every use is dominated.
      for (int K = 0; K < 2; ++K) {
        ir::Instruction *Slot = B.alloca_(ir::Type::Double);
        B.store(Slot, D[Rand.below(D.size())]);
        Allocas.push_back(Slot);
      }
    }

    unsigned NumOps = 2 + static_cast<unsigned>(Rand.below(5));
    for (unsigned K = 0; K < NumOps; ++K) {
      ir::Value *X = D[Rand.below(D.size())];
      ir::Value *Y = D[Rand.below(D.size())];
      switch (Rand.below(14)) {
      case 0:
        D.push_back(B.fadd(X, Y));
        break;
      case 1:
        D.push_back(B.fmul(X, Y));
        break;
      case 2:
        D.push_back(B.fdiv(X, B.fadd(Y, B.lit(0.25))));
        break;
      case 3:
        D.push_back(B.sin(X));
        break;
      case 4:
        D.push_back(B.fmin(X, B.sqrt(B.fabs(Y))));
        break;
      case 5:
        BV.push_back(B.fcmp(
            static_cast<ir::CmpPred>(Rand.below(6)), X, Y));
        break;
      case 6:
        IV.push_back(B.highword(X));
        break;
      case 7:
        if (!IV.empty()) {
          ir::Value *I1 = IV[Rand.below(IV.size())];
          ir::Value *I2 = IV[Rand.below(IV.size())];
          IV.push_back(B.iadd(B.ixor(I1, I2), B.litInt(3)));
          BV.push_back(
              B.icmp(static_cast<ir::CmpPred>(Rand.below(6)), I1, I2));
        }
        break;
      case 8:
        if (!BV.empty())
          D.push_back(B.select(BV[Rand.below(BV.size())], X, Y));
        break;
      case 9:
        B.storeg(GD, X);
        D.push_back(B.loadg(GD));
        break;
      case 10:
        IV.push_back(B.loadg(GI));
        break;
      case 11:
        // Ids 0..3 are allocated; 4 exercises the beyond-range path
        // (reads enabled in both tiers).
        BV.push_back(B.siteEnabled(static_cast<int>(Rand.below(5))));
        break;
      case 12:
        if (!Allocas.empty()) {
          ir::Instruction *Slot = Allocas[Rand.below(Allocas.size())];
          B.store(Slot, X);
          D.push_back(B.load(Slot));
        }
        break;
      case 13:
        D.push_back(B.call(Helper, {X, Y}));
        break;
      }
    }
    if (IsEntry) {
      EntryD = D;
      EntryI = IV;
      EntryB = BV;
    }

    // Terminator: forward-only control flow, so every run terminates.
    if (BI + 1 == NumBlocks) {
      B.ret(D[Rand.below(D.size())]);
    } else if (Rand.chance(0.05)) {
      B.trap(100 + static_cast<int>(BI), "random trap");
    } else if (!BV.empty() && Rand.chance(0.7) && BI + 2 < NumBlocks) {
      size_t T1 = BI + 1 + Rand.below(NumBlocks - BI - 1);
      size_t T2 = BI + 1 + Rand.below(NumBlocks - BI - 1);
      B.condbr(BV[Rand.below(BV.size())], Blocks[T1], Blocks[T2]);
    } else {
      B.br(Blocks[BI + 1 + Rand.below(NumBlocks - BI - 1)]);
    }
  }
}

TEST(VMDifferentialTest, RandomModulesMatchInterpreter) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    ir::Module M("random" + std::to_string(Seed));
    RNG Rand(Seed * 0x9e37);
    buildRandomModule(M, Rand);
    Status S = ir::verifyModule(M);
    ASSERT_TRUE(S.ok()) << "seed " << Seed << ": " << S.message();
    diffModule(M, Seed, 12, /*DisableSomeSites=*/false);
    diffModule(M, Seed + 1000, 6, /*DisableSomeSites=*/true);
  }
}

//===----------------------------------------------------------------------===//
// Full tier x rounding x budget sweep
//===----------------------------------------------------------------------===//

/// One parameterized pass over every (rounding mode, step budget) cell;
/// diffModule itself fans each cell out across every available engine
/// tier, so a new tier joins the whole sweep by existing.
class TierSweepTest
    : public ::testing::TestWithParam<
          std::tuple<exec::RoundingMode, uint64_t>> {};

TEST_P(TierSweepTest, RandomModulesAgreeAcrossAllTiers) {
  exec::ExecOptions Opts;
  Opts.Rounding = std::get<0>(GetParam());
  Opts.MaxSteps = std::get<1>(GetParam());
  const uint64_t Salt = static_cast<uint64_t>(Opts.Rounding) * 1000 +
                        Opts.MaxSteps;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    ir::Module M("sweep" + std::to_string(Seed));
    RNG Rand(Seed * 0x51ee7);
    buildRandomModule(M, Rand);
    Status S = ir::verifyModule(M);
    ASSERT_TRUE(S.ok()) << "seed " << Seed << ": " << S.message();
    diffModule(M, Seed + Salt, 5, /*DisableSomeSites=*/Seed % 2 == 0,
               Opts);
  }
}

std::string tierSweepName(
    const ::testing::TestParamInfo<TierSweepTest::ParamType> &Info) {
  const char *RM = "?";
  switch (std::get<0>(Info.param)) {
  case exec::RoundingMode::NearestEven:
    RM = "NearestEven";
    break;
  case exec::RoundingMode::TowardZero:
    RM = "TowardZero";
    break;
  case exec::RoundingMode::Upward:
    RM = "Upward";
    break;
  case exec::RoundingMode::Downward:
    RM = "Downward";
    break;
  }
  return std::string(RM) + "_Budget" +
         std::to_string(std::get<1>(Info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllTiers, TierSweepTest,
    ::testing::Combine(
        ::testing::Values(exec::RoundingMode::NearestEven,
                          exec::RoundingMode::TowardZero,
                          exec::RoundingMode::Upward,
                          exec::RoundingMode::Downward),
        ::testing::Values(1ull, 9ull, 150ull, 2'000'000ull)),
    tierSweepName);

//===----------------------------------------------------------------------===//
// Weak-distance and search-level equivalence
//===----------------------------------------------------------------------===//

const char *QuickstartIr = R"(
module "quickstart"
func @prog(%x: double) -> double {
entry:
  %xs = alloca double
  store %xs, %x
  %c1 = fcmp.le %x, 1.0
  condbr %c1, inc, mid
inc:
  %x1 = fadd %x, 1.0
  store %xs, %x1
  br mid
mid:
  %xv = load %xs
  %y = fmul %xv, %xv
  %c2 = fcmp.le %y, 4.0
  condbr %c2, dec, done
dec:
  %x2 = fsub %xv, 1.0
  store %xs, %x2
  br done
done:
  %r = load %xs
  ret %r
}
)";

TEST(VMEquivalenceTest, WeakDistanceValuesMatchBitForBit) {
  auto Parsed = ir::parseModule(QuickstartIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  analyses::BoundaryAnalysis BVA(M, *M.functionByName("prog"));
  ASSERT_EQ(BVA.executionTier().Effective, vm::EngineKind::VM);

  auto VMEval = BVA.factory().make();
  RNG Rand(0xd1ff);
  for (unsigned K = 0; K < 500; ++K) {
    std::vector<double> X = drawInput(Rand, 1);
    double WI = BVA.weak()(X); // Driver-side interpreter evaluator.
    double WV = (*VMEval)(X);
    EXPECT_EQ(bitsOf(WI), bitsOf(WV)) << X[0];
  }
}

TEST(VMEquivalenceTest, BoundarySearchIdenticalAcrossEngines) {
  auto Run = [&](vm::EngineKind Engine) {
    auto Parsed = ir::parseModule(QuickstartIr);
    EXPECT_TRUE(Parsed.hasValue());
    ir::Module &M = **Parsed;
    analyses::BoundaryAnalysis BVA(M, *M.functionByName("prog"),
                                   instr::BoundaryForm::Product, Engine);
    opt::BasinHopping Backend;
    core::ReductionOptions Opts;
    Opts.Seed = 2019;
    Opts.MaxEvals = 40'000;
    return BVA.findOne(Backend, Opts);
  };
  core::ReductionResult RI = Run(vm::EngineKind::Interp);
  core::ReductionResult RV = Run(vm::EngineKind::VM);
  EXPECT_EQ(RI.Found, RV.Found);
  EXPECT_EQ(RI.Witness, RV.Witness);
  EXPECT_EQ(RI.Evals, RV.Evals);
  EXPECT_EQ(RI.StartsUsed, RV.StartsUsed);
  EXPECT_EQ(bitsOf(RI.WStar), bitsOf(RV.WStar));
  EXPECT_EQ(RI.UnsoundCandidates, RV.UnsoundCandidates);
}

TEST(VMEquivalenceTest, OverflowRoundsIdenticalAcrossEngines) {
  auto Run = [&](vm::EngineKind Engine) {
    ir::Module M;
    gsl::SfFunction Bessel = gsl::buildBesselKnuScaledAsympx(M);
    analyses::OverflowDetector Det(M, *Bessel.F,
                                   instr::OverflowMetric::UlpGap, Engine);
    analyses::OverflowDetector::Options Opts;
    Opts.Seed = 0xbe55;
    Opts.EvalsPerRound = 2'000;
    Opts.MaxRounds = 4;
    return Det.run(Opts);
  };
  analyses::OverflowReport RI = Run(vm::EngineKind::Interp);
  analyses::OverflowReport RV = Run(vm::EngineKind::VM);
  EXPECT_EQ(RI.Evals, RV.Evals);
  ASSERT_EQ(RI.Findings.size(), RV.Findings.size());
  for (size_t K = 0; K < RI.Findings.size(); ++K) {
    EXPECT_EQ(RI.Findings[K].SiteId, RV.Findings[K].SiteId);
    EXPECT_EQ(RI.Findings[K].Found, RV.Findings[K].Found);
    EXPECT_EQ(RI.Findings[K].Input, RV.Findings[K].Input);
  }
}

//===----------------------------------------------------------------------===//
// Fallback
//===----------------------------------------------------------------------===//

TEST(VMFallbackTest, TinyLimitsRejectAndFallBack) {
  auto Parsed = ir::parseModule(QuickstartIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  ir::Function *F = M.functionByName("prog");

  vm::Limits Tiny;
  Tiny.MaxRegs = 2;
  vm::CompiledModule CM = vm::compile(M, Tiny);
  const vm::CompiledFunction *CF = CM.lookup(F);
  ASSERT_NE(CF, nullptr);
  EXPECT_FALSE(CF->Ok);
  EXPECT_FALSE(CF->RejectReason.empty());

  // The drop-in factory mints working interpreter evaluators instead.
  instr::BoundaryInstrumentation BI = instr::instrumentBoundary(*F);
  exec::Engine E(M);
  exec::ExecContext Parent(M);
  vm::VMWeakDistanceFactory Factory(E, BI.Wrapped, BI.W, BI.WInit, Parent,
                                    {}, Tiny);
  EXPECT_FALSE(Factory.usingVM());
  EXPECT_FALSE(Factory.fallbackReason().empty());

  auto Eval = Factory.make();
  instr::IRWeakDistance Direct(E, BI.Wrapped, BI.W, BI.WInit, Parent);
  for (double X : {-3.0, 0.5, 1.0, 2.0, 1e300})
    EXPECT_EQ(bitsOf(Direct({X})), bitsOf((*Eval)({X})));

  // And the bundle reports the fallback for the api layer.
  vm::FactoryBundle Bundle = vm::makeWeakDistanceFactory(
      vm::EngineKind::VM, E, BI.Wrapped, BI.W, BI.WInit, Parent, {}, Tiny);
  EXPECT_EQ(Bundle.Effective, vm::EngineKind::Interp);
  EXPECT_FALSE(Bundle.FallbackReason.empty());
}

TEST(VMFallbackTest, CallersOfRejectedCalleesFallBackToo) {
  ir::Module M("transitive");
  ir::IRBuilder B(M);

  ir::Function *Big = M.addFunction("big", ir::Type::Double);
  ir::Argument *BA = Big->addArg(ir::Type::Double, "x");
  B.setInsertAppend(Big->addBlock("entry"));
  ir::Value *Acc = BA;
  for (int K = 0; K < 40; ++K)
    Acc = B.fadd(Acc, B.lit(static_cast<double>(K)));
  B.ret(Acc);

  ir::Function *Caller = M.addFunction("caller", ir::Type::Double);
  ir::Argument *CA = Caller->addArg(ir::Type::Double, "x");
  B.setInsertAppend(Caller->addBlock("entry"));
  B.ret(B.call(Big, {CA}));

  vm::Limits Tiny;
  Tiny.MaxRegs = 30; // Rejects big (needs > 30 regs), fits caller.
  vm::CompiledModule CM = vm::compile(M, Tiny);
  EXPECT_FALSE(CM.lookup(Big)->Ok);
  EXPECT_FALSE(CM.lookup(Caller)->Ok);
  EXPECT_NE(CM.lookup(Caller)->RejectReason.find("big"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// JIT tier: equivalence and fallback
//===----------------------------------------------------------------------===//

TEST(JITEquivalenceTest, WeakDistanceValuesMatchBitForBit) {
  auto Parsed = ir::parseModule(QuickstartIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  ir::Function *F = M.functionByName("prog");
  instr::BoundaryInstrumentation BI = instr::instrumentBoundary(*F);
  exec::Engine E(M);
  exec::ExecContext Parent(M);

  // Whether native code runs or the chain degrades, minted evaluators
  // must agree with the interpreter bit for bit.
  jit::JITWeakDistanceFactory Factory(E, BI.Wrapped, BI.W, BI.WInit,
                                      Parent);
  EXPECT_EQ(Factory.usingJIT(), jit::available())
      << Factory.fallbackReason();
  auto Eval = Factory.make();
  instr::IRWeakDistance Direct(E, BI.Wrapped, BI.W, BI.WInit, Parent);
  RNG Rand(0x717);
  for (unsigned K = 0; K < 500; ++K) {
    std::vector<double> X = drawInput(Rand, 1);
    EXPECT_EQ(bitsOf(Direct(X)), bitsOf((*Eval)(X))) << X[0];
  }
}

TEST(JITEquivalenceTest, BatchEvaluationMatchesScalar) {
  auto Parsed = ir::parseModule(QuickstartIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  instr::BoundaryInstrumentation BI =
      instr::instrumentBoundary(*M.functionByName("prog"));
  exec::Engine E(M);
  exec::ExecContext Parent(M);
  jit::JITWeakDistanceFactory Factory(E, BI.Wrapped, BI.W, BI.WInit,
                                      Parent);
  auto Scalar = Factory.make();
  auto Batched = Factory.make();
  RNG Rand(0xba7c);
  constexpr std::size_t K = 24;
  std::vector<double> Xs(K), Want(K), Got(K);
  for (std::size_t L = 0; L < K; ++L) {
    Xs[L] = drawInput(Rand, 1)[0];
    Want[L] = (*Scalar)({Xs[L]});
  }
  Batched->evalBatch(Xs.data(), K, Got.data());
  for (std::size_t L = 0; L < K; ++L)
    EXPECT_EQ(bitsOf(Want[L]), bitsOf(Got[L])) << Xs[L];
}

TEST(JITFallbackTest, TinyCodeLimitRejectsAndFallsBackToVM) {
  auto Parsed = ir::parseModule(QuickstartIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  ir::Function *F = M.functionByName("prog");
  instr::BoundaryInstrumentation BI = instr::instrumentBoundary(*F);
  exec::Engine E(M);
  exec::ExecContext Parent(M);

  jit::Limits TinyJ;
  TinyJ.MaxCodeBytes = 16; // No function fits in 16 bytes.
  jit::JITWeakDistanceFactory Factory(E, BI.Wrapped, BI.W, BI.WInit,
                                      Parent, {}, {}, TinyJ);
  EXPECT_FALSE(Factory.usingJIT());
  EXPECT_FALSE(Factory.fallbackReason().empty());
  EXPECT_TRUE(Factory.vmFallback().usingVM());

  // The minted (VM-backed) evaluators still agree with the interpreter.
  auto Eval = Factory.make();
  instr::IRWeakDistance Direct(E, BI.Wrapped, BI.W, BI.WInit, Parent);
  for (double X : {-3.0, 0.5, 1.0, 2.0, 1e300})
    EXPECT_EQ(bitsOf(Direct({X})), bitsOf((*Eval)({X})));

  // With default limits the bundle reports whatever this host supports:
  // the JIT where available, the VM (with a reason) elsewhere.
  vm::FactoryBundle Bundle = vm::makeWeakDistanceFactory(
      vm::EngineKind::JIT, E, BI.Wrapped, BI.W, BI.WInit, Parent);
  EXPECT_EQ(Bundle.Requested, vm::EngineKind::JIT);
  if (jit::available()) {
    EXPECT_EQ(Bundle.Effective, vm::EngineKind::JIT);
    EXPECT_TRUE(Bundle.FallbackReason.empty()) << Bundle.FallbackReason;
  } else {
    EXPECT_EQ(Bundle.Effective, vm::EngineKind::VM);
    EXPECT_FALSE(Bundle.FallbackReason.empty());
  }
}

TEST(JITFallbackTest, CallersOfRejectedCalleesFallBackToo) {
  if (!jit::available())
    GTEST_SKIP() << "native tier unavailable on this host";
  ir::Module M("transitive");
  ir::IRBuilder B(M);

  ir::Function *Big = M.addFunction("big", ir::Type::Double);
  ir::Argument *BA = Big->addArg(ir::Type::Double, "x");
  B.setInsertAppend(Big->addBlock("entry"));
  ir::Value *Acc = BA;
  for (int K = 0; K < 200; ++K)
    Acc = B.fadd(Acc, B.lit(static_cast<double>(K)));
  B.ret(Acc);

  ir::Function *Caller = M.addFunction("caller", ir::Type::Double);
  ir::Argument *CA = Caller->addArg(ir::Type::Double, "x");
  B.setInsertAppend(Caller->addBlock("entry"));
  B.ret(B.call(Big, {CA}));

  vm::CompiledModule CM = vm::compile(M);
  ASSERT_TRUE(CM.lookup(Big)->Ok);
  ASSERT_TRUE(CM.lookup(Caller)->Ok);

  // Size the native-code budget so big's 200 fadd fragments bust it
  // while caller's call+ret stub would fit on its own: the rejection
  // must still spread to the caller (no mixed native/VM call chains).
  jit::Limits TinyJ;
  TinyJ.MaxCodeBytes = 1024;
  jit::CompiledModule JM = jit::compile(CM, TinyJ);
  EXPECT_FALSE(JM.lookup(Big)->Ok);
  ASSERT_NE(JM.lookup(Caller), nullptr);
  EXPECT_FALSE(JM.lookup(Caller)->Ok);
  EXPECT_NE(JM.lookup(Caller)->RejectReason.find("big"),
            std::string::npos)
      << JM.lookup(Caller)->RejectReason;
}

TEST(JITFallbackTest, EngineNamesForErrorsListAvailability) {
  std::string Names = jit::engineNamesForErrors();
  EXPECT_NE(Names.find("'interp'"), std::string::npos);
  EXPECT_NE(Names.find("'vm'"), std::string::npos);
  EXPECT_NE(Names.find("'jit'"), std::string::npos);
  EXPECT_EQ(Names.find("unavailable") == std::string::npos,
            jit::available());
}

} // namespace
