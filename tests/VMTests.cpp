//===--- VMTests.cpp - Compiled tiers vs interpreter equivalence ----------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
// The compiled tiers' contract is *bit-for-bit* agreement with the
// interpreter: same return values, same step counts, same traps, same
// branch traces, same global/site end states — on every builtin subject
// and on randomly generated modules, under every rounding mode and
// budget. The differential harness runs every available tier (the VM
// always, the JIT on hosts that have it) against the interpreter
// reference; these tests are the contract's enforcement.
//
//===----------------------------------------------------------------------===//

#include "analyses/BoundaryAnalysis.h"
#include "analyses/OverflowDetector.h"
#include "api/Subjects.h"
#include "gsl/Bessel.h"
#include "instrument/Observers.h"
#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "jit/JITCompile.h"
#include "jit/JITWeakDistance.h"
#include "opt/BasinHopping.h"
#include "subjects/SinModel.h"
#include "support/FPUtils.h"
#include "support/RNG.h"
#include "vm/Lowering.h"
#include "vm/Machine.h"
#include "vm/VMWeakDistance.h"
#include "vm/Verify.h"

#include "RandomModule.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace wdm;

namespace {

//===----------------------------------------------------------------------===//
// Differential harness
//===----------------------------------------------------------------------===//

std::vector<uint64_t> globalBits(const exec::ExecContext &Ctx,
                                 const ir::Module &M) {
  std::vector<uint64_t> Bits;
  for (size_t I = 0; I < M.numGlobals(); ++I) {
    exec::RTValue V = Ctx.getGlobal(M.global(I));
    if (V.type() == ir::Type::Double)
      Bits.push_back(bitsOf(V.asDouble()));
    else
      Bits.push_back(static_cast<uint64_t>(V.asInt()));
  }
  return Bits;
}

void expectSameResult(const exec::ExecResult &I, const exec::ExecResult &V,
                      const std::string &Ctx) {
  EXPECT_EQ(static_cast<int>(I.Kind), static_cast<int>(V.Kind)) << Ctx;
  EXPECT_EQ(I.Steps, V.Steps) << Ctx;
  EXPECT_EQ(I.TrapId, V.TrapId) << Ctx;
  EXPECT_EQ(I.TrapMessage, V.TrapMessage) << Ctx;
  ASSERT_EQ(static_cast<int>(I.ReturnValue.type()),
            static_cast<int>(V.ReturnValue.type()))
      << Ctx;
  switch (I.ReturnValue.type()) {
  case ir::Type::Double:
    EXPECT_EQ(bitsOf(I.ReturnValue.asDouble()),
              bitsOf(V.ReturnValue.asDouble()))
        << Ctx;
    break;
  case ir::Type::Int:
    EXPECT_EQ(I.ReturnValue.asInt(), V.ReturnValue.asInt()) << Ctx;
    break;
  case ir::Type::Bool:
    EXPECT_EQ(I.ReturnValue.asBool(), V.ReturnValue.asBool()) << Ctx;
    break;
  case ir::Type::Void:
    break;
  }
}

void expectSameTrace(const instr::BranchTraceObserver &I,
                     const instr::BranchTraceObserver &V,
                     const std::string &Ctx) {
  ASSERT_EQ(I.visits().size(), V.visits().size()) << Ctx;
  for (size_t K = 0; K < I.visits().size(); ++K) {
    EXPECT_EQ(I.visits()[K].Branch, V.visits()[K].Branch) << Ctx;
    EXPECT_EQ(I.visits()[K].TakenTrue, V.visits()[K].TakenTrue) << Ctx;
  }
}

using testutil::buildRandomModule;
using testutil::drawInput;

/// Runs every all-double-arg function of \p M through the interpreter
/// reference and every available compiled tier (VM always, JIT on hosts
/// that have it) on \p NumInputs inputs (optionally with some sites
/// disabled) and asserts full observable equality against the
/// interpreter.
void diffModule(const ir::Module &M, uint64_t Seed, unsigned NumInputs,
                bool DisableSomeSites,
                const exec::ExecOptions &Opts = {}) {
  exec::Engine E(M);
  vm::CompiledModule CM = vm::compile(M);
  // Every lowering in the differential suite must pass the bytecode
  // verifier unconditionally (the compile-time hook is debug-only).
  {
    Status VS = vm::verifyBytecode(CM);
    ASSERT_TRUE(VS.ok()) << VS.message();
  }
  jit::CompiledModule JM = jit::compile(CM);
  const bool Jit = jit::available();

  exec::ExecContext CtxI(M), CtxV(M), CtxJ(M);
  if (DisableSomeSites)
    for (int Id = 0; Id < M.numSiteIds(); Id += 2) {
      CtxI.setSiteEnabled(Id, false);
      CtxV.setSiteEnabled(Id, false);
      CtxJ.setSiteEnabled(Id, false);
    }

  instr::BranchTraceObserver ObsI, ObsV, ObsJ;
  CtxI.setObserver(&ObsI);
  CtxV.setObserver(&ObsV);
  CtxJ.setObserver(&ObsJ);

  vm::Machine Mach(CM);
  RNG Rand(Seed);

  for (const auto &FPtr : M) {
    const ir::Function *F = FPtr.get();
    bool AllDouble = true;
    for (unsigned I = 0; I < F->numArgs(); ++I)
      AllDouble &= F->arg(I)->type() == ir::Type::Double;
    if (!AllDouble)
      continue;
    const vm::CompiledFunction *CF = CM.lookup(F);
    ASSERT_NE(CF, nullptr);
    ASSERT_TRUE(CF->Ok) << F->name() << ": " << CF->RejectReason;
    const jit::CompiledFunction *JF = JM.lookup(F);
    if (Jit) {
      // The JIT must take everything the VM lowering takes.
      ASSERT_NE(JF, nullptr);
      ASSERT_TRUE(JF->Ok) << F->name() << ": " << JF->RejectReason;
    }

    for (unsigned K = 0; K < NumInputs; ++K) {
      std::vector<double> X = drawInput(Rand, F->numArgs());
      std::vector<exec::RTValue> Args;
      for (double V : X)
        Args.push_back(exec::RTValue::ofDouble(V));

      std::string Where = M.name() + "::" + F->name() + " input #" +
                          std::to_string(K);
      CtxI.resetGlobals();
      CtxV.resetGlobals();
      ObsI.clear();
      ObsV.clear();

      exec::ExecResult RI = E.run(F, Args, CtxI, Opts);
      exec::ExecResult RV = Mach.run(*CF, Args, CtxV, Opts);

      expectSameResult(RI, RV, Where + " [vm]");
      expectSameTrace(ObsI, ObsV, Where + " [vm]");
      EXPECT_EQ(globalBits(CtxI, M), globalBits(CtxV, M))
          << Where << " [vm]";
      EXPECT_EQ(CtxI.siteDisabledTable(), CtxV.siteDisabledTable())
          << Where << " [vm]";

      if (Jit) {
        CtxJ.resetGlobals();
        ObsJ.clear();
        exec::ExecResult RJ = jit::run(JM, *JF, Args, CtxJ, Opts);
        expectSameResult(RI, RJ, Where + " [jit]");
        expectSameTrace(ObsI, ObsJ, Where + " [jit]");
        EXPECT_EQ(globalBits(CtxI, M), globalBits(CtxJ, M))
            << Where << " [jit]";
        EXPECT_EQ(CtxI.siteDisabledTable(), CtxJ.siteDisabledTable())
            << Where << " [jit]";
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Builtin subjects
//===----------------------------------------------------------------------===//

TEST(VMLoweringTest, EveryBuiltinSubjectCompiles) {
  for (const api::BuiltinInfo &Info : api::builtinSubjects()) {
    ir::Module M(Info.Name);
    auto Sub = api::buildBuiltinSubject(M, Info.Name);
    ASSERT_TRUE(Sub.hasValue()) << Info.Name;
    vm::CompiledModule CM = vm::compile(M);
    for (const vm::CompiledFunction &CF : CM.Functions)
      EXPECT_TRUE(CF.Ok) << Info.Name << "::" << CF.Source->name() << ": "
                         << CF.RejectReason;
  }
}

TEST(VMDifferentialTest, BuiltinSubjectsMatchInterpreter) {
  uint64_t Seed = 0x5eed;
  for (const api::BuiltinInfo &Info : api::builtinSubjects()) {
    ir::Module M(Info.Name);
    auto Sub = api::buildBuiltinSubject(M, Info.Name);
    ASSERT_TRUE(Sub.hasValue()) << Info.Name;
    diffModule(M, Seed++, 20, /*DisableSomeSites=*/false);
  }
}

TEST(VMDifferentialTest, InstrumentedSubjectsMatchWithSiteState) {
  // Instrumentation introduces site_enabled gates and the w global; the
  // site-state-sensitive behavior (Algorithm 3's evolving L) must agree
  // too, including with half the sites disabled.
  uint64_t Seed = 0x11;
  for (const char *Name : {"fig2", "sin", "bessel", "airy"}) {
    ir::Module M(Name);
    auto Sub = api::buildBuiltinSubject(M, Name);
    ASSERT_TRUE(Sub.hasValue()) << Name;
    instr::OverflowInstrumentation OI =
        instr::instrumentOverflow(*Sub->F);
    ASSERT_NE(OI.Wrapped, nullptr);
    diffModule(M, Seed++, 15, /*DisableSomeSites=*/false);
    diffModule(M, Seed++, 15, /*DisableSomeSites=*/true);
  }
}

TEST(VMDifferentialTest, RoundingModesMatch) {
  ir::Module M("sin");
  subjects::SinModel P = subjects::buildSinModel(M);
  ASSERT_NE(P.F, nullptr);
  for (exec::RoundingMode RM :
       {exec::RoundingMode::NearestEven, exec::RoundingMode::TowardZero,
        exec::RoundingMode::Upward, exec::RoundingMode::Downward}) {
    exec::ExecOptions Opts;
    Opts.Rounding = RM;
    diffModule(M, 0x40d + static_cast<uint64_t>(RM), 12,
               /*DisableSomeSites=*/false, Opts);
  }
}

TEST(VMDifferentialTest, StepBudgetsMatch) {
  ir::Module M("sin");
  subjects::buildSinModel(M);
  for (uint64_t MaxSteps : {1ull, 2ull, 7ull, 33ull, 100ull}) {
    exec::ExecOptions Opts;
    Opts.MaxSteps = MaxSteps;
    diffModule(M, 0x57e9 + MaxSteps, 6, /*DisableSomeSites=*/false, Opts);
  }
}

//===----------------------------------------------------------------------===//
// Randomly generated modules
//===----------------------------------------------------------------------===//

TEST(VMDifferentialTest, RandomModulesMatchInterpreter) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    ir::Module M("random" + std::to_string(Seed));
    RNG Rand(Seed * 0x9e37);
    buildRandomModule(M, Rand);
    Status S = ir::verifyModule(M);
    ASSERT_TRUE(S.ok()) << "seed " << Seed << ": " << S.message();
    diffModule(M, Seed, 12, /*DisableSomeSites=*/false);
    diffModule(M, Seed + 1000, 6, /*DisableSomeSites=*/true);
  }
}

//===----------------------------------------------------------------------===//
// Full tier x rounding x budget sweep
//===----------------------------------------------------------------------===//

/// One parameterized pass over every (rounding mode, step budget) cell;
/// diffModule itself fans each cell out across every available engine
/// tier, so a new tier joins the whole sweep by existing.
class TierSweepTest
    : public ::testing::TestWithParam<
          std::tuple<exec::RoundingMode, uint64_t>> {};

TEST_P(TierSweepTest, RandomModulesAgreeAcrossAllTiers) {
  exec::ExecOptions Opts;
  Opts.Rounding = std::get<0>(GetParam());
  Opts.MaxSteps = std::get<1>(GetParam());
  const uint64_t Salt = static_cast<uint64_t>(Opts.Rounding) * 1000 +
                        Opts.MaxSteps;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    ir::Module M("sweep" + std::to_string(Seed));
    RNG Rand(Seed * 0x51ee7);
    buildRandomModule(M, Rand);
    Status S = ir::verifyModule(M);
    ASSERT_TRUE(S.ok()) << "seed " << Seed << ": " << S.message();
    diffModule(M, Seed + Salt, 5, /*DisableSomeSites=*/Seed % 2 == 0,
               Opts);
  }
}

std::string tierSweepName(
    const ::testing::TestParamInfo<TierSweepTest::ParamType> &Info) {
  const char *RM = "?";
  switch (std::get<0>(Info.param)) {
  case exec::RoundingMode::NearestEven:
    RM = "NearestEven";
    break;
  case exec::RoundingMode::TowardZero:
    RM = "TowardZero";
    break;
  case exec::RoundingMode::Upward:
    RM = "Upward";
    break;
  case exec::RoundingMode::Downward:
    RM = "Downward";
    break;
  }
  return std::string(RM) + "_Budget" +
         std::to_string(std::get<1>(Info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllTiers, TierSweepTest,
    ::testing::Combine(
        ::testing::Values(exec::RoundingMode::NearestEven,
                          exec::RoundingMode::TowardZero,
                          exec::RoundingMode::Upward,
                          exec::RoundingMode::Downward),
        ::testing::Values(1ull, 9ull, 150ull, 2'000'000ull)),
    tierSweepName);

//===----------------------------------------------------------------------===//
// Weak-distance and search-level equivalence
//===----------------------------------------------------------------------===//

const char *QuickstartIr = R"(
module "quickstart"
func @prog(%x: double) -> double {
entry:
  %xs = alloca double
  store %xs, %x
  %c1 = fcmp.le %x, 1.0
  condbr %c1, inc, mid
inc:
  %x1 = fadd %x, 1.0
  store %xs, %x1
  br mid
mid:
  %xv = load %xs
  %y = fmul %xv, %xv
  %c2 = fcmp.le %y, 4.0
  condbr %c2, dec, done
dec:
  %x2 = fsub %xv, 1.0
  store %xs, %x2
  br done
done:
  %r = load %xs
  ret %r
}
)";

TEST(VMEquivalenceTest, WeakDistanceValuesMatchBitForBit) {
  auto Parsed = ir::parseModule(QuickstartIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  analyses::BoundaryAnalysis BVA(M, *M.functionByName("prog"));
  ASSERT_EQ(BVA.executionTier().Effective, vm::EngineKind::VM);

  auto VMEval = BVA.factory().make();
  RNG Rand(0xd1ff);
  for (unsigned K = 0; K < 500; ++K) {
    std::vector<double> X = drawInput(Rand, 1);
    double WI = BVA.weak()(X); // Driver-side interpreter evaluator.
    double WV = (*VMEval)(X);
    EXPECT_EQ(bitsOf(WI), bitsOf(WV)) << X[0];
  }
}

TEST(VMEquivalenceTest, BoundarySearchIdenticalAcrossEngines) {
  auto Run = [&](vm::EngineKind Engine) {
    auto Parsed = ir::parseModule(QuickstartIr);
    EXPECT_TRUE(Parsed.hasValue());
    ir::Module &M = **Parsed;
    analyses::BoundaryAnalysis BVA(M, *M.functionByName("prog"),
                                   instr::BoundaryForm::Product, Engine);
    opt::BasinHopping Backend;
    core::ReductionOptions Opts;
    Opts.Seed = 2019;
    Opts.MaxEvals = 40'000;
    return BVA.findOne(Backend, Opts);
  };
  core::ReductionResult RI = Run(vm::EngineKind::Interp);
  core::ReductionResult RV = Run(vm::EngineKind::VM);
  EXPECT_EQ(RI.Found, RV.Found);
  EXPECT_EQ(RI.Witness, RV.Witness);
  EXPECT_EQ(RI.Evals, RV.Evals);
  EXPECT_EQ(RI.StartsUsed, RV.StartsUsed);
  EXPECT_EQ(bitsOf(RI.WStar), bitsOf(RV.WStar));
  EXPECT_EQ(RI.UnsoundCandidates, RV.UnsoundCandidates);
}

TEST(VMEquivalenceTest, OverflowRoundsIdenticalAcrossEngines) {
  auto Run = [&](vm::EngineKind Engine) {
    ir::Module M;
    gsl::SfFunction Bessel = gsl::buildBesselKnuScaledAsympx(M);
    analyses::OverflowDetector Det(M, *Bessel.F,
                                   instr::OverflowMetric::UlpGap, Engine);
    analyses::OverflowDetector::Options Opts;
    Opts.Seed = 0xbe55;
    Opts.EvalsPerRound = 2'000;
    Opts.MaxRounds = 4;
    return Det.run(Opts);
  };
  analyses::OverflowReport RI = Run(vm::EngineKind::Interp);
  analyses::OverflowReport RV = Run(vm::EngineKind::VM);
  EXPECT_EQ(RI.Evals, RV.Evals);
  ASSERT_EQ(RI.Findings.size(), RV.Findings.size());
  for (size_t K = 0; K < RI.Findings.size(); ++K) {
    EXPECT_EQ(RI.Findings[K].SiteId, RV.Findings[K].SiteId);
    EXPECT_EQ(RI.Findings[K].Found, RV.Findings[K].Found);
    EXPECT_EQ(RI.Findings[K].Input, RV.Findings[K].Input);
  }
}

//===----------------------------------------------------------------------===//
// Fallback
//===----------------------------------------------------------------------===//

TEST(VMFallbackTest, TinyLimitsRejectAndFallBack) {
  auto Parsed = ir::parseModule(QuickstartIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  ir::Function *F = M.functionByName("prog");

  vm::Limits Tiny;
  Tiny.MaxRegs = 2;
  vm::CompiledModule CM = vm::compile(M, Tiny);
  const vm::CompiledFunction *CF = CM.lookup(F);
  ASSERT_NE(CF, nullptr);
  EXPECT_FALSE(CF->Ok);
  EXPECT_FALSE(CF->RejectReason.empty());

  // The drop-in factory mints working interpreter evaluators instead.
  instr::BoundaryInstrumentation BI = instr::instrumentBoundary(*F);
  exec::Engine E(M);
  exec::ExecContext Parent(M);
  vm::VMWeakDistanceFactory Factory(E, BI.Wrapped, BI.W, BI.WInit, Parent,
                                    {}, Tiny);
  EXPECT_FALSE(Factory.usingVM());
  EXPECT_FALSE(Factory.fallbackReason().empty());

  auto Eval = Factory.make();
  instr::IRWeakDistance Direct(E, BI.Wrapped, BI.W, BI.WInit, Parent);
  for (double X : {-3.0, 0.5, 1.0, 2.0, 1e300})
    EXPECT_EQ(bitsOf(Direct({X})), bitsOf((*Eval)({X})));

  // And the bundle reports the fallback for the api layer.
  vm::FactoryBundle Bundle = vm::makeWeakDistanceFactory(
      vm::EngineKind::VM, E, BI.Wrapped, BI.W, BI.WInit, Parent, {}, Tiny);
  EXPECT_EQ(Bundle.Effective, vm::EngineKind::Interp);
  EXPECT_FALSE(Bundle.FallbackReason.empty());
}

TEST(VMFallbackTest, CallersOfRejectedCalleesFallBackToo) {
  ir::Module M("transitive");
  ir::IRBuilder B(M);

  ir::Function *Big = M.addFunction("big", ir::Type::Double);
  ir::Argument *BA = Big->addArg(ir::Type::Double, "x");
  B.setInsertAppend(Big->addBlock("entry"));
  ir::Value *Acc = BA;
  for (int K = 0; K < 40; ++K)
    Acc = B.fadd(Acc, B.lit(static_cast<double>(K)));
  B.ret(Acc);

  ir::Function *Caller = M.addFunction("caller", ir::Type::Double);
  ir::Argument *CA = Caller->addArg(ir::Type::Double, "x");
  B.setInsertAppend(Caller->addBlock("entry"));
  B.ret(B.call(Big, {CA}));

  vm::Limits Tiny;
  Tiny.MaxRegs = 30; // Rejects big (needs > 30 regs), fits caller.
  vm::CompiledModule CM = vm::compile(M, Tiny);
  EXPECT_FALSE(CM.lookup(Big)->Ok);
  EXPECT_FALSE(CM.lookup(Caller)->Ok);
  EXPECT_NE(CM.lookup(Caller)->RejectReason.find("big"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// JIT tier: equivalence and fallback
//===----------------------------------------------------------------------===//

TEST(JITEquivalenceTest, WeakDistanceValuesMatchBitForBit) {
  auto Parsed = ir::parseModule(QuickstartIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  ir::Function *F = M.functionByName("prog");
  instr::BoundaryInstrumentation BI = instr::instrumentBoundary(*F);
  exec::Engine E(M);
  exec::ExecContext Parent(M);

  // Whether native code runs or the chain degrades, minted evaluators
  // must agree with the interpreter bit for bit.
  jit::JITWeakDistanceFactory Factory(E, BI.Wrapped, BI.W, BI.WInit,
                                      Parent);
  EXPECT_EQ(Factory.usingJIT(), jit::available())
      << Factory.fallbackReason();
  auto Eval = Factory.make();
  instr::IRWeakDistance Direct(E, BI.Wrapped, BI.W, BI.WInit, Parent);
  RNG Rand(0x717);
  for (unsigned K = 0; K < 500; ++K) {
    std::vector<double> X = drawInput(Rand, 1);
    EXPECT_EQ(bitsOf(Direct(X)), bitsOf((*Eval)(X))) << X[0];
  }
}

TEST(JITEquivalenceTest, BatchEvaluationMatchesScalar) {
  auto Parsed = ir::parseModule(QuickstartIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  instr::BoundaryInstrumentation BI =
      instr::instrumentBoundary(*M.functionByName("prog"));
  exec::Engine E(M);
  exec::ExecContext Parent(M);
  jit::JITWeakDistanceFactory Factory(E, BI.Wrapped, BI.W, BI.WInit,
                                      Parent);
  auto Scalar = Factory.make();
  auto Batched = Factory.make();
  RNG Rand(0xba7c);
  constexpr std::size_t K = 24;
  std::vector<double> Xs(K), Want(K), Got(K);
  for (std::size_t L = 0; L < K; ++L) {
    Xs[L] = drawInput(Rand, 1)[0];
    Want[L] = (*Scalar)({Xs[L]});
  }
  Batched->evalBatch(Xs.data(), K, Got.data());
  for (std::size_t L = 0; L < K; ++L)
    EXPECT_EQ(bitsOf(Want[L]), bitsOf(Got[L])) << Xs[L];
}

TEST(JITFallbackTest, TinyCodeLimitRejectsAndFallsBackToVM) {
  auto Parsed = ir::parseModule(QuickstartIr);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error();
  ir::Module &M = **Parsed;
  ir::Function *F = M.functionByName("prog");
  instr::BoundaryInstrumentation BI = instr::instrumentBoundary(*F);
  exec::Engine E(M);
  exec::ExecContext Parent(M);

  jit::Limits TinyJ;
  TinyJ.MaxCodeBytes = 16; // No function fits in 16 bytes.
  jit::JITWeakDistanceFactory Factory(E, BI.Wrapped, BI.W, BI.WInit,
                                      Parent, {}, {}, TinyJ);
  EXPECT_FALSE(Factory.usingJIT());
  EXPECT_FALSE(Factory.fallbackReason().empty());
  EXPECT_TRUE(Factory.vmFallback().usingVM());

  // The minted (VM-backed) evaluators still agree with the interpreter.
  auto Eval = Factory.make();
  instr::IRWeakDistance Direct(E, BI.Wrapped, BI.W, BI.WInit, Parent);
  for (double X : {-3.0, 0.5, 1.0, 2.0, 1e300})
    EXPECT_EQ(bitsOf(Direct({X})), bitsOf((*Eval)({X})));

  // With default limits the bundle reports whatever this host supports:
  // the JIT where available, the VM (with a reason) elsewhere.
  vm::FactoryBundle Bundle = vm::makeWeakDistanceFactory(
      vm::EngineKind::JIT, E, BI.Wrapped, BI.W, BI.WInit, Parent);
  EXPECT_EQ(Bundle.Requested, vm::EngineKind::JIT);
  if (jit::available()) {
    EXPECT_EQ(Bundle.Effective, vm::EngineKind::JIT);
    EXPECT_TRUE(Bundle.FallbackReason.empty()) << Bundle.FallbackReason;
  } else {
    EXPECT_EQ(Bundle.Effective, vm::EngineKind::VM);
    EXPECT_FALSE(Bundle.FallbackReason.empty());
  }
}

TEST(JITFallbackTest, CallersOfRejectedCalleesFallBackToo) {
  if (!jit::available())
    GTEST_SKIP() << "native tier unavailable on this host";
  ir::Module M("transitive");
  ir::IRBuilder B(M);

  ir::Function *Big = M.addFunction("big", ir::Type::Double);
  ir::Argument *BA = Big->addArg(ir::Type::Double, "x");
  B.setInsertAppend(Big->addBlock("entry"));
  ir::Value *Acc = BA;
  for (int K = 0; K < 200; ++K)
    Acc = B.fadd(Acc, B.lit(static_cast<double>(K)));
  B.ret(Acc);

  ir::Function *Caller = M.addFunction("caller", ir::Type::Double);
  ir::Argument *CA = Caller->addArg(ir::Type::Double, "x");
  B.setInsertAppend(Caller->addBlock("entry"));
  B.ret(B.call(Big, {CA}));

  vm::CompiledModule CM = vm::compile(M);
  ASSERT_TRUE(CM.lookup(Big)->Ok);
  ASSERT_TRUE(CM.lookup(Caller)->Ok);

  // Size the native-code budget so big's 200 fadd fragments bust it
  // while caller's call+ret stub would fit on its own: the rejection
  // must still spread to the caller (no mixed native/VM call chains).
  jit::Limits TinyJ;
  TinyJ.MaxCodeBytes = 1024;
  jit::CompiledModule JM = jit::compile(CM, TinyJ);
  EXPECT_FALSE(JM.lookup(Big)->Ok);
  ASSERT_NE(JM.lookup(Caller), nullptr);
  EXPECT_FALSE(JM.lookup(Caller)->Ok);
  EXPECT_NE(JM.lookup(Caller)->RejectReason.find("big"),
            std::string::npos)
      << JM.lookup(Caller)->RejectReason;
}

TEST(JITFallbackTest, EngineNamesForErrorsListAvailability) {
  std::string Names = jit::engineNamesForErrors();
  EXPECT_NE(Names.find("'interp'"), std::string::npos);
  EXPECT_NE(Names.find("'vm'"), std::string::npos);
  EXPECT_NE(Names.find("'jit'"), std::string::npos);
  EXPECT_EQ(Names.find("unavailable") == std::string::npos,
            jit::available());
}

} // namespace
