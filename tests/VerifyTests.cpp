//===--- VerifyTests.cpp - Bytecode verifier tests -----------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
// vm::verifyBytecode certifies what the VM dispatch loop assumes without
// checking: register indices in range, branch targets on instruction
// leaders, fusion carriers intact, frame layout matching the source
// signature. Valid lowerings — builtins and randomized modules — must
// pass; single-field corruptions of each invariant must be caught.
//
//===----------------------------------------------------------------------===//

#include "api/Subjects.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/RNG.h"
#include "vm/Lowering.h"
#include "vm/Verify.h"

#include <gtest/gtest.h>

#include "RandomModule.h"

using namespace wdm;

namespace {

/// A deterministic module exercising every opcode family the corruption
/// tests poke at: arithmetic, a fusable compare+branch, calls, jumps,
/// global loads/stores, and a double return.
vm::CompiledModule lowerFixture(ir::Module &M) {
  ir::IRBuilder B(M);
  ir::GlobalVar *GD = M.addGlobalDouble("gd", 0.0);

  ir::Function *H = M.addFunction("h", ir::Type::Double);
  ir::Argument *HA = H->addArg(ir::Type::Double, "a");
  B.setInsertAppend(H->addBlock("entry"));
  B.ret(B.fmul(HA, B.lit(2.0)));

  ir::Function *F = M.addFunction("f", ir::Type::Double);
  ir::Argument *X = F->addArg(ir::Type::Double, "x");
  ir::BasicBlock *Entry = F->addBlock("entry");
  ir::BasicBlock *BT = F->addBlock("bt");
  ir::BasicBlock *BE = F->addBlock("be");
  ir::BasicBlock *BJ = F->addBlock("bj");
  B.setInsertAppend(Entry);
  ir::Instruction *C = B.fcmp(ir::CmpPred::LT, X, B.lit(5.0));
  B.condbr(C, BT, BE);
  B.setInsertAppend(BT);
  ir::Instruction *V = B.fadd(X, B.lit(1.0));
  B.storeg(GD, V);
  B.storeg(GD, B.call(H, {X}));
  B.br(BJ);
  B.setInsertAppend(BE);
  B.storeg(GD, X);
  B.br(BJ);
  B.setInsertAppend(BJ);
  B.ret(B.loadg(GD));

  Status S = ir::verifyModule(M);
  EXPECT_TRUE(S.ok()) << S.message();
  return vm::compile(M);
}

/// Index of a CompiledFunction with at least one instruction of \p Opc;
/// SIZE_MAX when absent.
size_t findWith(const vm::CompiledModule &CM, vm::Op Opc, size_t &Pc) {
  for (size_t F = 0; F < CM.Functions.size(); ++F) {
    const vm::CompiledFunction &CF = CM.Functions[F];
    if (!CF.Ok)
      continue;
    for (size_t I = 0; I < CF.Code.size(); ++I)
      if (CF.Code[I].Opc == Opc) {
        Pc = I;
        return F;
      }
  }
  return SIZE_MAX;
}

TEST(BytecodeVerifierTest, EveryBuiltinSubjectVerifies) {
  for (const api::BuiltinInfo &Info : api::builtinSubjects()) {
    ir::Module M(Info.Name);
    auto Sub = api::buildBuiltinSubject(M, Info.Name);
    ASSERT_TRUE(Sub.hasValue()) << Info.Name;
    vm::CompiledModule CM = vm::compile(M);
    Status S = vm::verifyBytecode(CM);
    EXPECT_TRUE(S.ok()) << Info.Name << ": " << S.message();
  }
}

TEST(BytecodeVerifierTest, RandomModulesVerify) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    ir::Module M("vrand" + std::to_string(Seed));
    RNG Rand(Seed * 0xc0de);
    testutil::buildRandomModule(M, Rand);
    vm::CompiledModule CM = vm::compile(M);
    Status S = vm::verifyBytecode(CM);
    EXPECT_TRUE(S.ok()) << "seed " << Seed << ": " << S.message();
  }
}

TEST(BytecodeVerifierTest, RejectedFunctionsAreSkipped) {
  ir::Module M("tiny");
  RNG Rand(0x5eed);
  testutil::buildRandomModule(M, Rand);
  vm::Limits Tiny;
  Tiny.MaxRegs = 2; // Rejects everything.
  vm::CompiledModule CM = vm::compile(M, Tiny);
  for (const vm::CompiledFunction &CF : CM.Functions)
    EXPECT_FALSE(CF.Ok);
  EXPECT_TRUE(vm::verifyBytecode(CM).ok());
}

TEST(BytecodeVerifierTest, FixtureVerifiesCleanly) {
  ir::Module M("fixture");
  vm::CompiledModule CM = lowerFixture(M);
  for (const vm::CompiledFunction &CF : CM.Functions)
    ASSERT_TRUE(CF.Ok) << CF.RejectReason;
  Status S = vm::verifyBytecode(CM);
  EXPECT_TRUE(S.ok()) << S.message();
}

TEST(BytecodeVerifierTest, CatchesOutOfRangeRegister) {
  ir::Module M("corrupt");
  vm::CompiledModule CM = lowerFixture(M);
  size_t Pc = 0;
  size_t F = findWith(CM, vm::Op::FAdd, Pc);
  ASSERT_NE(F, SIZE_MAX);
  CM.Functions[F].Code[Pc].A =
      static_cast<uint16_t>(CM.Functions[F].NumRegs);
  Status S = vm::verifyBytecode(CM);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.message().find("register"), std::string::npos)
      << S.message();
}

TEST(BytecodeVerifierTest, CatchesBranchToNonLeader) {
  ir::Module M("corrupt");
  vm::CompiledModule CM = lowerFixture(M);
  size_t Pc = 0;
  size_t F = findWith(CM, vm::Op::Jmp, Pc);
  ASSERT_NE(F, SIZE_MAX);
  vm::CompiledFunction &CF = CM.Functions[F];
  size_t AddPc = 0;
  ASSERT_EQ(findWith(CM, vm::Op::FAdd, AddPc), F);
  // The instruction after the fadd is mid-block: not a leader.
  CF.Code[Pc].Imm = static_cast<int32_t>(AddPc + 1);
  Status S = vm::verifyBytecode(CM);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.message().find("leader"), std::string::npos)
      << S.message();
}

TEST(BytecodeVerifierTest, CatchesBranchPastEnd) {
  ir::Module M("corrupt");
  vm::CompiledModule CM = lowerFixture(M);
  size_t Pc = 0;
  size_t F = findWith(CM, vm::Op::CondBr, Pc);
  ASSERT_NE(F, SIZE_MAX);
  CM.Functions[F].Code[Pc].Imm =
      static_cast<int32_t>(CM.Functions[F].Code.size());
  EXPECT_FALSE(vm::verifyBytecode(CM).ok());
}

TEST(BytecodeVerifierTest, CatchesWrongReturnOpcode) {
  ir::Module M("corrupt");
  vm::CompiledModule CM = lowerFixture(M);
  size_t Pc = 0;
  size_t F = findWith(CM, vm::Op::RetD, Pc);
  ASSERT_NE(F, SIZE_MAX);
  CM.Functions[F].Code[Pc].Opc = vm::Op::RetI;
  Status S = vm::verifyBytecode(CM);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.message().find("return"), std::string::npos) << S.message();
}

TEST(BytecodeVerifierTest, CatchesFrameAccountingMismatch) {
  ir::Module M("corrupt");
  vm::CompiledModule CM = lowerFixture(M);
  for (vm::CompiledFunction &CF : CM.Functions)
    if (CF.Ok) {
      ++CF.NumConsts; // ConstBits no longer matches.
      break;
    }
  EXPECT_FALSE(vm::verifyBytecode(CM).ok());
}

TEST(BytecodeVerifierTest, CatchesBadGlobalSlot) {
  ir::Module M("corrupt");
  vm::CompiledModule CM = lowerFixture(M);
  size_t Pc = 0;
  size_t F = findWith(CM, vm::Op::GStoreD, Pc);
  if (F == SIZE_MAX)
    F = findWith(CM, vm::Op::FusedGRmwD, Pc);
  ASSERT_NE(F, SIZE_MAX);
  CM.Functions[F].Code[Pc].Imm = 1000;
  Status S = vm::verifyBytecode(CM);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.message().find("global"), std::string::npos) << S.message();
}

TEST(BytecodeVerifierTest, CatchesBrokenFusedCmpCarrier) {
  ir::Module M("corrupt");
  vm::CompiledModule CM = lowerFixture(M);
  size_t Pc = 0;
  size_t F = findWith(CM, vm::Op::FusedFCmpBr, Pc);
  ASSERT_NE(F, SIZE_MAX); // fcmp immediately feeding condbr must fuse.
  // Break the carrier: the CondBr at pc+1 must read the fused result.
  vm::CompiledFunction &CF = CM.Functions[F];
  CF.Code[Pc + 1].A = static_cast<uint16_t>(CF.Code[Pc].Dest + 1);
  EXPECT_FALSE(vm::verifyBytecode(CM).ok());
}

TEST(BytecodeVerifierTest, CatchesBadCallIndex) {
  ir::Module M("corrupt");
  vm::CompiledModule CM = lowerFixture(M);
  size_t Pc = 0;
  size_t F = findWith(CM, vm::Op::Call, Pc);
  ASSERT_NE(F, SIZE_MAX);
  CM.Functions[F].Code[Pc].Imm2 =
      static_cast<uint16_t>(CM.Functions.size());
  EXPECT_FALSE(vm::verifyBytecode(CM).ok());
}

} // namespace
