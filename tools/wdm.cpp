//===--- wdm.cpp - The wdm command-line driver ----------------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
// One binary over the whole declarative surface:
//
//   wdm tasks [--json]             list task kinds, backends, builtins
//   wdm run spec.json [--json o]   run a JSON AnalysisSpec
//   wdm analyze --task=overflow --builtin=bessel --threads=4 [--json o]
//   wdm analyze --task=boundary --func=f file.wir
//   wdm suite run suite.json --shards=4 --mode=subprocess --resume
//   wdm suite expand suite.json    print the expanded job list
//   wdm run-job <spec.json | ->    internal suite worker (report on stdout)
//
// $WDM_STARTS / $WDM_THREADS / $WDM_SEED override the spec's search
// config (the shared SearchConfig::applyEnv policy), and explicit flags
// override both. run-job executes its spec verbatim — the suite driver
// already folded the env knobs into the canonical job specs.
//
// Exit-code contract, shared by `run`, `run-job`, and `suite run`:
//   0  ran clean, no findings
//   1  findings were produced (witnesses, overflows, tests, models, ...)
//   2  usage, spec, or subject-resolution error
//   3  internal/execution error (crashed or failing suite worker, I/O)
//   4  interrupted (suite run only: SIGINT/SIGTERM stopped the suite
//      gracefully; the --ndjson log is a valid --resume checkpoint)
//
//===----------------------------------------------------------------------===//

#include "api/Analyzer.h"
#include "api/Backends.h"
#include "api/JobScheduler.h"
#include "api/Subjects.h"
#include "jit/JITWeakDistance.h"
#include "obs/Progress.h"
#include "obs/Telemetry.h"
#include "obs/Trace.h"
#include "serve/Client.h"
#include "serve/ResultCache.h"
#include "serve/Server.h"
#include "support/BuildInfo.h"
#include "support/FaultInject.h"
#include "support/StringUtils.h"
#include "vm/VMWeakDistance.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

using namespace wdm;
using namespace wdm::api;

namespace {

int usage() {
  std::cerr
      << "usage: wdm <command> [options]\n\n"
         "commands:\n"
         "  tasks [--json]             list task kinds, backends, and "
         "builtin subjects\n"
         "  run <spec.json> [--json <out.json>]\n"
         "                             run one JSON analysis spec\n"
         "  analyze --task=<kind> [subject] [options] [file.wir]\n"
         "                             build a spec from flags and run "
         "it\n"
         "  suite run <suite.json> [suite options]\n"
         "                             run a suite of jobs (see below)\n"
         "  suite expand <suite.json>  print the expanded job list as "
         "NDJSON\n"
         "  run-job <spec.json | ->    internal suite worker: spec in, "
         "report JSON on stdout\n"
         "  serve [serve options]      run the analysis daemon (HTTP, "
         "result cache, warm state)\n"
         "  submit <spec.json | -> --server=<host:port>\n"
         "                             run one spec on a daemon (same "
         "exit codes as run)\n"
         "  cache stats|clear --cache-dir=<dir>\n"
         "                             inspect / empty a daemon's "
         "on-disk result cache\n"
         "  version [--json]           build provenance (git describe, "
         "compiler, flags)\n\n"
         "analyze subject (one of):\n"
         "  <file.wir>                 positional or --module=<file>: "
         "textual IR file\n"
         "  --builtin=<name>           builtin subject (see `wdm "
         "tasks`)\n"
         "  --constraint=<sexpr>       fpsat constraint text\n\n"
         "analyze options:\n"
         "  --func=<name>              subject function (default: the "
         "module's only one)\n"
         "  --evals=<n> --starts=<n> --seed=<n> --threads=<n>\n"
         "  --batch=<n>                evaluation block size (0 = auto: "
         "vm 32, interp 8)\n"
         "  --backends=<a,b,...>       portfolio by name\n"
         "  --engine=<e>               execution tier: vm (default) | "
         "interp | jit\n"
         "  --prune=<m>                static pre-pass: off (default) | "
         "sites | sites+box\n"
         "  --path=<leg,leg,...>       path legs, e.g. 0:taken,1:not\n"
         "  --boundary-form=<f>        product|min|minulp\n"
         "  --overflow-metric=<m>      ulpgap|absgap\n"
         "  --nfp=<n>                  overflow: max Algorithm 3 rounds\n"
         "  --json <out.json>          also write the report as JSON\n\n"
         "serve options:\n"
         "  --host=<ip> --port=<n>     bind address (default 127.0.0.1, "
         "port 0 = ephemeral)\n"
         "  --threads=<n>              request workers (0 = min(4, hw "
         "threads))\n"
         "  --cache-dir=<dir>          persistent result cache (default: "
         "memory only)\n"
         "  --cache-capacity=<n>       in-memory result entries (default "
         "256)\n"
         "  --warm-capacity=<n>        warm module entries (default 64)\n"
         "  --no-warm                  disable the warm execution cache\n"
         "  --state-dir=<dir>          suite job event logs (default: "
         "cache dir)\n"
         "  --shards=<n>               shards for POSTed suites (0 = "
         "hardware)\n"
         "  --max-body=<bytes>         request body cap (default 8 MiB)\n\n"
         "suite options:\n"
         "  --shards=<n>               concurrent jobs (0 = one per "
         "hardware thread)\n"
         "  --mode=<m>                 inprocess (default) | subprocess "
         "| dry\n"
         "  --dispatch=<d>             steal (default: work-stealing "
         "deques) | roundrobin\n"
         "  --ndjson <log.ndjson>      stream events (doubles as the "
         "checkpoint)\n"
         "  --resume                   skip jobs already finished in "
         "the --ndjson log\n"
         "  --json <out.json>          write the aggregate SuiteReport\n"
         "  --worker <exe>             subprocess worker binary "
         "(default: this wdm)\n"
         "  --progress                 stream job_progress heartbeats + "
         "live status line\n"
         "  --progress-every=<sec>     heartbeat period (default 2)\n\n"
         "suite fault tolerance (CLI flags override the suite's "
         "\"limits\" section):\n"
         "  --timeout=<sec>            per-job wall-clock deadline "
         "(subprocess mode)\n"
         "  --stall-timeout=<sec>      kill a worker with no "
         "output/heartbeat for N sec\n"
         "  --retries=<n>              extra attempts for "
         "failed/timed-out/stalled jobs\n"
         "  --backoff=<sec>            base retry delay; exponential "
         "with jitter (default 0.5)\n"
         "  --mem-limit=<mb>           child RLIMIT_AS (subprocess "
         "mode)\n"
         "  --cpu-limit=<sec>          child RLIMIT_CPU (subprocess "
         "mode)\n"
         "  --max-failures=<n>         abort the suite after N "
         "failed/quarantined jobs\n"
         "  --grace=<sec>              SIGTERM-to-SIGKILL escalation "
         "window (default 2)\n\n"
         "observability (run, analyze, run-job, suite run):\n"
         "  --trace=<out.json>         write Chrome trace-event JSON "
         "(phase spans; open in Perfetto)\n"
         "  --metrics                  collect telemetry counters; the "
         "report gains a \"metrics\" section\n\n"
         "exit codes (run, run-job, suite run):\n"
         "  0 = ran clean, no findings   1 = findings produced\n"
         "  2 = usage/spec error         3 = internal/worker error\n"
         "  4 = interrupted (suite run: stopped by SIGINT/SIGTERM; "
         "--ndjson log resumes)\n";
  return 2;
}

int fail(const std::string &Msg) {
  std::cerr << "wdm: " << Msg << "\n";
  return 2;
}

/// The observability flags every executing command shares: --metrics
/// flips the telemetry registry on (the Report gains its "metrics"
/// section), --trace=<out.json> collects phase spans and writes Chrome
/// trace-event JSON (load in Perfetto / chrome://tracing). Both are off
/// by default; without them nothing observable changes.
struct ObsCli {
  std::string TracePath;
  bool Metrics = false;
  /// run-job sets this: its stdout is the machine seam, so the human
  /// "trace written" note must not land there.
  bool Quiet = false;

  /// Consumes --trace=<path> / --metrics; false when \p A is not ours.
  bool consume(const std::string &Key, const std::string &Val,
               const std::string &A) {
    if (Key == "--trace" && !Val.empty()) {
      TracePath = Val;
      return true;
    }
    if (A == "--metrics") {
      Metrics = true;
      return true;
    }
    return false;
  }

  void begin() {
    if (Metrics)
      obs::setEnabled(true);
    if (!TracePath.empty())
      obs::startTrace();
  }

  /// Finalizes collection; returns \p Rc, or 3 when the trace file
  /// cannot be written.
  int end(int Rc) {
    if (TracePath.empty())
      return Rc;
    obs::stopTrace();
    if (!obs::writeTrace(TracePath)) {
      std::cerr << "wdm: cannot write trace '" << TracePath << "'\n";
      return 3;
    }
    if (!Quiet)
      std::cout << "trace:     " << TracePath << "\n";
    return Rc;
  }
};

int cmdVersion(int Argc, char **Argv) {
  bool Json = false;
  for (int I = 0; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      Json = true;
    else
      return fail(std::string("unexpected argument '") + Argv[I] + "'");
  }
  const support::BuildInfo &B = support::buildInfo();
  if (Json) {
    std::cout << support::buildInfoJson().dump() << "\n";
    return 0;
  }
  std::cout << "wdm " << B.GitDescribe << " (" << B.BuildType << ")\n"
            << "compiler:  " << B.Compiler << "\n"
            << "flags:     " << (B.Flags.empty() ? "-" : B.Flags) << "\n";
  return 0;
}

/// The shared exit-code contract: findings drive the code, like a
/// linter — "success" of the task (witness found) means findings exist.
int exitCodeFor(const Report &R) { return R.Findings.empty() ? 0 : 1; }

Expected<std::string> readInput(const std::string &Path) {
  using E = Expected<std::string>;
  std::ostringstream Buf;
  if (Path == "-") {
    Buf << std::cin.rdbuf();
    return Buf.str();
  }
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return E::error("cannot open '" + Path + "'");
  Buf << In.rdbuf();
  return Buf.str();
}

void printReport(const Report &R) {
  std::cout << "task:      " << taskKindName(R.Task) << "\n"
            << "subject:   " << R.Function << "\n"
            << "result:    " << (R.Success ? "SUCCESS" : "not found")
            << "\n";
  if (!R.Success && R.WStar > 0)
    std::cout << "w*:        " << formatDouble(R.WStar)
              << " (smallest weak distance seen)\n";
  for (const Finding &F : R.Findings) {
    std::cout << "  [" << F.Kind << "]";
    if (F.SiteId >= 0)
      std::cout << " site #" << F.SiteId;
    if (!F.Input.empty()) {
      std::cout << " input = (";
      for (size_t I = 0; I < F.Input.size(); ++I)
        std::cout << (I ? ", " : "") << formatDouble(F.Input[I]);
      std::cout << ")";
    }
    if (!F.Description.empty())
      std::cout << "  " << F.Description;
    if (const json::Value *RC =
            F.Details.isObject() ? F.Details.find("root_cause") : nullptr)
      std::cout << "  — " << RC->asString();
    std::cout << "\n";
  }
  std::cout << "evals:     " << R.Evals << "\n";
  if (!R.Engine.empty()) {
    std::cout << "engine:    " << R.Engine;
    if (!R.EngineFallback.empty())
      std::cout << " (fallback: " << R.EngineFallback << ")";
    std::cout << "\n";
  }
  if (R.Static.Ran) {
    std::cout << "static:    mode=" << R.Static.Mode << ", pruned "
              << R.Static.SitesPruned << "/" << R.Static.SitesTotal
              << " sites (" << R.Static.SitesProvedSafe
              << " proved safe)";
    if (R.Static.BoxShrunk)
      std::cout << ", box [" << R.Static.BoxLo << ", " << R.Static.BoxHi
                << "]";
    std::cout << "\n";
  }
  std::cout << "seconds:   " << formatf("%.3f", R.Seconds) << "\n"
            << "threads:   " << R.ThreadsUsed << "\n";
  if (R.UnsoundCandidates)
    std::cout << "unsound:   " << R.UnsoundCandidates
              << " candidate zeros rejected by verification\n";
}

int finish(const AnalysisSpec &Spec, const std::string &JsonOut) {
  Expected<Report> R = Analyzer::analyze(Spec);
  if (!R)
    return fail(R.error());
  printReport(*R);
  if (!JsonOut.empty()) {
    std::ofstream Out(JsonOut);
    if (!Out)
      return fail("cannot write '" + JsonOut + "'");
    Out << R->toJsonText();
    std::cout << "report:    " << JsonOut << "\n";
  }
  return exitCodeFor(*R);
}

int cmdTasks(int Argc, char **Argv) {
  bool Json = false;
  for (int I = 0; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      Json = true;
    else
      return fail(std::string("unexpected argument '") + Argv[I] + "'");
  }

  if (Json) {
    using json::Value;
    Value Doc = Value::object();
    Value Tasks = Value::array();
    for (TaskKind K :
         {TaskKind::Boundary, TaskKind::Path, TaskKind::Coverage,
          TaskKind::Overflow, TaskKind::Inconsistency, TaskKind::FpSat})
      Tasks.push(Value::string(taskKindName(K)));
    Doc.set("tasks", std::move(Tasks));
    Value Backends = Value::array();
    for (const std::string &B : backendNames())
      Backends.push(Value::string(B));
    Doc.set("backends", std::move(Backends));
    Value Engines = Value::array();
    Engines.push(Value::string("vm"));
    Engines.push(Value::string("interp"));
    Engines.push(Value::object()
                     .set("name", Value::string("jit"))
                     .set("available", Value::boolean(jit::available())));
    Doc.set("engines", std::move(Engines));
    Value Modes = Value::array();
    for (SuiteMode M :
         {SuiteMode::InProcess, SuiteMode::Subprocess, SuiteMode::Dry})
      Modes.push(Value::string(suiteModeName(M)));
    Doc.set("suite_modes", std::move(Modes));
    Value Builtins = Value::array();
    for (const BuiltinInfo &I : builtinSubjects())
      Builtins.push(Value::object()
                        .set("name", Value::string(I.Name))
                        .set("function", Value::string(I.Function))
                        .set("summary", Value::string(I.Summary)));
    Doc.set("builtins", std::move(Builtins));
    std::cout << Doc.dump() << "\n";
    return 0;
  }

  std::cout << "task kinds:\n";
  for (TaskKind K :
       {TaskKind::Boundary, TaskKind::Path, TaskKind::Coverage,
        TaskKind::Overflow, TaskKind::Inconsistency, TaskKind::FpSat})
    std::cout << "  " << taskKindName(K) << "\n";
  std::cout << "\nbackends:\n ";
  for (const std::string &B : backendNames())
    std::cout << " " << B;
  std::cout << "\n\nengines:\n"
               "  vm          compiled tier: bytecode + threaded-code VM "
               "(default)\n"
               "  interp      tree-walking interpreter (automatic "
               "fallback target)\n"
               "  jit         native tier: template-JIT x86-64 code ";
  std::cout << (jit::available() ? "(available)"
                                 : "(unavailable on this platform)")
            << "\n";
  std::cout << "\nbuiltin subjects:\n";
  for (const BuiltinInfo &I : builtinSubjects())
    std::cout << "  " << formatf("%-12s", I.Name) << I.Summary << "\n";
  return 0;
}

int cmdRun(int Argc, char **Argv) {
  std::string SpecPath, JsonOut;
  ObsCli Obs;
  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    std::string Key = A, Val;
    if (size_t Eq = A.find('=');
        startsWith(A, "--") && Eq != std::string::npos) {
      Key = A.substr(0, Eq);
      Val = A.substr(Eq + 1);
    }
    if (A == "--json") {
      if (I + 1 >= Argc || startsWith(Argv[I + 1], "--"))
        return fail("--json needs an output path");
      JsonOut = Argv[++I];
    } else if (startsWith(A, "--json=")) {
      JsonOut = A.substr(7);
    } else if (Obs.consume(Key, Val, A)) {
    } else if (!startsWith(A, "--") && SpecPath.empty()) {
      SpecPath = A;
    } else {
      return fail("unexpected argument '" + A + "'");
    }
  }
  if (SpecPath.empty())
    return usage();

  Expected<std::string> Text = readInput(SpecPath);
  if (!Text)
    return fail(Text.error());
  Expected<AnalysisSpec> Spec = AnalysisSpec::parse(*Text);
  if (!Spec)
    return fail(SpecPath + ": " + Spec.error());
  Spec->Search.applyEnv();
  Obs.begin();
  return Obs.end(finish(*Spec, JsonOut));
}

/// The suite worker: spec text in (file or stdin), report JSON out.
/// No env overlay — the driver canonicalized the spec already — and no
/// human-readable report: stdout is the machine seam.
int cmdRunJob(int Argc, char **Argv) {
  std::string SpecPath, JsonOut;
  ObsCli Obs;
  Obs.Quiet = true;
  double ProgressEvery = -1;
  size_t FaultJob = 0;
  unsigned FaultAttempt = 0; ///< 0 = no --fault-tag.
  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    std::string Key = A, Val;
    if (size_t Eq = A.find('=');
        startsWith(A, "--") && Eq != std::string::npos) {
      Key = A.substr(0, Eq);
      Val = A.substr(Eq + 1);
    }
    if (A == "--json") {
      if (I + 1 >= Argc || startsWith(Argv[I + 1], "--"))
        return fail("--json needs an output path");
      JsonOut = Argv[++I];
    } else if (startsWith(A, "--json=")) {
      JsonOut = A.substr(7);
    } else if (Key == "--progress-every") {
      char *End = nullptr;
      ProgressEvery = std::strtod(Val.c_str(), &End);
      if (Val.empty() || !End || *End || ProgressEvery < 0)
        return fail("bad --progress-every (seconds)");
    } else if (Key == "--fault-tag") {
      // Internal: "<job-index>.<attempt>", appended by the suite driver
      // whenever WDM_FAULT is set, so the child can look itself up in
      // the fault plan.
      size_t Dot = Val.find('.');
      char *E1 = nullptr, *E2 = nullptr;
      std::string JS = Val.substr(0, Dot);
      std::string AS = Dot == std::string::npos ? "" : Val.substr(Dot + 1);
      unsigned long long J = std::strtoull(JS.c_str(), &E1, 10);
      unsigned long AT = std::strtoul(AS.c_str(), &E2, 10);
      if (JS.empty() || AS.empty() || *E1 || *E2 || AT == 0)
        return fail("bad --fault-tag (expected <job>.<attempt>)");
      FaultJob = static_cast<size_t>(J);
      FaultAttempt = static_cast<unsigned>(AT);
    } else if (Obs.consume(Key, Val, A)) {
    } else if (SpecPath.empty() && (A == "-" || !startsWith(A, "--"))) {
      SpecPath = A;
    } else {
      return fail("unexpected argument '" + A + "'");
    }
  }
  if (SpecPath.empty())
    return usage();

  Expected<std::string> Text = readInput(SpecPath);
  if (!Text)
    return fail(Text.error());
  Expected<AnalysisSpec> Spec = AnalysisSpec::parse(*Text);
  if (!Spec)
    return fail(SpecPath + ": " + Spec.error());

  // Deterministic fault injection (tests/CI): when the driver tagged us
  // and WDM_FAULT names a fault for this (job, attempt), become that
  // fault — crash, hang, OOM, or a silent delay — as a real process.
  if (FaultAttempt && fault::enabled()) {
    Expected<std::vector<fault::Clause>> Plan =
        fault::parse(fault::envSpec());
    if (!Plan)
      return fail(Plan.error());
    if (std::optional<fault::Clause> C =
            fault::actionFor(*Plan, FaultJob, FaultAttempt))
      fault::injectChild(*C);
  }

  // Heartbeats for the suite driver: one job_progress NDJSON line per
  // period on stdout. The driver's poll loop peels event lines off the
  // stream; the report line below stays the protocol's payload.
  if (ProgressEvery >= 0)
    obs::setSearchListener(
        [ProgressEvery,
         Last = std::chrono::steady_clock::time_point()](
            const obs::SearchTick &T) mutable {
          auto Now = std::chrono::steady_clock::now();
          if (!T.Final &&
              Last != std::chrono::steady_clock::time_point() &&
              std::chrono::duration<double>(Now - Last).count() <
                  ProgressEvery)
            return;
          Last = Now;
          double Rate = T.Seconds > 0 ? T.Evals / T.Seconds : 0;
          std::cout << json::Value::object()
                           .set("event",
                                json::Value::string("job_progress"))
                           .set("evals", json::Value::number(T.Evals))
                           .set("best_w", json::Value::number(T.BestW))
                           .set("evals_per_sec",
                                json::Value::number(Rate))
                           .set("starts_done",
                                json::Value::number(T.StartsDone))
                           .set("starts", json::Value::number(T.Starts))
                           .dump()
                    << "\n"
                    << std::flush;
        });

  Obs.begin();
  Expected<Report> R = Analyzer::analyze(*Spec);
  obs::clearSearchListener();
  if (!R)
    return Obs.end(fail(R.error()));
  std::cout << R->toJsonText() << std::flush;
  if (!JsonOut.empty()) {
    std::ofstream Out(JsonOut);
    if (!Out) {
      std::cerr << "wdm: cannot write '" << JsonOut << "'\n";
      return Obs.end(3);
    }
    Out << R->toJsonText();
  }
  return Obs.end(exitCodeFor(*R));
}

void printSuiteReport(const SuiteReport &R) {
  if (!R.Suite.empty())
    std::cout << "suite:     " << R.Suite << "\n";
  std::cout << "mode:      " << R.Mode << " (shards: " << R.Shards
            << ")\n"
            << "jobs:      " << R.Jobs << "\n"
            << "executed:  " << R.Executed << "\n"
            << "skipped:   " << R.Skipped << "\n"
            << "failed:    " << R.Failed << "\n";
  if (R.Quarantined)
    std::cout << "quarantined: " << R.Quarantined << "\n";
  if (R.Interrupted)
    std::cout << "interrupted: " << R.Interrupted << "\n";
  std::cout << "findings:  " << R.Findings << "\n"
            << "evals:     " << R.Evals << "\n";
  if (R.Retries || R.Timeouts || R.Stalls)
    std::cout << "retries:   " << R.Retries << " (timeouts " << R.Timeouts
              << ", stalls " << R.Stalls << ")\n";
  std::cout << "seconds:   " << formatf("%.3f", R.Seconds)
            << " (job time " << formatf("%.3f", R.JobSeconds) << ")\n";
  if (!R.Stopped.empty())
    std::cout << "stopped:   " << R.Stopped
              << " (resume with --resume --ndjson <log>)\n";
  for (const SuiteReport::TaskStats &T : R.PerTask)
    std::cout << "  " << formatf("%-14s", T.Task.c_str()) << T.Jobs
              << " job(s), " << T.Succeeded << " succeeded, "
              << T.Findings << " finding(s), " << T.Evals << " evals, "
              << formatf("%.3fs", T.Seconds) << "\n";
  for (const JobResult &J : R.Results) {
    if (J.S == JobResult::State::Failed)
      std::cout << "  FAILED " << J.Id << " ("
                << taskKindName(J.Spec.Task) << " " << subjectText(J.Spec)
                << "): " << J.Error << "\n";
    else if (J.S == JobResult::State::Quarantined)
      std::cout << "  QUARANTINED " << J.Id << " ("
                << taskKindName(J.Spec.Task) << " " << subjectText(J.Spec)
                << ", " << J.Attempts.size() << " attempts): " << J.Error
                << "\n";
  }
}

int cmdSuite(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Sub = Argv[0];
  std::string SuitePath;
  SuiteRunOptions Opts;
  Opts.ApplyEnvOverrides = true;
  Opts.Progress = &std::cout;
  std::string JsonOut;
  ObsCli Obs;

  auto Uint = [](const std::string &V, uint64_t &Out) {
    char *End = nullptr;
    Out = std::strtoull(V.c_str(), &End, 0);
    return End && !*End && !V.empty();
  };

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    std::string Key = A, Val;
    if (size_t Eq = A.find('=');
        startsWith(A, "--") && Eq != std::string::npos) {
      Key = A.substr(0, Eq);
      Val = A.substr(Eq + 1);
    }
    uint64_t N = 0;
    if (Key == "--shards") {
      if (!Uint(Val, N))
        return fail("bad --shards");
      Opts.Shards = static_cast<unsigned>(N);
    } else if (Key == "--mode") {
      if (!suiteModeByName(Val, Opts.Mode))
        return fail("unknown mode '" + Val +
                    "' (expected inprocess|subprocess|dry)");
    } else if (Key == "--dispatch") {
      if (!suiteDispatchByName(Val, Opts.Dispatch))
        return fail("unknown dispatch '" + Val +
                    "' (expected steal|roundrobin)");
    } else if (A == "--resume") {
      Opts.Resume = true;
    } else if (A == "--ndjson") {
      if (I + 1 >= Argc || startsWith(Argv[I + 1], "--"))
        return fail("--ndjson needs an output path");
      Opts.EventLog = Argv[++I];
    } else if (Key == "--ndjson") {
      Opts.EventLog = Val;
    } else if (A == "--worker") {
      if (I + 1 >= Argc || startsWith(Argv[I + 1], "--"))
        return fail("--worker needs an executable path");
      Opts.WorkerExe = Argv[++I];
    } else if (Key == "--worker") {
      Opts.WorkerExe = Val;
    } else if (A == "--json") {
      if (I + 1 >= Argc || startsWith(Argv[I + 1], "--"))
        return fail("--json needs an output path");
      JsonOut = Argv[++I];
    } else if (Key == "--json") {
      JsonOut = Val;
    } else if (A == "--progress") {
      Opts.LiveProgress = true;
    } else if (Key == "--progress-every") {
      char *End = nullptr;
      double Sec = std::strtod(Val.c_str(), &End);
      if (Val.empty() || !End || *End || Sec < 0)
        return fail("bad --progress-every (seconds)");
      Opts.ProgressPeriodSec = Sec;
    } else if (Key == "--timeout" || Key == "--stall-timeout" ||
               Key == "--backoff" || Key == "--grace") {
      char *End = nullptr;
      double Sec = std::strtod(Val.c_str(), &End);
      if (Val.empty() || !End || *End || Sec < 0)
        return fail("bad " + Key + " (seconds)");
      if (Key == "--timeout")
        Opts.TimeoutSec = Sec;
      else if (Key == "--stall-timeout")
        Opts.StallTimeoutSec = Sec;
      else if (Key == "--backoff")
        Opts.BackoffSec = Sec;
      else
        Opts.GraceSec = Sec;
    } else if (Key == "--retries") {
      if (!Uint(Val, N))
        return fail("bad --retries");
      Opts.Retries = static_cast<unsigned>(N);
    } else if (Key == "--mem-limit") {
      if (!Uint(Val, N))
        return fail("bad --mem-limit (MiB)");
      Opts.MemLimitMb = static_cast<unsigned>(N);
    } else if (Key == "--cpu-limit") {
      if (!Uint(Val, N))
        return fail("bad --cpu-limit (seconds)");
      Opts.CpuLimitSec = static_cast<unsigned>(N);
    } else if (Key == "--max-failures") {
      if (!Uint(Val, N))
        return fail("bad --max-failures");
      Opts.MaxFailures = static_cast<unsigned>(N);
    } else if (Obs.consume(Key, Val, A)) {
    } else if (!startsWith(A, "--") && SuitePath.empty()) {
      SuitePath = A;
    } else {
      return fail("unexpected argument '" + A + "'");
    }
  }
  if (SuitePath.empty())
    return usage();

  Expected<std::string> Text = readInput(SuitePath);
  if (!Text)
    return fail(Text.error());
  Expected<SuiteSpec> Suite = SuiteSpec::parse(*Text);
  if (!Suite)
    return fail(SuitePath + ": " + Suite.error());

  if (Sub == "expand") {
    Expected<std::vector<SuiteJob>> Jobs = Suite->expand(true);
    if (!Jobs)
      return fail(Jobs.error());
    for (const SuiteJob &Job : *Jobs) {
      json::Value Line =
          json::Value::object()
              .set("job", json::Value::string(Job.Id))
              .set("index",
                   json::Value::number(static_cast<uint64_t>(Job.Index)));
      // Re-parse the canonical text so the printed spec is exactly what
      // a worker will receive.
      Line.set("spec", *json::Value::parse(Job.CanonicalSpec));
      std::cout << Line.dump() << "\n";
    }
    return 0;
  }
  if (Sub != "run")
    return fail("unknown suite subcommand '" + Sub +
                "' (try: run, expand)");

  if (Opts.Resume && Opts.EventLog.empty())
    return fail("--resume needs --ndjson <log> (the checkpoint)");

  // Ctrl-C / SIGTERM on the CLI driver = graceful shutdown: stop
  // dispatching, reap children, flush suite_interrupted, exit 4.
  Opts.HandleSignals = true;
  Obs.begin();
  Expected<SuiteReport> R =
      JobScheduler::execute(std::move(*Suite), std::move(Opts));
  if (!R)
    return Obs.end(fail(R.error()));

  bool Dry = R->Mode == suiteModeName(SuiteMode::Dry);
  if (Dry) {
    for (const JobResult &J : R->Results)
      std::cout << J.Id << "  " << taskKindName(J.Spec.Task) << "  "
                << subjectText(J.Spec)
                << (J.Spec.Search.Seed
                        ? "  seed=" + std::to_string(*J.Spec.Search.Seed)
                        : "")
                << "\n";
    std::cout << "jobs:      " << R->Jobs << " (dry run)\n";
  } else {
    printSuiteReport(*R);
  }
  if (!JsonOut.empty()) {
    std::ofstream Out(JsonOut);
    if (!Out) {
      std::cerr << "wdm: cannot write '" << JsonOut << "'\n";
      return Obs.end(3);
    }
    Out << R->toJsonText();
    std::cout << "report:    " << JsonOut << "\n";
  }
  return Obs.end(Dry ? 0 : R->exitCode());
}

int cmdServe(int Argc, char **Argv) {
  serve::ServerOptions SO;

  auto Uint = [](const std::string &V, uint64_t &Out) {
    char *End = nullptr;
    Out = std::strtoull(V.c_str(), &End, 0);
    return End && !*End && !V.empty();
  };

  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    std::string Key = A, Val;
    if (size_t Eq = A.find('=');
        startsWith(A, "--") && Eq != std::string::npos) {
      Key = A.substr(0, Eq);
      Val = A.substr(Eq + 1);
    }
    uint64_t N = 0;
    if (Key == "--host") {
      SO.Host = Val;
    } else if (Key == "--port") {
      if (!Uint(Val, N) || N > 65535)
        return fail("bad --port");
      SO.Port = static_cast<uint16_t>(N);
    } else if (Key == "--threads") {
      if (!Uint(Val, N))
        return fail("bad --threads");
      SO.Threads = static_cast<unsigned>(N);
    } else if (Key == "--max-connections") {
      if (!Uint(Val, N) || N == 0)
        return fail("bad --max-connections");
      SO.MaxConnections = static_cast<unsigned>(N);
    } else if (Key == "--cache-dir") {
      SO.CacheDir = Val;
    } else if (Key == "--cache-capacity") {
      if (!Uint(Val, N))
        return fail("bad --cache-capacity");
      SO.CacheCapacity = static_cast<size_t>(N);
    } else if (Key == "--warm-capacity") {
      if (!Uint(Val, N))
        return fail("bad --warm-capacity");
      SO.WarmCapacity = static_cast<size_t>(N);
    } else if (A == "--no-warm") {
      SO.Warm = false;
    } else if (Key == "--state-dir") {
      SO.StateDir = Val;
    } else if (Key == "--shards") {
      if (!Uint(Val, N))
        return fail("bad --shards");
      SO.SuiteShards = static_cast<unsigned>(N);
    } else if (Key == "--max-body") {
      if (!Uint(Val, N) || N == 0)
        return fail("bad --max-body (bytes)");
      SO.Limits.MaxBodyBytes = static_cast<size_t>(N);
    } else {
      return fail("unexpected argument '" + A + "'");
    }
  }

  serve::Server S(SO);
  Status St = S.serveForever([&](uint16_t Port) {
    // Parsed by scripts (tests, CI smoke) to discover an ephemeral port;
    // keep the format stable.
    std::cout << "listening on " << SO.Host << ":" << Port << "\n"
              << std::flush;
  });
  if (!St.ok())
    return fail(St.message());
  std::cout << "drained\n";
  return 0;
}

int cmdSubmit(int Argc, char **Argv) {
  std::string SpecPath, ServerSpec, JsonOut;
  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    std::string Key = A, Val;
    if (size_t Eq = A.find('=');
        startsWith(A, "--") && Eq != std::string::npos) {
      Key = A.substr(0, Eq);
      Val = A.substr(Eq + 1);
    }
    if (Key == "--server") {
      ServerSpec = Val;
    } else if (A == "--json") {
      if (I + 1 >= Argc || startsWith(Argv[I + 1], "--"))
        return fail("--json needs an output path");
      JsonOut = Argv[++I];
    } else if (Key == "--json") {
      JsonOut = Val;
    } else if (SpecPath.empty() && (A == "-" || !startsWith(A, "--"))) {
      SpecPath = A;
    } else {
      return fail("unexpected argument '" + A + "'");
    }
  }
  if (SpecPath.empty() || ServerSpec.empty())
    return usage();

  std::string Host;
  uint16_t Port = 0;
  if (!serve::parseHostPort(ServerSpec, Host, Port))
    return fail("bad --server '" + ServerSpec + "' (expected host:port)");

  Expected<std::string> Text = readInput(SpecPath);
  if (!Text)
    return fail(Text.error());

  Expected<serve::HttpResponse> Resp =
      serve::httpRequest(Host, Port, "POST", "/v1/run", *Text);
  if (!Resp) {
    std::cerr << "wdm: " << Resp.error() << "\n";
    return 3; // Could not reach / talk to the daemon: internal error.
  }
  Expected<json::Value> Doc = json::Value::parse(Resp->Body);
  if (Resp->Status != 200) {
    std::string Msg = "server answered " + std::to_string(Resp->Status);
    if (Doc && Doc->isObject())
      if (const json::Value *E = Doc->find("error"))
        Msg += ": " + E->asString();
    std::cerr << "wdm: " << Msg << "\n";
    return Resp->Status == 400 ? 2 : 3; // Spec errors keep the contract.
  }
  if (!Doc || !Doc->isObject())
    return fail("unparseable server response");
  const json::Value *Rep = Doc->find("report");
  if (!Rep)
    return fail("server response has no report");
  Expected<Report> R = Report::fromJson(*Rep);
  if (!R)
    return fail("bad report from server: " + R.error());

  const json::Value *Cached = Doc->find("cached");
  const json::Value *SpecHash = Doc->find("spec_hash");
  const json::Value *RepHash = Doc->find("report_hash");
  std::cout << "server:    " << Host << ":" << Port
            << (Cached && Cached->asBool() ? "  (cached)" : "") << "\n";
  if (SpecHash && RepHash)
    std::cout << "spec:      " << SpecHash->asString() << "\n"
              << "hash:      " << RepHash->asString() << "\n";
  printReport(*R);
  if (!JsonOut.empty()) {
    std::ofstream Out(JsonOut);
    if (!Out)
      return fail("cannot write '" + JsonOut + "'");
    Out << Rep->dump();
    std::cout << "report:    " << JsonOut << "\n";
  }
  return exitCodeFor(*R);
}

int cmdCache(int Argc, char **Argv) {
  if (Argc < 1)
    return usage();
  std::string Sub = Argv[0];
  std::string Dir;
  bool Json = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    std::string Key = A, Val;
    if (size_t Eq = A.find('=');
        startsWith(A, "--") && Eq != std::string::npos) {
      Key = A.substr(0, Eq);
      Val = A.substr(Eq + 1);
    }
    if (Key == "--cache-dir")
      Dir = Val;
    else if (A == "--json")
      Json = true;
    else
      return fail("unexpected argument '" + A + "'");
  }
  if (Dir.empty())
    return fail("cache " + Sub + " needs --cache-dir=<dir>");

  if (Sub == "stats") {
    uint64_t Entries = 0, Bytes = 0;
    Status St = serve::ResultCache::diskStats(Dir, Entries, Bytes);
    if (!St.ok())
      return fail(St.message());
    if (Json) {
      std::cout << json::Value::object()
                       .set("dir", json::Value::string(Dir))
                       .set("entries", json::Value::number(Entries))
                       .set("bytes", json::Value::number(Bytes))
                       .dump()
                << "\n";
    } else {
      std::cout << "cache:     " << Dir << "\n"
                << "entries:   " << Entries << "\n"
                << "bytes:     " << Bytes << "\n";
    }
    return 0;
  }
  if (Sub == "clear") {
    uint64_t Removed = 0;
    Status St = serve::ResultCache::diskClear(Dir, Removed);
    if (!St.ok())
      return fail(St.message());
    std::cout << "removed:   " << Removed << "\n";
    return 0;
  }
  return fail("unknown cache subcommand '" + Sub + "' (try: stats, clear)");
}

bool parsePathLegs(const std::string &Text,
                   std::vector<PathLegSpec> &Out) {
  for (const std::string &Leg : splitString(Text, ',')) {
    std::vector<std::string> Parts = splitString(Leg, ':');
    if (Parts.empty() || Parts.size() > 2 || Parts[0].empty())
      return false;
    char *End = nullptr;
    unsigned long Branch = std::strtoul(Parts[0].c_str(), &End, 10);
    if (!End || *End)
      return false;
    bool Taken = true;
    if (Parts.size() == 2) {
      if (Parts[1] == "taken")
        Taken = true;
      else if (Parts[1] == "not")
        Taken = false;
      else
        return false;
    }
    Out.push_back({static_cast<unsigned>(Branch), Taken});
  }
  return !Out.empty();
}

int cmdAnalyze(int Argc, char **Argv) {
  AnalysisSpec Spec;
  Spec.Search.applyEnv(); // Flags below override the env knobs.
  std::string JsonOut;
  bool HaveTask = false;
  ObsCli Obs;

  auto Uint = [](const std::string &V, uint64_t &Out) {
    char *End = nullptr;
    Out = std::strtoull(V.c_str(), &End, 0);
    return End && !*End && !V.empty();
  };

  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    std::string Key = A, Val;
    if (size_t Eq = A.find('='); startsWith(A, "--") && Eq != std::string::npos) {
      Key = A.substr(0, Eq);
      Val = A.substr(Eq + 1);
    }
    uint64_t N = 0;
    if (Key == "--task") {
      if (!taskKindByName(Val, Spec.Task))
        return fail("unknown task '" + Val + "'");
      HaveTask = true;
    } else if (Key == "--module") {
      Spec.Module = ModuleSource::file(Val);
    } else if (Key == "--builtin") {
      Spec.Module = ModuleSource::builtin(Val);
    } else if (Key == "--constraint") {
      Spec.Constraint = Val;
    } else if (Key == "--func") {
      Spec.Function = Val;
    } else if (Key == "--evals") {
      if (!Uint(Val, N))
        return fail("bad --evals");
      Spec.Search.MaxEvals = N;
    } else if (Key == "--starts") {
      if (!Uint(Val, N))
        return fail("bad --starts");
      Spec.Search.Starts = static_cast<unsigned>(N);
    } else if (Key == "--seed") {
      if (!Uint(Val, N))
        return fail("bad --seed");
      Spec.Search.Seed = N;
    } else if (Key == "--threads") {
      if (!Uint(Val, N))
        return fail("bad --threads");
      Spec.Search.Threads = static_cast<unsigned>(N);
    } else if (Key == "--batch") {
      if (!Uint(Val, N))
        return fail("bad --batch");
      Spec.Search.Batch = static_cast<unsigned>(N);
    } else if (Key == "--backends") {
      for (const std::string &B : splitString(Val, ','))
        Spec.Search.Backends.push_back(B);
    } else if (Key == "--engine") {
      vm::EngineKind EK;
      if (!vm::engineKindByName(Val, EK))
        return fail("bad --engine '" + Val + "': must be one of " +
                    jit::engineNamesForErrors());
      Spec.Search.Engine = Val;
    } else if (Key == "--prune") {
      PruneMode PM;
      if (!pruneModeByName(Val, PM))
        return fail("bad --prune '" + Val +
                    "': must be one of off|sites|sites+box");
      Spec.Search.Prune = Val;
    } else if (Key == "--path") {
      if (!parsePathLegs(Val, Spec.Path))
        return fail("bad --path (expected e.g. 0:taken,1:not)");
    } else if (Key == "--boundary-form") {
      Spec.BoundaryForm = Val;
    } else if (Key == "--overflow-metric") {
      Spec.OverflowMetric = Val;
    } else if (Key == "--nfp") {
      if (!Uint(Val, N))
        return fail("bad --nfp");
      Spec.NFP = static_cast<unsigned>(N);
    } else if (A == "--json") {
      if (I + 1 >= Argc || startsWith(Argv[I + 1], "--"))
        return fail("--json needs an output path");
      JsonOut = Argv[++I];
    } else if (Key == "--json") {
      JsonOut = Val;
    } else if (Obs.consume(Key, Val, A)) {
    } else if (!startsWith(A, "--") &&
               Spec.Module.K == ModuleSource::Kind::None) {
      Spec.Module = ModuleSource::file(A);
    } else {
      return fail("unexpected argument '" + A + "'");
    }
  }
  if (!HaveTask)
    return usage();

  // Round-trip through JSON so `analyze` exercises exactly the same
  // validation as `run`, and misconfigurations fail identically.
  Expected<AnalysisSpec> Checked = AnalysisSpec::parse(Spec.toJsonText());
  if (!Checked)
    return fail(Checked.error());
  Obs.begin();
  return Obs.end(finish(*Checked, JsonOut));
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  if (Cmd == "tasks")
    return cmdTasks(Argc - 2, Argv + 2);
  if (Cmd == "run")
    return cmdRun(Argc - 2, Argv + 2);
  if (Cmd == "run-job")
    return cmdRunJob(Argc - 2, Argv + 2);
  if (Cmd == "suite")
    return cmdSuite(Argc - 2, Argv + 2);
  if (Cmd == "analyze")
    return cmdAnalyze(Argc - 2, Argv + 2);
  if (Cmd == "serve")
    return cmdServe(Argc - 2, Argv + 2);
  if (Cmd == "submit")
    return cmdSubmit(Argc - 2, Argv + 2);
  if (Cmd == "cache")
    return cmdCache(Argc - 2, Argv + 2);
  if (Cmd == "version" || Cmd == "--version" || Cmd == "-V")
    return cmdVersion(Argc - 2, Argv + 2);
  if (Cmd == "--help" || Cmd == "-h" || Cmd == "help") {
    usage();
    return 0;
  }
  return fail("unknown command '" + Cmd +
              "' (try: tasks, run, analyze, suite, serve, submit, cache, "
              "run-job, version)");
}
