//===--- wdm.cpp - The wdm command-line driver ----------------------------------===//
//
// Part of the wdm project (PLDI 2019 weak-distance minimization repro).
//
// One binary over the whole declarative surface:
//
//   wdm tasks                      list task kinds, backends, builtins
//   wdm run spec.json [--json o]   run a JSON AnalysisSpec
//   wdm analyze --task=overflow --builtin=bessel --threads=4 [--json o]
//   wdm analyze --task=boundary --func=f file.wir
//
// $WDM_STARTS / $WDM_THREADS / $WDM_SEED override the spec's search
// config (the shared SearchConfig::applyEnv policy), and explicit flags
// override both. The exit code reflects the findings: 0 when the task
// succeeded (witness found / all covered / overflows or inconsistencies
// found / sat), 1 when the search came up empty, 2 on usage or spec
// errors. This is the seam a sharding driver fans out over processes.
//
//===----------------------------------------------------------------------===//

#include "api/Analyzer.h"
#include "api/Backends.h"
#include "api/Subjects.h"
#include "support/StringUtils.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace wdm;
using namespace wdm::api;

namespace {

int usage() {
  std::cerr
      << "usage: wdm <command> [options]\n\n"
         "commands:\n"
         "  tasks                      list task kinds, backends, and "
         "builtin subjects\n"
         "  run <spec.json> [--json <out.json>]\n"
         "                             run one JSON analysis spec\n"
         "  analyze --task=<kind> [subject] [options] [file.wir]\n"
         "                             build a spec from flags and run "
         "it\n\n"
         "analyze subject (one of):\n"
         "  <file.wir>                 positional or --module=<file>: "
         "textual IR file\n"
         "  --builtin=<name>           builtin subject (see `wdm "
         "tasks`)\n"
         "  --constraint=<sexpr>       fpsat constraint text\n\n"
         "analyze options:\n"
         "  --func=<name>              subject function (default: the "
         "module's only one)\n"
         "  --evals=<n> --starts=<n> --seed=<n> --threads=<n>\n"
         "  --batch=<n>                evaluation block size (0 = auto: "
         "vm 32, interp 8)\n"
         "  --backends=<a,b,...>       portfolio by name\n"
         "  --engine=<e>               execution tier: vm (default) | "
         "interp\n"
         "  --path=<leg,leg,...>       path legs, e.g. 0:taken,1:not\n"
         "  --boundary-form=<f>        product|min|minulp\n"
         "  --overflow-metric=<m>      ulpgap|absgap\n"
         "  --nfp=<n>                  overflow: max Algorithm 3 rounds\n"
         "  --json <out.json>          also write the report as JSON\n";
  return 2;
}

int fail(const std::string &Msg) {
  std::cerr << "wdm: " << Msg << "\n";
  return 2;
}

void printReport(const Report &R) {
  std::cout << "task:      " << taskKindName(R.Task) << "\n"
            << "subject:   " << R.Function << "\n"
            << "result:    " << (R.Success ? "SUCCESS" : "not found")
            << "\n";
  if (!R.Success && R.WStar > 0)
    std::cout << "w*:        " << formatDouble(R.WStar)
              << " (smallest weak distance seen)\n";
  for (const Finding &F : R.Findings) {
    std::cout << "  [" << F.Kind << "]";
    if (F.SiteId >= 0)
      std::cout << " site #" << F.SiteId;
    if (!F.Input.empty()) {
      std::cout << " input = (";
      for (size_t I = 0; I < F.Input.size(); ++I)
        std::cout << (I ? ", " : "") << formatDouble(F.Input[I]);
      std::cout << ")";
    }
    if (!F.Description.empty())
      std::cout << "  " << F.Description;
    if (const json::Value *RC =
            F.Details.isObject() ? F.Details.find("root_cause") : nullptr)
      std::cout << "  — " << RC->asString();
    std::cout << "\n";
  }
  std::cout << "evals:     " << R.Evals << "\n";
  if (!R.Engine.empty()) {
    std::cout << "engine:    " << R.Engine;
    if (!R.EngineFallback.empty())
      std::cout << " (fallback: " << R.EngineFallback << ")";
    std::cout << "\n";
  }
  std::cout << "seconds:   " << formatf("%.3f", R.Seconds) << "\n"
            << "threads:   " << R.ThreadsUsed << "\n";
  if (R.UnsoundCandidates)
    std::cout << "unsound:   " << R.UnsoundCandidates
              << " candidate zeros rejected by verification\n";
}

int finish(const AnalysisSpec &Spec, const std::string &JsonOut) {
  Expected<Report> R = Analyzer::analyze(Spec);
  if (!R)
    return fail(R.error());
  printReport(*R);
  if (!JsonOut.empty()) {
    std::ofstream Out(JsonOut);
    if (!Out)
      return fail("cannot write '" + JsonOut + "'");
    Out << R->toJsonText();
    std::cout << "report:    " << JsonOut << "\n";
  }
  return R->Success ? 0 : 1;
}

int cmdTasks() {
  std::cout << "task kinds:\n";
  for (TaskKind K :
       {TaskKind::Boundary, TaskKind::Path, TaskKind::Coverage,
        TaskKind::Overflow, TaskKind::Inconsistency, TaskKind::FpSat})
    std::cout << "  " << taskKindName(K) << "\n";
  std::cout << "\nbackends:\n ";
  for (const std::string &B : backendNames())
    std::cout << " " << B;
  std::cout << "\n\nengines:\n"
               "  vm          compiled tier: bytecode + threaded-code VM "
               "(default)\n"
               "  interp      tree-walking interpreter (automatic "
               "fallback target)\n";
  std::cout << "\nbuiltin subjects:\n";
  for (const BuiltinInfo &I : builtinSubjects())
    std::cout << "  " << formatf("%-12s", I.Name) << I.Summary << "\n";
  return 0;
}

int cmdRun(int Argc, char **Argv) {
  std::string SpecPath, JsonOut;
  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--json") {
      if (I + 1 >= Argc || startsWith(Argv[I + 1], "--"))
        return fail("--json needs an output path");
      JsonOut = Argv[++I];
    } else if (startsWith(A, "--json=")) {
      JsonOut = A.substr(7);
    } else if (!startsWith(A, "--") && SpecPath.empty()) {
      SpecPath = A;
    } else {
      return fail("unexpected argument '" + A + "'");
    }
  }
  if (SpecPath.empty())
    return usage();

  std::ifstream In(SpecPath, std::ios::binary);
  if (!In)
    return fail("cannot open spec '" + SpecPath + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();

  Expected<AnalysisSpec> Spec = AnalysisSpec::parse(Buf.str());
  if (!Spec)
    return fail(SpecPath + ": " + Spec.error());
  Spec->Search.applyEnv();
  return finish(*Spec, JsonOut);
}

bool parsePathLegs(const std::string &Text,
                   std::vector<PathLegSpec> &Out) {
  for (const std::string &Leg : splitString(Text, ',')) {
    std::vector<std::string> Parts = splitString(Leg, ':');
    if (Parts.empty() || Parts.size() > 2 || Parts[0].empty())
      return false;
    char *End = nullptr;
    unsigned long Branch = std::strtoul(Parts[0].c_str(), &End, 10);
    if (!End || *End)
      return false;
    bool Taken = true;
    if (Parts.size() == 2) {
      if (Parts[1] == "taken")
        Taken = true;
      else if (Parts[1] == "not")
        Taken = false;
      else
        return false;
    }
    Out.push_back({static_cast<unsigned>(Branch), Taken});
  }
  return !Out.empty();
}

int cmdAnalyze(int Argc, char **Argv) {
  AnalysisSpec Spec;
  Spec.Search.applyEnv(); // Flags below override the env knobs.
  std::string JsonOut;
  bool HaveTask = false;

  auto Uint = [](const std::string &V, uint64_t &Out) {
    char *End = nullptr;
    Out = std::strtoull(V.c_str(), &End, 0);
    return End && !*End && !V.empty();
  };

  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    std::string Key = A, Val;
    if (size_t Eq = A.find('='); startsWith(A, "--") && Eq != std::string::npos) {
      Key = A.substr(0, Eq);
      Val = A.substr(Eq + 1);
    }
    uint64_t N = 0;
    if (Key == "--task") {
      if (!taskKindByName(Val, Spec.Task))
        return fail("unknown task '" + Val + "'");
      HaveTask = true;
    } else if (Key == "--module") {
      Spec.Module = ModuleSource::file(Val);
    } else if (Key == "--builtin") {
      Spec.Module = ModuleSource::builtin(Val);
    } else if (Key == "--constraint") {
      Spec.Constraint = Val;
    } else if (Key == "--func") {
      Spec.Function = Val;
    } else if (Key == "--evals") {
      if (!Uint(Val, N))
        return fail("bad --evals");
      Spec.Search.MaxEvals = N;
    } else if (Key == "--starts") {
      if (!Uint(Val, N))
        return fail("bad --starts");
      Spec.Search.Starts = static_cast<unsigned>(N);
    } else if (Key == "--seed") {
      if (!Uint(Val, N))
        return fail("bad --seed");
      Spec.Search.Seed = N;
    } else if (Key == "--threads") {
      if (!Uint(Val, N))
        return fail("bad --threads");
      Spec.Search.Threads = static_cast<unsigned>(N);
    } else if (Key == "--batch") {
      if (!Uint(Val, N))
        return fail("bad --batch");
      Spec.Search.Batch = static_cast<unsigned>(N);
    } else if (Key == "--backends") {
      for (const std::string &B : splitString(Val, ','))
        Spec.Search.Backends.push_back(B);
    } else if (Key == "--engine") {
      Spec.Search.Engine = Val;
    } else if (Key == "--path") {
      if (!parsePathLegs(Val, Spec.Path))
        return fail("bad --path (expected e.g. 0:taken,1:not)");
    } else if (Key == "--boundary-form") {
      Spec.BoundaryForm = Val;
    } else if (Key == "--overflow-metric") {
      Spec.OverflowMetric = Val;
    } else if (Key == "--nfp") {
      if (!Uint(Val, N))
        return fail("bad --nfp");
      Spec.NFP = static_cast<unsigned>(N);
    } else if (A == "--json") {
      if (I + 1 >= Argc || startsWith(Argv[I + 1], "--"))
        return fail("--json needs an output path");
      JsonOut = Argv[++I];
    } else if (Key == "--json") {
      JsonOut = Val;
    } else if (!startsWith(A, "--") &&
               Spec.Module.K == ModuleSource::Kind::None) {
      Spec.Module = ModuleSource::file(A);
    } else {
      return fail("unexpected argument '" + A + "'");
    }
  }
  if (!HaveTask)
    return usage();

  // Round-trip through JSON so `analyze` exercises exactly the same
  // validation as `run`, and misconfigurations fail identically.
  Expected<AnalysisSpec> Checked = AnalysisSpec::parse(Spec.toJsonText());
  if (!Checked)
    return fail(Checked.error());
  return finish(*Checked, JsonOut);
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  if (Cmd == "tasks")
    return cmdTasks();
  if (Cmd == "run")
    return cmdRun(Argc - 2, Argv + 2);
  if (Cmd == "analyze")
    return cmdAnalyze(Argc - 2, Argv + 2);
  if (Cmd == "--help" || Cmd == "-h" || Cmd == "help") {
    usage();
    return 0;
  }
  return fail("unknown command '" + Cmd + "' (try: tasks, run, analyze)");
}
